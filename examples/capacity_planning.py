#!/usr/bin/env python
"""Capacity planning: how much DRAM can disaggregation save?

The procurement question behind the paper: given a target service
level (mean bounded slowdown within 25% of the fat-node baseline),
what is the cheapest thin-node + pool configuration?

The script sweeps the total-DRAM budget (node-local 128 GiB fixed,
pool shrinking) and reports, for each budget, the headline metrics and
whether the SLO holds — then names the cheapest passing configuration.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import run_config
from repro.cluster import ClusterSpec
from repro.metrics import ascii_table
from repro.units import GiB, TiB
from repro.workload.reference import generate_reference_jobs

NODES = 64
SLO_FACTOR = 1.25  # allowed bsld degradation vs the fat baseline


def main() -> None:
    jobs = generate_reference_jobs(
        "W-MIX", seed=11, num_jobs=500, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=0.9,
    )

    fat = ClusterSpec.fat_node(num_nodes=NODES, local_mem="512GiB",
                               nodes_per_rack=16, name="FAT-512")
    _, fat_summary = run_config(
        fat, jobs, label=fat.name, class_local_mem=512 * GiB,
        penalty={"kind": "linear", "beta": 0.3},
    )
    slo = fat_summary.bsld["mean"] * SLO_FACTOR
    print(f"baseline FAT-512: mean bsld {fat_summary.bsld['mean']:.2f}, "
          f"total DRAM {fat.total_mem / TiB:.0f} TiB")
    print(f"SLO: mean bsld <= {slo:.2f}\n")

    rows = []
    cheapest = None
    for fraction in (1.0, 0.75, 0.5, 0.375, 0.25, 0.125):
        spec = ClusterSpec.thin_node(
            num_nodes=NODES, nodes_per_rack=16, local_mem="128GiB",
            fat_local_mem="512GiB", pool_fraction=fraction, reach="global",
            name=f"THIN-G{int(fraction * 100)}",
        )
        _, summary = run_config(
            spec, jobs, label=spec.name, class_local_mem=512 * GiB,
            penalty={"kind": "linear", "beta": 0.3},
        )
        passes = summary.bsld["mean"] <= slo and summary.jobs_rejected == 0
        rows.append([
            spec.name,
            f"{spec.total_mem / TiB:.0f}",
            f"{spec.total_mem / fat.total_mem:.0%}",
            f"{summary.bsld['mean']:.2f}",
            round(summary.wait["mean"]),
            summary.jobs_rejected,
            "PASS" if passes else "fail",
        ])
        if passes:
            candidate = (spec.total_mem, spec.name, summary)
            if cheapest is None or candidate[0] < cheapest[0]:
                cheapest = candidate

    print(ascii_table(
        ["config", "total DRAM (TiB)", "vs FAT", "mean bsld",
         "mean wait (s)", "rejected", "SLO"],
        rows,
    ))
    if cheapest is not None:
        total, name, summary = cheapest
        saving = 1.0 - total / fat.total_mem
        print(f"\ncheapest passing configuration: {name} — "
              f"{total / TiB:.0f} TiB total DRAM "
              f"({saving:.0%} less than the fat baseline) at mean bsld "
              f"{summary.bsld['mean']:.2f}")
    else:
        print("\nno thin configuration met the SLO; raise the pool budget")


if __name__ == "__main__":
    main()

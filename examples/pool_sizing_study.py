#!/usr/bin/env python
"""Pool sizing and reach study with confidence intervals.

A small end-to-end research study: for pool budgets from 12.5% to 100%
of the removed DRAM and both reaches (one global pool vs per-rack
pools), replicate the experiment over five workload seeds and report
mean wait with 95% t-intervals — the level of rigor a real evaluation
section needs before claiming one reach beats the other.

Run:  python examples/pool_sizing_study.py
"""

from repro.analysis import mean_ci, run_config
from repro.cluster import ClusterSpec
from repro.metrics import ascii_table
from repro.units import GiB
from repro.workload.reference import generate_reference_jobs

NODES = 64
SEEDS = (1, 2, 3, 4, 5)
FRACTIONS = (0.125, 0.25, 0.5, 1.0)


def run_arm(fraction: float, reach: str, seed: int):
    jobs = generate_reference_jobs(
        "W-DATA", seed=seed, num_jobs=300, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=0.9,
    )
    spec = ClusterSpec.thin_node(
        num_nodes=NODES, nodes_per_rack=16, local_mem="128GiB",
        fat_local_mem="512GiB", pool_fraction=fraction, reach=reach,
    )
    _, summary = run_config(
        spec, jobs, class_local_mem=512 * GiB,
        placement="rack_pack" if reach == "rack" else "first_fit",
        penalty={"kind": "linear", "beta": 0.3},
    )
    return summary.wait["mean"], summary.jobs_rejected


def main() -> None:
    print(f"pool sizing × reach on W-DATA, {len(SEEDS)} seeds, "
          f"{NODES} nodes (mean wait ± 95% CI, and jobs shed as "
          f"infeasible)\n")
    rows = []
    for fraction in FRACTIONS:
        row = [f"{fraction:.0%}"]
        for reach in ("global", "rack"):
            outcomes = [run_arm(fraction, reach, seed) for seed in SEEDS]
            waits = [w for w, _ in outcomes]
            shed = sum(r for _, r in outcomes)
            mean, half = mean_ci(waits)
            row.append(f"{mean:,.0f} ± {half:,.0f}")
            row.append(shed)
        rows.append(row)
    print(ascii_table(
        ["pool budget", "global wait (s)", "shed", "rack wait (s)", "shed"],
        rows,
    ))
    print(
        "\nreading: feasibility first — rack pools shed the widest "
        "memory-heavy jobs at every\nbudget (a wide job's demand "
        "concentrates in few racks), and shedding the most\ndemanding "
        "jobs flatters the surviving mix's wait.  The global pool keeps "
        "the whole\nworkload feasible; at equal feasibility (100% "
        "budget) the reaches converge."
    )


if __name__ == "__main__":
    main()

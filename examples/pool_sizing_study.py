#!/usr/bin/env python
"""Pool sizing and reach study with confidence intervals.

A small end-to-end research study: for pool budgets from 12.5% to 100%
of the removed DRAM and both reaches (one global pool vs per-rack
pools), replicate the experiment over five workload seeds and report
mean wait with 95% t-intervals — the level of rigor a real evaluation
section needs before claiming one reach beats the other.

The whole study is one scenario grid — budget × reach × seed, 40
cells — run in parallel by :class:`repro.runner.SweepRunner`; the
seed axis is then collapsed with
:func:`repro.runner.aggregate_rows` into mean ± CI per (budget,
reach) group.  Reach is a *set-point* axis because it moves two
parameters together (pool topology + the matching placement policy).

Run:  python examples/pool_sizing_study.py
"""

from repro.metrics import ascii_table
from repro.runner import ScenarioGrid, SweepRunner, aggregate_rows, default_workers
from repro.units import GiB

NODES = 64
SEEDS = (1, 2, 3, 4, 5)
FRACTIONS = (0.125, 0.25, 0.5, 1.0)


def build_grid() -> ScenarioGrid:
    return ScenarioGrid(
        name="pool-sizing-study",
        base={
            "workload": {"reference": "W-DATA", "num_jobs": 300,
                         "load": 0.9, "max_mem_per_node": 512 * GiB},
            "cluster": {"kind": "thin", "num_nodes": NODES,
                        "nodes_per_rack": 16, "local_mem": "128GiB",
                        "fat_local_mem": "512GiB"},
            "scheduler": {"penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={
            "cluster.pool_fraction": list(FRACTIONS),
            "reach": [
                {"label": "global",
                 "set": {"cluster.reach": "global",
                         "scheduler.placement": "first_fit"}},
                {"label": "rack",
                 "set": {"cluster.reach": "rack",
                         "scheduler.placement": "rack_pack"}},
            ],
            "workload.seed": list(SEEDS),
        },
    )


def main() -> None:
    grid = build_grid()
    report = SweepRunner(workers=default_workers(fallback=4)).run(grid)
    aggregated = aggregate_rows(
        report.rows(),
        by=["cluster.pool_fraction", "reach"],
        metrics=["wait_mean"],
        sums=["rejected"],
    )
    by_cell = {
        (row["cluster.pool_fraction"], row["reach"]): row for row in aggregated
    }
    print(f"pool sizing × reach on W-DATA, {len(SEEDS)} seeds, "
          f"{NODES} nodes (mean wait ± 95% CI, and jobs shed as "
          f"infeasible); {report.total} scenarios, "
          f"{report.workers} workers\n")
    rows = []
    for fraction in FRACTIONS:
        row = [f"{fraction:.0%}"]
        for reach in ("global", "rack"):
            cell = by_cell[(fraction, reach)]
            row.append(f"{cell['wait_mean_mean']:,.0f} ± "
                       f"{cell['wait_mean_ci95']:,.0f}")
            row.append(cell["rejected"])
        rows.append(row)
    print(ascii_table(
        ["pool budget", "global wait (s)", "shed", "rack wait (s)", "shed"],
        rows,
    ))
    print(
        "\nreading: feasibility first — rack pools shed the widest "
        "memory-heavy jobs at every\nbudget (a wide job's demand "
        "concentrates in few racks), and shedding the most\ndemanding "
        "jobs flatters the surviving mix's wait.  The global pool keeps "
        "the whole\nworkload feasible; at equal feasibility (100% "
        "budget) the reaches converge."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate one workload on a disaggregated-memory machine.

Builds a 64-node cluster with thin (128 GiB) nodes plus a global
memory pool, generates a balanced reference workload, runs it under
FCFS + memory-aware EASY backfilling, audits the schedule, and prints
the headline metrics.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.engine import SchedulerSimulation, audit_result
from repro.metrics import ascii_table, render_gantt, summarize
from repro.sched import build_scheduler
from repro.units import GiB, format_duration
from repro.workload.reference import generate_reference_jobs


def main() -> None:
    # 1. The machine: 64 thin nodes; the DRAM removed relative to a
    #    512 GiB fat node comes back as one global pool (half of it,
    #    i.e. a 62.5%-of-baseline total DRAM budget).
    spec = ClusterSpec.thin_node(
        num_nodes=64,
        nodes_per_rack=16,
        local_mem="128GiB",
        fat_local_mem="512GiB",
        pool_fraction=0.5,
        reach="global",
        name="quickstart-thin",
    )
    cluster = Cluster(spec)
    print(f"machine: {cluster!r}")

    # 2. The workload: 500 jobs of the balanced reference mix,
    #    calibrated to offered load 0.9, deterministic seed.
    jobs = generate_reference_jobs(
        "W-MIX", seed=7, num_jobs=500, cluster_nodes=64,
        max_mem_per_node=512 * GiB, target_load=0.9,
    )
    print(f"workload: {len(jobs)} jobs, "
          f"{sum(j.nodes for j in jobs) / len(jobs):.1f} nodes/job avg")

    # 3. The scheduler stack: FCFS queue, memory-aware EASY backfill,
    #    first-fit placement, linear remote penalty β=0.3.
    scheduler = build_scheduler(
        queue="fcfs", backfill="easy", placement="first_fit",
        penalty={"kind": "linear", "beta": 0.3},
    )

    # 4. Run and audit.
    result = SchedulerSimulation(cluster, scheduler, jobs).run()
    audit_result(result)  # raises if any invariant is violated

    # 5. Report.
    summary = summarize(result, label=spec.name)
    print()
    print(ascii_table(
        ["metric", "value"],
        [
            ["jobs completed", summary.jobs_completed],
            ["jobs killed", summary.jobs_killed],
            ["jobs rejected", summary.jobs_rejected],
            ["mean wait", format_duration(summary.wait["mean"])],
            ["p95 wait", format_duration(summary.wait["p95"])],
            ["mean bounded slowdown", f"{summary.bsld['mean']:.2f}"],
            ["node utilization", f"{summary.node_utilization:.1%}"],
            ["pool utilization", f"{summary.pool_utilization:.1%}"],
            ["mean runtime dilation", f"{summary.mean_dilation:.3f}"],
            ["makespan", format_duration(summary.makespan)],
        ],
    ))

    # 6. A glance at the schedule itself (first 16 nodes).
    print()
    print(render_gantt(result, width=76, max_nodes=16))


if __name__ == "__main__":
    main()

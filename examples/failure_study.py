#!/usr/bin/env python
"""Failure injection and checkpoint/restart study.

Big allocations touch more hardware, so node failures hit wide jobs
hardest; checkpointing caps the work lost per failure.  This example
runs the same workload through an escalating failure storm with and
without 15-minute application checkpoints and reports completions,
work lost, and restarts — then shows one schedule as an ASCII Gantt
chart with the failure-killed jobs visible as truncated bars.

Run:  python examples/failure_study.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.engine import (
    SchedulerSimulation,
    audit_result,
    exponential_failure_trace,
)
from repro.metrics import ascii_table, render_gantt
from repro.sched import build_scheduler
from repro.sim import RandomStreams
from repro.units import GiB, HOUR
from repro.workload import JobState
from repro.workload.filters import reset_jobs
from repro.workload.reference import generate_reference_jobs

NODES = 16
CKPT = 15 * 60.0  # 15-minute checkpoints


def machine():
    return Cluster(ClusterSpec.thin_node(
        num_nodes=NODES, nodes_per_rack=8, local_mem="128GiB",
        fat_local_mem="512GiB", pool_fraction=0.5, reach="global",
        name="failure-study",
    ))


def run_arm(jobs, mtbf_divisor, checkpointed, horizon):
    fresh = reset_jobs(jobs)
    if checkpointed:
        for job in fresh:
            job.checkpoint_interval = CKPT
    trace = []
    if mtbf_divisor:
        trace = exponential_failure_trace(
            NODES, horizon, mtbf=horizon / mtbf_divisor,
            mean_repair=2 * HOUR, streams=RandomStreams(17),
        )
    scheduler = build_scheduler(penalty={"kind": "linear", "beta": 0.3})
    result = SchedulerSimulation(
        machine(), scheduler, fresh, failures=trace,
    ).run()
    audit_result(result)
    roots_done = {
        j.restart_of or j.job_id
        for j in result.jobs if j.state is JobState.COMPLETED
    }
    lost_node_hours = sum(
        j.nodes * (j.end_time - j.start_time) / 3600.0
        for j in result.jobs if j.kill_reason == "node_failure"
    )
    restarts = sum(1 for j in result.jobs if j.restart_of is not None)
    return result, len(trace), len(roots_done), lost_node_hours, restarts


def main() -> None:
    jobs = generate_reference_jobs(
        "W-MIX", seed=19, num_jobs=200, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=0.8,
    )
    horizon = jobs[-1].submit_time + 48 * HOUR
    print(f"{len(jobs)} W-MIX jobs on {NODES} thin nodes + pool; "
          f"failure storms with and without {CKPT / 60:.0f}-min "
          f"checkpoints\n")
    rows = []
    showcase = None
    for divisor in (0, 4, 8):
        for checkpointed in (False, True):
            result, failures, done, lost, restarts = run_arm(
                jobs, divisor, checkpointed, horizon
            )
            rows.append([
                "none" if divisor == 0 else f"horizon/{divisor}",
                "ckpt" if checkpointed else "plain",
                failures,
                done,
                f"{done / len(jobs):.0%}",
                round(lost, 1),
                restarts,
            ])
            if divisor == 8 and not checkpointed:
                showcase = result
    print(ascii_table(
        ["node MTBF", "mode", "failures", "roots done", "survival",
         "lost node-h", "restarts"],
        rows,
    ))
    print("\nschedule under the harshest storm WITHOUT checkpoints "
          "(failure kills truncate bars):")
    print(render_gantt(showcase, width=76, max_nodes=NODES))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scheduler policy shoot-out on a data-intensive workload.

Compares the full policy stack on the same trace and machine:

* backfill: none vs EASY vs conservative;
* queue order: FCFS vs WFP (the big-job-friendly utility);
* the paper's ablation: memory-aware vs memory-blind EASY.

The six arms are one set-point axis of a
:class:`repro.runner.ScenarioGrid`, executed in parallel by the sweep
runner; the comparison table is built from the rehydrated summaries.

Prints a comparison table with %-vs-baseline columns.

Run:  python examples/policy_comparison.py
"""

from repro.analysis import compare_table
from repro.runner import ScenarioGrid, SweepRunner, default_workers
from repro.units import GiB

NODES = 64
BASELINE = "fcfs (no backfill)"

#: label -> build_scheduler overrides; one scenario per arm.
POLICY_ARMS = {
    BASELINE: {"backfill": "none"},
    "fcfs + EASY": {"backfill": "easy"},
    "fcfs + EASY (mem-blind)": {"backfill": "easy", "memory_aware": False},
    "fcfs + conservative": {"backfill": "conservative"},
    "wfp + EASY": {"queue": "wfp"},
    "sjf + EASY": {"queue": "sjf"},
}


def build_grid() -> ScenarioGrid:
    return ScenarioGrid(
        name="policy-comparison",
        base={
            "workload": {"reference": "W-DATA", "num_jobs": 400, "seed": 3,
                         "load": 1.0, "max_mem_per_node": 512 * GiB},
            # A deliberately tight pool (15% of the removed DRAM): the
            # pool is a real bottleneck here, which is what separates
            # memory-aware from memory-blind backfilling.
            "cluster": {"kind": "thin", "num_nodes": NODES,
                        "nodes_per_rack": 16, "local_mem": "128GiB",
                        "fat_local_mem": "512GiB", "pool_fraction": 0.15,
                        "reach": "global", "name": "THIN-G15"},
            "scheduler": {"penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={
            "policy": [
                {"label": label,
                 "set": {f"scheduler.{key}": value
                         for key, value in overrides.items()}}
                for label, overrides in POLICY_ARMS.items()
            ],
        },
    )


def main() -> None:
    grid = build_grid()
    report = SweepRunner(workers=default_workers(fallback=4)).run(grid)
    summaries = report.summaries()
    workload = grid.base["workload"]
    cluster = grid.base["cluster"]
    print(f"{workload['num_jobs']} {workload['reference']} jobs on "
          f"{cluster['name']} ({cluster['num_nodes']} nodes, "
          f"{cluster['local_mem']} local + {cluster['reach']} pool); "
          f"{report.executed} scenarios, {report.workers} workers\n")
    print(compare_table(summaries, baseline_label=BASELINE))
    print()

    easy = next(s for s in summaries if s.label == "fcfs + EASY")
    blind = next(s for s in summaries if "mem-blind" in s.label)
    print(f"memory-aware EASY vs memory-blind EASY: "
          f"mean wait {easy.wait['mean']:.0f}s vs {blind.wait['mean']:.0f}s — "
          "the blind scheduler's shadow reservation ignores the pool, so "
          "backfills squat on memory the queue head is waiting for.")


if __name__ == "__main__":
    main()

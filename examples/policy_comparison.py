#!/usr/bin/env python
"""Scheduler policy shoot-out on a data-intensive workload.

Compares the full policy stack on the same trace and machine:

* backfill: none vs EASY vs conservative;
* queue order: FCFS vs WFP (the big-job-friendly utility);
* the paper's ablation: memory-aware vs memory-blind EASY.

Prints a comparison table with %-vs-baseline columns.

Run:  python examples/policy_comparison.py
"""

from repro.analysis import ExperimentArm, compare_table, run_arms
from repro.cluster import ClusterSpec
from repro.sched import build_scheduler
from repro.units import GiB
from repro.workload.reference import generate_reference_jobs

NODES = 64


def main() -> None:
    jobs = generate_reference_jobs(
        "W-DATA", seed=3, num_jobs=400, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=1.0,
    )
    # A deliberately tight pool (15% of the removed DRAM): the pool is
    # a real bottleneck here, which is what separates memory-aware
    # from memory-blind backfilling.
    spec = ClusterSpec.thin_node(
        num_nodes=NODES, nodes_per_rack=16, local_mem="128GiB",
        fat_local_mem="512GiB", pool_fraction=0.15, reach="global",
        name="THIN-G15",
    )
    penalty = {"kind": "linear", "beta": 0.3}

    def sched(**kwargs):
        merged = {"penalty": penalty}
        merged.update(kwargs)
        return lambda: build_scheduler(**merged)

    arms = [
        ExperimentArm("fcfs (no backfill)", spec, sched(backfill="none")),
        ExperimentArm("fcfs + EASY", spec, sched(backfill="easy")),
        ExperimentArm("fcfs + EASY (mem-blind)", spec,
                      sched(backfill="easy", memory_aware=False)),
        ExperimentArm("fcfs + conservative", spec,
                      sched(backfill="conservative")),
        ExperimentArm("wfp + EASY", spec, sched(queue="wfp")),
        ExperimentArm("sjf + EASY", spec, sched(queue="sjf")),
    ]
    summaries = run_arms(arms, jobs, class_local_mem=512 * GiB)
    print(f"{len(jobs)} W-DATA jobs on {spec.name} "
          f"({NODES} nodes, 128 GiB local + global pool)\n")
    print(compare_table(summaries, baseline_label="fcfs (no backfill)"))
    print()

    easy = next(s for s in summaries if s.label == "fcfs + EASY")
    blind = next(s for s in summaries if "mem-blind" in s.label)
    print(f"memory-aware EASY vs memory-blind EASY: "
          f"mean wait {easy.wait['mean']:.0f}s vs {blind.wait['mean']:.0f}s — "
          "the blind scheduler's shadow reservation ignores the pool, so "
          "backfills squat on memory the queue head is waiting for.")


if __name__ == "__main__":
    main()

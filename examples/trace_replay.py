#!/usr/bin/env python
"""Replaying an SWF trace with memory synthesis.

Public SWF archives (Feitelson's Parallel Workloads Archive) mostly
lack memory columns.  This example shows the full pipeline:

1. write a sample SWF file (stands in for a downloaded archive trace);
2. parse it back, synthesizing requested memory from a lognormal and
   used/requested ratios from a uniform — deterministic under a seed;
3. replay it on a fat and a thin+pool machine and compare.

Point ``TRACE`` at a real ``.swf`` file to replay production data.

Run:  python examples/trace_replay.py
"""

import math
import tempfile
from pathlib import Path

from repro.analysis import run_config
from repro.metrics import ascii_table
from repro.cluster import ClusterSpec
from repro.sim import RandomStreams
from repro.units import GiB
from repro.workload import read_swf, write_swf
from repro.workload.models import LogNormal, Uniform
from repro.workload.reference import generate_reference_jobs
from repro.workload.swf import SWFFields

NODES = 32


def make_sample_trace(path: Path) -> None:
    """Write a synthetic trace as SWF — including the header block —
    exactly the way an archive trace arrives, but WITHOUT memory
    columns (we strip them to demonstrate synthesis)."""
    jobs = generate_reference_jobs(
        "W-MIX", seed=21, num_jobs=300, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=0.85,
    )
    # include_memory=False writes -1 in the memory columns, the way
    # most archive traces arrive.
    write_swf(jobs, path, include_memory=False, header={
        "Version": "2", "Computer": "sample-machine", "MaxNodes": str(NODES),
    })


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "sample.swf"
        make_sample_trace(trace)
        print(f"wrote sample SWF trace: {trace.name} "
              f"({trace.stat().st_size} bytes)")

        # Parse with memory synthesis: requested ~ lognormal around
        # 48 GiB/node (heavy tail), usage 50–100% of requested.
        jobs, header = read_swf(
            trace,
            fields=SWFFields(cores_per_node=1),
            mem_synth=LogNormal(mu=math.log(48 * GiB), sigma=1.0,
                                low=1 * GiB, high=512 * GiB),
            usage_ratio_synth=Uniform(0.5, 1.0),
            streams=RandomStreams(5),
        )
        print(f"parsed {len(jobs)} jobs from {header.get('Computer')!r}; "
              f"mean synthesized memory "
              f"{sum(j.mem_per_node for j in jobs) / len(jobs) / GiB:.1f} "
              f"GiB/node\n")

        fat = ClusterSpec.fat_node(num_nodes=NODES, local_mem="512GiB",
                                   nodes_per_rack=16, name="FAT-512")
        thin = ClusterSpec.thin_node(
            num_nodes=NODES, nodes_per_rack=16, local_mem="128GiB",
            fat_local_mem="512GiB", pool_fraction=0.5, reach="global",
            name="THIN-G50",
        )
        rows = []
        for spec in (fat, thin):
            _, summary = run_config(
                spec, jobs, label=spec.name, class_local_mem=512 * GiB,
                penalty={"kind": "linear", "beta": 0.3},
            )
            rows.append([
                spec.name,
                f"{spec.total_mem / (1024 * GiB):.0f}",
                round(summary.wait["mean"]),
                f"{summary.bsld['mean']:.2f}",
                f"{summary.node_utilization:.0%}",
                f"{summary.stranded_fraction:.0%}",
            ])
        print(ascii_table(
            ["config", "DRAM (TiB)", "wait mean (s)", "bsld mean",
             "node util", "DRAM stranded"],
            rows,
        ))


if __name__ == "__main__":
    main()

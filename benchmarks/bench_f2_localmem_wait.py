"""F2 — Mean wait time vs node-local memory capacity.

The core capacity-planning figure: shrink node-local DRAM from 512 GiB
down to 64 GiB.  Without a pool, shrinking DRAM makes big-memory jobs
*impossible* (rejected) — the machine sheds exactly the workload the
memory was bought for.  With the removed DRAM returned as a global
pool, everything keeps running and the wait curve stays near the fat
baseline.  Asserted shape: the pooled arm never rejects, the no-pool
arm rejects progressively more as DRAM shrinks, and at 128 GiB local
the pooled arm's wait stays within 2× of the fat baseline.
"""

from __future__ import annotations

from repro.metrics.report import series_table
from repro.units import GiB

from _common import banner, local_only_spec, run, thin_spec, workload

LOCAL_SIZES = (64, 128, 192, 256, 384, 512)  # GiB per node


def localmem_sweep():
    jobs = workload("W-MIX")
    waits_pool, waits_nopool = [], []
    rejected_nopool, rejected_pool = [], []
    for local_gib in LOCAL_SIZES:
        local = local_gib * GiB
        # Thin + pool: removed DRAM fully returned as a global pool.
        _, pooled = run(
            thin_spec(fraction=1.0, local_mem=local,
                      name=f"POOL-{local_gib}"),
            jobs,
        )
        waits_pool.append(pooled.wait["mean"])
        rejected_pool.append(pooled.jobs_rejected)
        # Same local DRAM, no pool: big jobs are simply infeasible.
        _, bare = run(local_only_spec(local), jobs)
        waits_nopool.append(bare.wait["mean"])
        rejected_nopool.append(bare.jobs_rejected)
    return waits_pool, waits_nopool, rejected_pool, rejected_nopool


def test_f2_wait_vs_local_memory(benchmark):
    waits_pool, waits_nopool, rejected_pool, rejected_nopool = (
        benchmark.pedantic(localmem_sweep, rounds=1, iterations=1)
    )
    banner("F2", "mean wait (s) and rejections vs local DRAM per node "
                 "(W-MIX, pool = removed DRAM)")
    print(series_table(
        "GiB/node",
        list(LOCAL_SIZES),
        {
            "wait pooled (s)": [round(w) for w in waits_pool],
            "wait no-pool (s)": [round(w) for w in waits_nopool],
            "rejected pooled": rejected_pool,
            "rejected no-pool": rejected_nopool,
        },
    ))
    # The pooled arm keeps the whole workload feasible at every size.
    assert all(r == 0 for r in rejected_pool)
    # The bare arm sheds more workload the smaller the DRAM.
    assert rejected_nopool[0] > rejected_nopool[-1]
    assert rejected_nopool[0] > 20
    assert rejected_nopool[-1] == 0  # 512 GiB local fits everything
    # At the canonical 128 GiB thin point, pooled wait is within 2x of
    # the fat (512 GiB) baseline wait.
    fat_wait = waits_pool[-1]
    thin_wait = waits_pool[1]
    assert thin_wait <= max(2.0 * fat_wait, 600.0)

"""Benchmark-suite configuration.

Tables printed by the benches are part of the deliverable (they are
the reproduced figures), so output capturing is disabled for this
directory: ``pytest benchmarks/ --benchmark-only`` always shows them.
"""

import pytest


def pytest_configure(config):
    # Benches print their tables; -s keeps them visible.
    capman = config.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        capman.stop_global_capturing()
        capman._method = "no"
        capman.start_global_capturing()

"""Benchmark-suite configuration.

Tables printed by the benches are part of the deliverable (they are
the reproduced figures), so output capturing is disabled for this
directory: ``pytest benchmarks/ --benchmark-only`` always shows them.

``--quick`` puts the suite in smoke mode (equivalent to exporting
``REPRO_BENCH_QUICK=1``): workloads shrink via ``_common.scaled`` so
CI can run every bench in a couple of minutes.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="quick mode: scaled-down workloads for CI smoke runs",
    )


def pytest_configure(config):
    # Must happen before bench modules import _common, i.e. before
    # collection: _common reads the env var at import time.
    if config.getoption("--quick"):
        os.environ["REPRO_BENCH_QUICK"] = "1"
    # Benches print their tables; -s keeps them visible.
    capman = config.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        capman.stop_global_capturing()
        capman._method = "no"
        capman.start_global_capturing()

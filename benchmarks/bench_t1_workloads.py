"""T1 — Workload characterization table.

Reproduces the standard "Table 1" of the evaluation: for each
reference mix, job count, node-count and runtime statistics, the
requested-memory distribution, and the fraction of jobs whose per-node
footprint exceeds the thin-node local DRAM (i.e. the jobs that *need*
the pool).  The memory-intensity ordering W-COMP < W-MIX < W-DATA is
asserted — it is the premise of every following experiment.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import ascii_table
from repro.units import GiB, HOUR

from _common import FAT_LOCAL, LOAD, NODES, THIN_LOCAL, banner, workload

MIXES = ("W-COMP", "W-MIX", "W-DATA")


def characterize():
    rows = []
    mean_mems = {}
    for name in MIXES:
        jobs = workload(name, num_jobs=1000)
        nodes = np.array([j.nodes for j in jobs])
        runtime = np.array([j.runtime for j in jobs])
        mem = np.array([j.mem_per_node for j in jobs], dtype=float)
        used_ratio = np.array(
            [j.mem_used_per_node / j.mem_per_node for j in jobs]
        )
        heavy = float(np.mean(mem > THIN_LOCAL))
        accuracy = np.array([j.estimate_accuracy for j in jobs])
        mean_mems[name] = float(mem.mean())
        rows.append([
            name,
            len(jobs),
            f"{nodes.mean():.1f}",
            int(np.median(nodes)),
            f"{runtime.mean() / HOUR:.2f}",
            f"{mem.mean() / GiB:.1f}",
            f"{np.median(mem) / GiB:.1f}",
            f"{np.percentile(mem, 95) / GiB:.0f}",
            f"{heavy:.0%}",
            f"{used_ratio.mean():.2f}",
            f"{accuracy.mean():.2f}",
        ])
    return rows, mean_mems


def test_t1_workload_characterization(benchmark):
    rows, mean_mems = benchmark.pedantic(characterize, rounds=1, iterations=1)
    banner("T1", f"reference workloads on {NODES} nodes at offered load {LOAD}")
    print(ascii_table(
        ["mix", "jobs", "mean nodes", "med nodes", "mean rt (h)",
         "mean GiB/node", "med GiB/node", "p95 GiB", f">{THIN_LOCAL // GiB}GiB",
         "used/req", "est acc"],
        rows,
    ))
    print(f"\n(fat node = {FAT_LOCAL // GiB} GiB/node; thin node = "
          f"{THIN_LOCAL // GiB} GiB/node)")
    # The premise: the mixes are ordered by memory intensity.
    assert mean_mems["W-COMP"] < mean_mems["W-MIX"] < mean_mems["W-DATA"]

"""F9 — Time series: queue depth and pool occupancy under bursts.

Runs the bursty data-intensive mix on THIN-G50 with periodic sampling
and prints the queue-depth / busy-node / pool-occupancy series (the
figure's curves, as a table), plus peak statistics.  Asserted shape:
the pool actually breathes — its occupancy varies over time and peaks
above 60% of capacity — and queue depth correlates with pool pressure
(the pool is a real constrained resource, not decoration).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import series_table
from repro.units import GiB, HOUR

from _common import banner, run, thin_spec, workload

SAMPLE_INTERVAL = 30 * 60.0  # 30 simulated minutes


def timeseries_experiment():
    jobs = workload("W-DATA")
    result, summary = run(
        thin_spec(fraction=0.5, name="THIN-G50"),
        jobs,
        sample_interval=SAMPLE_INTERVAL,
    )
    return result, summary


def test_f9_burst_timeseries(benchmark):
    result, summary = benchmark.pedantic(
        timeseries_experiment, rounds=1, iterations=1
    )
    samples = result.samples
    pool_capacity = result.cluster_spec.total_pool_mem
    banner("F9", "queue depth and pool occupancy over time "
                 "(W-DATA burst arrivals on THIN-G50, 30 min samples)")
    # Print a readable subsample (~24 rows max).
    stride = max(1, len(samples) // 24)
    shown = samples[::stride]
    print(series_table(
        "t (h)",
        [round(s.time / HOUR, 1) for s in shown],
        {
            "queue depth": [s.queue_length for s in shown],
            "running": [s.running_jobs for s in shown],
            "busy nodes": [s.busy_nodes for s in shown],
            "pool used (GiB)": [round(s.pool_used / GiB) for s in shown],
            "pool %": [f"{s.pool_used / pool_capacity:.0%}" for s in shown],
        },
    ))
    pool_series = np.array([s.pool_used for s in samples], dtype=float)
    queue_series = np.array([s.queue_length for s in samples], dtype=float)
    peak_pool = pool_series.max() / pool_capacity
    print(f"\npeak pool occupancy: {peak_pool:.0%}   "
          f"peak queue depth: {int(queue_series.max())}   "
          f"samples: {len(samples)}")
    assert len(samples) > 20
    # The pool is genuinely exercised and genuinely varies.
    assert peak_pool > 0.6
    assert pool_series.std() > 0.05 * pool_capacity
    # At least once the machine queued while the pool was loaded.
    assert queue_series.max() >= 5

"""A4 (ablation) — fair-share scheduling on the disaggregated machine.

Multi-user fairness with a pool twist: the usage tracker charges pool
memory as well as nodes, so a pool-hogging user is deprioritized even
at modest node counts.  Scenario: one hog user floods the machine with
wide, long, pool-heavy jobs; six small users trickle in behind.

Reported: per-user mean wait under FCFS, WFP, and fair-share, plus
Jain's index over per-user *usage-normalized* service.  Asserted
shape: fair-share serves the small users no worse than FCFS does and
makes the hog pay; every arm completes the full workload.
"""

from __future__ import annotations

from repro.metrics import ascii_table, jain_index, per_user_stats
from repro.units import GiB

from _common import NODES, banner, run, thin_spec
from repro.workload import Job


def hog_workload():
    jobs = []
    job_id = 0
    for i in range(16):
        job_id += 1
        jobs.append(Job(
            job_id=job_id, submit_time=float(i * 10), nodes=16,
            walltime=4 * 3600.0, runtime=3.5 * 3600.0,
            mem_per_node=256 * GiB,  # deep into the pool
            user="hog", tag="data",
        ))
    for i in range(48):
        job_id += 1
        jobs.append(Job(
            job_id=job_id, submit_time=600.0 + i * 120.0, nodes=2,
            walltime=1800.0, runtime=1200.0,
            mem_per_node=16 * GiB,
            user=f"small{i % 6}", tag="compute",
        ))
    return jobs


def fairness_experiment():
    jobs = hog_workload()
    outcomes = {}
    for queue in ("fcfs", "wfp", "fairshare"):
        result, summary = run(
            thin_spec(fraction=0.5, name=f"fair-{queue}"), jobs,
            label=queue, queue=queue,
        )
        stats = {s.user: s for s in per_user_stats(result.jobs)}
        outcomes[queue] = (summary, stats)
    return outcomes


def test_a4_fairshare(benchmark):
    outcomes = benchmark.pedantic(fairness_experiment, rounds=1, iterations=1)
    banner("A4", f"fair-share on THIN-G50 ({NODES} nodes): one pool-heavy "
                 "hog vs six small users")
    rows = []
    for queue, (summary, stats) in outcomes.items():
        small_waits = [s.mean_wait for u, s in stats.items() if u != "hog"]
        small_mean = sum(small_waits) / len(small_waits)
        rows.append([
            queue,
            round(stats["hog"].mean_wait),
            round(small_mean),
            round(jain_index([s.mean_bsld for s in stats.values()]), 3),
            summary.jobs_completed,
        ])
    print(ascii_table(
        ["queue policy", "hog wait (s)", "small users wait (s)",
         "jain(bsld)", "completed"],
        rows,
    ))
    fcfs_stats = outcomes["fcfs"][1]
    fair_stats = outcomes["fairshare"][1]
    fcfs_small = sum(s.mean_wait for u, s in fcfs_stats.items()
                     if u != "hog") / 6
    fair_small = sum(s.mean_wait for u, s in fair_stats.items()
                     if u != "hog") / 6
    assert fair_small <= fcfs_small
    assert fair_stats["hog"].mean_wait >= fcfs_stats["hog"].mean_wait
    assert all(summary.jobs_completed + summary.jobs_killed
               + summary.jobs_rejected == 64
               for summary, _ in outcomes.values())
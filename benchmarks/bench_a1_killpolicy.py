"""A1 (ablation) — walltime-kill policy under dilation.

Design choice called out in DESIGN.md §3: what happens when remote-
memory dilation pushes a job past its user walltime?  ``strict``
(production default, unmodified) kills at the raw walltime — charging
the user for the *system's* choice to serve them remote memory;
``dilation_aware`` scales the bound by the same factor; ``none`` is
the idealized upper bound.

Measured on a strong penalty (β=0.8) so the effect is visible.
Asserted shape: strict kills strictly more jobs than dilation-aware,
dilation-aware kills only genuine underestimates, none kills nobody —
and the strict arm wastes real node-hours on jobs it then kills.
"""

from __future__ import annotations

from repro.metrics import ascii_table

from _common import banner, run, thin_spec, workload

POLICIES = ("strict", "dilation_aware", "none")
STRONG_PENALTY = {"kind": "linear", "beta": 0.8}


def kill_policy_experiment():
    jobs = workload("W-DATA")
    results = {}
    for policy in POLICIES:
        result, summary = run(
            thin_spec(fraction=0.5, name=f"kill-{policy}"), jobs,
            label=policy, kill_policy=policy, penalty=STRONG_PENALTY,
        )
        wasted = sum(
            j.nodes * (j.end_time - j.start_time) / 3600.0
            for j in result.killed
        )
        results[policy] = (summary, wasted)
    return results


def test_a1_kill_policy(benchmark):
    results = benchmark.pedantic(kill_policy_experiment, rounds=1,
                                 iterations=1)
    banner("A1", "kill policy under strong dilation "
                 "(W-DATA on THIN-G50, β=0.8)")
    rows = [
        [
            policy,
            summary.jobs_completed,
            summary.jobs_killed,
            round(wasted, 1),
            round(summary.wait["mean"]),
            round(summary.mean_dilation, 3),
        ]
        for policy, (summary, wasted) in results.items()
    ]
    print(ascii_table(
        ["kill policy", "completed", "killed", "killed node-hours",
         "wait mean (s)", "mean dilation"],
        rows,
    ))
    strict, _ = results["strict"]
    aware, _ = results["dilation_aware"]
    none_, _ = results["none"]
    # Strict manufactures kills out of dilation.
    assert strict.jobs_killed > aware.jobs_killed
    assert none_.jobs_killed == 0
    # The manufactured kills burned node-hours.
    assert results["strict"][1] > results["dilation_aware"][1]
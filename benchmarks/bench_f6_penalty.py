"""F6 — Remote-access penalty sensitivity.

The hardware-sensitivity figure: sweep the linear dilation coefficient
β from 0 (remote DRAM as fast as local) to 1.0 (fully-remote job runs
2×) on the budget-neutral THIN-G100 arm, against the β-independent FAT
baseline.  Reports mean response time and locates the crossover β at
which disaggregation stops beating the baseline.  Asserted shape: thin
response grows monotonically-ish with β, matches-or-beats FAT at β=0,
and loses to FAT at the high end (a crossover exists in [0, 1] for the
balanced mix — if it didn't, the paper's sensitivity argument would be
vacuous).
"""

from __future__ import annotations

from repro.analysis import crossover_point
from repro.metrics.report import series_table

from _common import banner, fat_spec, run, thin_spec, workload

BETAS = (0.0, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


def penalty_sweep():
    jobs = workload("W-MIX")
    _, fat = run(fat_spec(), jobs, penalty={"kind": "none"})
    fat_response = fat.wait["mean"] + 0  # keep summary whole instead
    fat_resp_mean = fat.response["mean"]
    thin_responses, thin_bslds, thin_dilations = [], [], []
    for beta in BETAS:
        _, summary = run(
            thin_spec(fraction=1.0, name=f"THIN-G100-b{beta}"),
            jobs,
            penalty={"kind": "linear", "beta": beta},
        )
        thin_responses.append(summary.response["mean"])
        thin_bslds.append(summary.bsld["mean"])
        thin_dilations.append(summary.mean_dilation)
    return fat_resp_mean, thin_responses, thin_bslds, thin_dilations


def test_f6_penalty_sensitivity(benchmark):
    fat_resp, thin_responses, thin_bslds, thin_dilations = benchmark.pedantic(
        penalty_sweep, rounds=1, iterations=1
    )
    banner("F6", "response time vs remote penalty β "
                 "(THIN-G100 vs FAT, W-MIX)")
    print(series_table(
        "beta",
        list(BETAS),
        {
            "thin response (s)": [round(r) for r in thin_responses],
            "FAT response (s)": [round(fat_resp)] * len(BETAS),
            "thin bsld": [round(b, 2) for b in thin_bslds],
            "thin dilation": [round(d, 4) for d in thin_dilations],
        },
    ))
    cross = crossover_point(
        list(BETAS), thin_responses, [fat_resp] * len(BETAS)
    )
    print(f"\ncrossover: disaggregation stops beating FAT at β ≈ "
          f"{cross if cross is not None else '>1.0'}")
    # Dilation grows with beta by construction; response should follow.
    assert all(a <= b + 1e-9 for a, b in
               zip(thin_dilations, thin_dilations[1:]))
    assert thin_responses[0] <= fat_resp * 1.05  # β=0: at least parity
    assert thin_responses[-1] >= thin_responses[0]  # β hurts

"""T5 — Wait-vs-dilate gate ablation under fabric contention.

On a bandwidth-constrained pool with the contention penalty model,
compare the start gates: always-start (classic), the pressure
threshold gate, and the adaptive cost-based gate.  Gating trades queue
wait for lower dilation; whether it pays depends on the workload — the
table shows the trade and the assertions pin the mechanism: gated arms
never dilate *more* on average than always-start, and every arm
terminates the full workload (liveness of the gates).
"""

from __future__ import annotations

from repro.cluster import ClusterSpec
from repro.metrics import ascii_table
from repro.units import GiB

from _common import (
    FAT_LOCAL,
    NODES,
    NODES_PER_RACK,
    THIN_LOCAL,
    banner,
    run,
    workload,
)

GATES = ("always", "pressure", "adaptive")
CONTENTION_PENALTY = {
    "kind": "contention", "beta": 0.3, "kappa": 3.0, "threshold": 0.4,
}


def contended_spec() -> ClusterSpec:
    removed_total = (FAT_LOCAL - THIN_LOCAL) * NODES
    pool_total = removed_total // 2
    return ClusterSpec.from_dict({
        "name": "THIN-G50-contended",
        "num_nodes": NODES,
        "nodes_per_rack": NODES_PER_RACK,
        "node": {"local_mem": THIN_LOCAL},
        "pool": {
            "global_pool": pool_total,
            # Bandwidth capacity at 40% of pool bytes: heavy epochs
            # push pressure well past the contention threshold.
            "global_bandwidth": float(pool_total) * 0.4,
        },
    })


def gate_experiment():
    jobs = workload("W-DATA")
    summaries = {}
    for gate in GATES:
        _, summary = run(
            contended_spec(), jobs, label=gate, gate=gate,
            penalty=CONTENTION_PENALTY,
        )
        summaries[gate] = summary
    return summaries


def test_t5_wait_vs_dilate_gates(benchmark):
    summaries = benchmark.pedantic(gate_experiment, rounds=1, iterations=1)
    banner("T5", "start-gate ablation under pool-bandwidth contention "
                 "(W-DATA, contention penalty)")
    rows = [
        [
            label,
            round(s.wait["mean"]),
            round(s.response["mean"]),
            round(s.mean_dilation, 4),
            round(s.bsld["mean"], 2),
            s.jobs_completed,
            s.jobs_killed,
        ]
        for label, s in summaries.items()
    ]
    print(ascii_table(
        ["gate", "wait mean (s)", "response mean (s)", "mean dilation",
         "bsld mean", "completed", "killed"],
        rows,
    ))
    always = summaries["always"]
    for gate in ("pressure", "adaptive"):
        gated = summaries[gate]
        # Gates exist to avoid dilation: they must not increase it.
        assert gated.mean_dilation <= always.mean_dilation + 1e-9
        # Liveness: the whole workload reaches a terminal state.
        assert gated.jobs_completed + gated.jobs_killed \
            + gated.jobs_rejected == always.jobs_total

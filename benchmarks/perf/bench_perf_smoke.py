"""Perf-harness smoke bench: the wall-clock cases at reduced scale.

The full harness is `repro perf` (see benchmarks/perf/README.md); this
bench keeps the same cases alive inside the pytest bench suite so a
broken case fails CI even before the dedicated perf-smoke job runs,
and prints a small wall-clock table alongside the paper benches.

Scale: quick-mode sizes shrunk further (scale 0.1, 1 repeat) — this is
a plumbing check with indicative numbers, not the measurement of
record.  `BENCH_PERF.json` at the repo root is the measurement of
record, refreshed per PR via `repro perf`.
"""

from __future__ import annotations

from repro.perf import build_cases, render_report, run_perf


def test_perf_harness_smoke():
    cases = build_cases(quick=True, scale=0.1)
    report = run_perf(cases, mode="quick", repeats_override=1)
    payload = report.to_payload()

    print()
    print("perf harness smoke (scale 0.1, 1 repeat — indicative only):")
    print(render_report(payload))

    assert set(payload["cases"]) == {
        "profile_build",
        "profile_queries",
        "easy_pass",
        "conservative_pass",
        "e2e_easy",
        "e2e_conservative",
        "trace_scan_kernel",
        "trace_replay",
    }
    for name, case in payload["cases"].items():
        assert case["events"] > 0, name
        assert case["median_ms"] >= 0.0, name
        assert case["normalized"] is not None, name

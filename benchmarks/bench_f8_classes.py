"""F8 — Who pays for disaggregation? Per-memory-class breakdown.

Splits jobs into light (≤ 64 GiB requested, half the thin node), mid
(≤ 128 GiB, still fits thin-node DRAM) and heavy (> 128 GiB — needs
the pool on the thin machine) classes, using the *thin* node size as
the common reference in every arm, and compares outcomes on FAT vs
THIN-G100 vs THIN-G50.  Asserted shape: on thin arms, heavy jobs carry
a substantial mean remote fraction while light jobs carry ~none, i.e.
the dilation cost lands on the jobs that use the pool, not on the
compute-bound majority.
"""

from __future__ import annotations

from repro.metrics import ascii_table

from _common import banner, fat_spec, run, thin_spec, workload

ARMS = (
    ("FAT", lambda: fat_spec()),
    ("THIN-G100", lambda: thin_spec(fraction=1.0, name="THIN-G100")),
    ("THIN-G50", lambda: thin_spec(fraction=0.5, name="THIN-G50")),
)


def class_experiment():
    jobs = workload("W-MIX")
    summaries = []
    for label, make_spec in ARMS:
        _, summary = run(make_spec(), jobs, label=label)
        summaries.append(summary)
    return summaries


def test_f8_class_breakdown(benchmark):
    summaries = benchmark.pedantic(class_experiment, rounds=1, iterations=1)
    banner("F8", "per-memory-class outcomes (classes vs the 128 GiB thin "
                 "node: light ≤ 64 GiB, mid ≤ 128 GiB, heavy > 128 GiB)")
    rows = []
    for summary in summaries:
        for cls in ("light", "mid", "heavy"):
            data = summary.by_class.get(cls)
            if data is None:
                continue
            rows.append([
                summary.label,
                cls,
                int(data["jobs"]),
                round(data["wait_mean"]),
                round(data["bsld_mean"], 2),
                round(data["remote_frac_mean"], 3),
            ])
    print(ascii_table(
        ["config", "class", "jobs", "wait mean (s)", "bsld mean",
         "mean remote frac"],
        rows,
    ))
    fat, thin100, thin50 = summaries
    # On FAT nothing is remote, in any class.
    assert all(c["remote_frac_mean"] == 0.0 for c in fat.by_class.values())
    for thin in (thin100, thin50):
        heavy = thin.by_class.get("heavy")
        light = thin.by_class.get("light")
        assert heavy is not None and heavy["remote_frac_mean"] > 0.15
        # The light class stays (almost) entirely local: its requests
        # fit inside the 128 GiB thin node most of the time.
        assert light is not None and light["remote_frac_mean"] \
            < heavy["remote_frac_mean"] / 2

"""F4 — Core and memory utilization per configuration.

The efficiency table: node (core) utilization, DRAM-actually-used
utilization, stranded fraction, and pool utilization for the baseline
and the disaggregated arms on the balanced mix.  Asserted shape: every
thin arm strands less DRAM than FAT, and node utilization stays within
a few points of the baseline (disaggregation does not idle the
machine).
"""

from __future__ import annotations

from repro.metrics import ascii_table

from _common import banner, fat_spec, run, thin_spec, workload

ARMS = (
    ("FAT", lambda: fat_spec()),
    ("THIN-G100", lambda: thin_spec(fraction=1.0, name="THIN-G100")),
    ("THIN-G50", lambda: thin_spec(fraction=0.5, name="THIN-G50")),
    ("THIN-R100", lambda: thin_spec(fraction=1.0, reach="rack",
                                    name="THIN-R100")),
    ("THIN-R50", lambda: thin_spec(fraction=0.5, reach="rack",
                                   name="THIN-R50")),
)


def utilization_experiment():
    jobs = workload("W-MIX")
    summaries = []
    for label, make_spec in ARMS:
        _, summary = run(make_spec(), jobs, label=label)
        summaries.append(summary)
    return summaries


def test_f4_utilization(benchmark):
    summaries = benchmark.pedantic(utilization_experiment, rounds=1,
                                   iterations=1)
    banner("F4", "utilization per configuration (W-MIX)")
    rows = [
        [
            s.label,
            f"{s.node_utilization:.1%}",
            f"{s.local_mem_used_util:.1%}",
            f"{s.stranded_fraction:.1%}",
            f"{s.pool_utilization:.1%}",
            s.jobs_rejected,
            round(s.wait["mean"]),
        ]
        for s in summaries
    ]
    print(ascii_table(
        ["config", "node util", "DRAM used", "DRAM stranded", "pool util",
         "rejected", "wait mean (s)"],
        rows,
    ))
    fat = summaries[0]
    for thin in summaries[1:]:
        # Thin nodes strand less of their (smaller) local DRAM.
        assert thin.stranded_fraction < fat.stranded_fraction
        # And the machine stays busy: within 15 points of the baseline.
        assert thin.node_utilization > fat.node_utilization - 0.15

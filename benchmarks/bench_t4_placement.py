"""T4 — Placement ablation with rack-local pools.

With per-rack pools, *which* racks a job lands in decides which pools
absorb its remote memory.  Compares first-fit, rack-pack, pool-aware
(min_remote), and rack-spreading placement on THIN-R50 with the
data-intensive mix.

The ablation exposes a genuine trade, not a strict ordering: packing
placements concentrate a wide job's pool demand into few racks — so
the widest memory-heavy jobs exceed a single rack pool and are
infeasible (rejected) — while spreading distributes the demand across
all rack pools, keeping those jobs feasible at the price of
substantially higher wait for everyone (it fragments free nodes and
drains every pool a little).  Asserted shape: spread rejects no more
than the packers, and the packers beat spread on mean wait.
"""

from __future__ import annotations

from repro.metrics import ascii_table

from _common import banner, run, thin_spec, workload

PLACEMENTS = ("first_fit", "rack_pack", "min_remote", "spread")


def placement_experiment():
    jobs = workload("W-DATA")
    summaries = {}
    for placement in PLACEMENTS:
        _, summary = run(
            thin_spec(fraction=0.5, reach="rack", name=f"R50/{placement}"),
            jobs,
            label=placement,
            placement=placement,
        )
        summaries[placement] = summary
    return summaries


def test_t4_placement_ablation(benchmark):
    summaries = benchmark.pedantic(placement_experiment, rounds=1,
                                   iterations=1)
    banner("T4", "placement ablation on THIN-R50 rack pools (W-DATA)")
    rows = [
        [
            label,
            round(s.wait["mean"]),
            round(s.bsld["mean"], 2),
            s.jobs_completed,
            s.jobs_killed,
            s.jobs_rejected,
            f"{s.pool_utilization:.0%}",
            f"{s.node_utilization:.0%}",
        ]
        for label, s in summaries.items()
    ]
    print(ascii_table(
        ["placement", "wait mean (s)", "bsld mean", "completed", "killed",
         "rejected", "pool util", "node util"],
        rows,
    ))
    aware = summaries["min_remote"]
    spread = summaries["spread"]
    print("\nnote: packing concentrates per-rack pool demand (wide heavy "
          "jobs become infeasible);\nspreading keeps them feasible but "
          "queues everyone longer.")
    # Spreading distributes pool demand: it never rejects more than the
    # packers do.
    assert spread.jobs_rejected <= aware.jobs_rejected
    # The packers answer with substantially lower mean wait.
    assert aware.wait["mean"] < spread.wait["mean"]
    # All arms audited clean inside run() — the other half of the
    # ablation's value.

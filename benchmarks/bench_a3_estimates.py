"""A3 (ablation) — user runtime estimate accuracy and backfilling.

Backfilling decisions are only as good as the walltime estimates they
are built on (the literature's long-running theme; average production
accuracy is below 60%).  Compares the canonical inaccurate-estimate
workload against a clairvoyant variant (walltime == runtime) on the
same machine, under EASY and conservative backfill.

The famous result in this space is that *inaccuracy is not simply
bad* — inflated estimates open backfill holes that shorter jobs
exploit — so no direction is asserted on mean wait.  What is asserted:
perfect estimates produce zero walltime kills, both arms audit clean,
and the estimate-accuracy statistics differ as constructed.
"""

from __future__ import annotations

from dataclasses import replace

from repro.metrics import ascii_table
from repro.sim import RandomStreams
from repro.units import GiB
from repro.workload.models import Constant
from repro.workload.reference import reference_workload
from repro.workload.synthetic import SyntheticWorkload

from _common import FAT_LOCAL, LOAD, NODES, NUM_JOBS, SEED, banner, run, thin_spec


def make_jobs(perfect: bool):
    params = reference_workload(
        "W-MIX", num_jobs=NUM_JOBS, cluster_nodes=NODES,
        max_mem_per_node=FAT_LOCAL, target_load=LOAD,
    )
    if perfect:
        params = replace(
            params,
            exact_estimate_prob=1.0,
            estimate_inflation=Constant(1.0),
        )
    return SyntheticWorkload(params).generate(RandomStreams(SEED))


def estimate_experiment():
    summaries = {}
    for estimates in ("inaccurate", "perfect"):
        jobs = make_jobs(perfect=estimates == "perfect")
        accuracy = sum(j.estimate_accuracy for j in jobs) / len(jobs)
        for backfill in ("easy", "conservative"):
            _, summary = run(
                thin_spec(fraction=0.5, name=f"{estimates}/{backfill}"),
                jobs, label=f"{estimates}/{backfill}", backfill=backfill,
            )
            summaries[f"{estimates}/{backfill}"] = (summary, accuracy)
    return summaries


def test_a3_estimate_accuracy(benchmark):
    summaries = benchmark.pedantic(estimate_experiment, rounds=1,
                                   iterations=1)
    banner("A3", "estimate accuracy × backfill (W-MIX on THIN-G50)")
    rows = [
        [
            label,
            f"{accuracy:.2f}",
            round(s.wait["mean"]),
            round(s.wait["p95"]),
            round(s.bsld["mean"], 2),
            s.jobs_killed,
        ]
        for label, (s, accuracy) in summaries.items()
    ]
    print(ascii_table(
        ["estimates/backfill", "mean accuracy", "wait mean (s)",
         "wait p95 (s)", "bsld mean", "killed"],
        rows,
    ))
    print("\n(no direction asserted on wait: inflated estimates both "
          "mislead reservations\nand open backfill holes — the net "
          "effect is workload-dependent, per the literature)")
    perfect_easy, acc_perfect = summaries["perfect/easy"]
    inaccurate_easy, acc_inaccurate = summaries["inaccurate/easy"]
    assert acc_perfect == 1.0
    assert acc_inaccurate < 0.75
    # Clairvoyant estimates can never produce walltime kills.
    assert perfect_easy.jobs_killed == 0
"""Shared setup for the benchmark/experiment harness.

One canonical machine and workload suite is used across every table
and figure so numbers are comparable between experiments:

* **Machine**: 64 nodes, 16 per rack (4 racks), 64 cores/node.
* **FAT** baseline: 512 GiB node-local DRAM, no pool (32 TiB total).
* **THIN-G{p}**: 128 GiB local; p% of the removed DRAM (384 GiB/node)
  returned as one global pool.  THIN-G100 matches FAT's total DRAM;
  THIN-G50 is the cost-saving configuration (20 TiB total, 62.5%).
* **THIN-R{p}**: same budget, per-rack pools.
* **Workloads**: the three reference mixes at offered load 0.9,
  600 jobs, seed 42 (generation is deterministic).
* **Scheduler default**: FCFS + memory-aware EASY + first-fit,
  linear penalty β=0.3, dilation-aware kills.

Grid-shaped experiments go through :mod:`repro.runner` (see
:func:`grid` / :func:`sweep`); one-off arms still use :func:`run`.

**Quick mode** (``REPRO_BENCH_QUICK=1`` or ``pytest --quick``) scales
job counts down (:func:`scaled`) so the whole bench suite doubles as a
CI smoke run; assertions are shape-robust at both sizes.

Benches print paper-style tables to stdout (pytest-benchmark is run
with ``-s`` via the bench conftest so tables always appear) and make
only *robust-shape* assertions — who wins, direction of trends — never
absolute numbers.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis import run_config
from repro.cluster import ClusterSpec
from repro.engine.results import SimulationResult
from repro.metrics.summary import ResultSummary
from repro.runner import ScenarioGrid, SweepReport, SweepRunner, default_workers
from repro.sched import Scheduler
from repro.units import GiB
from repro.workload import Job
from repro.workload.reference import generate_reference_jobs

NODES = 64
NODES_PER_RACK = 16
FAT_LOCAL = 512 * GiB
THIN_LOCAL = 128 * GiB
SEED = 42
LOAD = 0.9
BETA = 0.3

DEFAULT_PENALTY = {"kind": "linear", "beta": BETA}

#: Quick mode: CI smoke runs set ``REPRO_BENCH_QUICK=1`` (or pass
#: ``pytest --quick``) to shrink workloads so the suite finishes in a
#: couple of minutes while exercising every code path.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in {
    "1", "true", "yes", "on",
}


def scaled(num_jobs: int) -> int:
    """Scale a bench's job count down in quick mode.

    300 jobs is the smallest size at which the asserted effects (pool
    binding, backfill wins, knee shapes) still materialize reliably.
    """
    return min(num_jobs, 300) if QUICK else num_jobs


NUM_JOBS = scaled(600)

#: Worker count for grid sweeps: the shared ``REPRO_SWEEP_WORKERS``
#: knob, serial by default so pytest-benchmark timings stay comparable.
SWEEP_WORKERS = default_workers(fallback=1)


@lru_cache(maxsize=None)
def workload(
    name: str = "W-MIX",
    num_jobs: int = NUM_JOBS,
    seed: int = SEED,
    load: float = LOAD,
) -> Tuple[Job, ...]:
    """Deterministic cached workload (fresh copies are made per run)."""
    jobs = generate_reference_jobs(
        name,
        seed=seed,
        num_jobs=num_jobs,
        cluster_nodes=NODES,
        max_mem_per_node=FAT_LOCAL,
        target_load=load,
    )
    return tuple(jobs)


def fat_spec(name: str = "FAT") -> ClusterSpec:
    return ClusterSpec.fat_node(
        num_nodes=NODES,
        local_mem=FAT_LOCAL,
        nodes_per_rack=NODES_PER_RACK,
        name=name,
    )


def thin_spec(
    fraction: float = 0.5,
    reach: str = "global",
    local_mem: int = THIN_LOCAL,
    name: Optional[str] = None,
) -> ClusterSpec:
    return ClusterSpec.thin_node(
        num_nodes=NODES,
        nodes_per_rack=NODES_PER_RACK,
        local_mem=local_mem,
        fat_local_mem=FAT_LOCAL,
        pool_fraction=fraction,
        reach=reach,
        name=name,
    )


def local_only_spec(local_mem: int, name: Optional[str] = None) -> ClusterSpec:
    """A machine with the given local DRAM and no pool at all."""
    return ClusterSpec.fat_node(
        num_nodes=NODES,
        local_mem=local_mem,
        nodes_per_rack=NODES_PER_RACK,
        name=name or f"LOCAL-{local_mem // GiB}",
    )


# ----------------------------------------------------------------------
# scenario-grid plumbing (canonical defaults as declarative documents)
# ----------------------------------------------------------------------
def thin_cluster(
    fraction: float = 0.5,
    reach: str = "global",
    local_mem: int = THIN_LOCAL,
    name: Optional[str] = None,
) -> Dict[str, Any]:
    """A THIN machine as a scenario ``cluster`` document."""
    doc: Dict[str, Any] = {
        "kind": "thin",
        "num_nodes": NODES,
        "nodes_per_rack": NODES_PER_RACK,
        "local_mem": local_mem,
        "fat_local_mem": FAT_LOCAL,
        "pool_fraction": fraction,
        "reach": reach,
    }
    if name is not None:
        doc["name"] = name
    return doc


def grid(
    axes: Mapping[str, List[Any]],
    name: str = "bench",
    workload_name: str = "W-MIX",
    num_jobs: int = NUM_JOBS,
    seed: int = SEED,
    load: float = LOAD,
    cluster: Optional[Dict[str, Any]] = None,
    scheduler: Optional[Dict[str, Any]] = None,
) -> ScenarioGrid:
    """A :class:`ScenarioGrid` over the canonical machine/workload."""
    sched: Dict[str, Any] = {"penalty": dict(DEFAULT_PENALTY)}
    sched.update(scheduler or {})
    return ScenarioGrid(
        name=name,
        base={
            "workload": {
                "reference": workload_name,
                "num_jobs": num_jobs,
                "seed": seed,
                "load": load,
                "cluster_nodes": NODES,
                "max_mem_per_node": FAT_LOCAL,
            },
            "cluster": cluster or thin_cluster(),
            "scheduler": sched,
            "class_local_mem": THIN_LOCAL,
        },
        axes=dict(axes),
    )


def sweep(scenario_grid: ScenarioGrid, workers: Optional[int] = None) -> SweepReport:
    """Run a grid with the bench defaults (no cache: benches re-measure)."""
    runner = SweepRunner(workers=workers or SWEEP_WORKERS, cache_dir=None)
    return runner.run(scenario_grid)


def run(
    spec: ClusterSpec,
    jobs,
    label: str = "",
    penalty: Optional[dict] = None,
    audit: bool = True,
    scheduler: Optional[Scheduler] = None,
    sample_interval: Optional[float] = None,
    class_local_mem: int = THIN_LOCAL,
    **build_kwargs,
) -> Tuple[SimulationResult, ResultSummary]:
    """`run_config` with the canonical defaults applied.

    ``class_local_mem`` defaults to the *thin* node size so the
    light/mid/heavy breakdown means the same thing in every arm:
    heavy = needs the pool on the thin machine.
    """
    if scheduler is None and "penalty" not in build_kwargs:
        build_kwargs["penalty"] = penalty or DEFAULT_PENALTY
    return run_config(
        spec,
        list(jobs),
        scheduler=scheduler,
        label=label or spec.name,
        audit=audit,
        class_local_mem=class_local_mem,
        sample_interval=sample_interval,
        **build_kwargs,
    )


def banner(experiment: str, caption: str) -> None:
    print()
    print("=" * 72)
    print(f"{experiment}: {caption}")
    print("=" * 72)


def summaries_to_rows(summaries: List[ResultSummary]) -> List[Dict]:
    return [s.row() for s in summaries]

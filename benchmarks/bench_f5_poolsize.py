"""F5 — Pool-capacity sweep: how much pool is enough?

Sweeps the global pool from 12.5% to 100% of the removed DRAM on the
data-intensive mix (the one that actually stresses the pool) and
reports wait, bounded slowdown, rejections, and pool utilization.
The sweep is one :class:`repro.runner.ScenarioGrid` axis; series are
pulled out of the tidy rows with
:func:`repro.runner.series_from_rows`.

Reading the shape: undersized pools *shed workload* — the widest
memory-heavy jobs become infeasible (rejected), which flatters the
wait of the surviving mix — so feasibility (rejections → 0) is the
primary axis and wait is secondary.  Once the pool stops rejecting
(fraction ≥ 0.5 here), growing it further changes nothing: the knee
is sharp, which is the capacity-planning takeaway — buy the knee, not
the worst case.  Asserted: rejections non-increasing in pool size,
the smallest pool is the most contended, and wait is flat (±25%)
across the no-rejection plateau.
"""

from __future__ import annotations

from repro.metrics.report import series_table
from repro.runner import records_to_rows, series_from_rows

from _common import banner, grid, sweep, thin_cluster

FRACTIONS = (0.125, 0.25, 0.5, 0.75, 1.0)
AXIS = "cluster.pool_fraction"


def poolsize_sweep():
    sweep_grid = grid(
        axes={AXIS: list(FRACTIONS)},
        name="f5-poolsize",
        workload_name="W-DATA",
        cluster=thin_cluster(),
    )
    rows = records_to_rows(sweep(sweep_grid).records)
    _, waits = series_from_rows(rows, AXIS, "wait_mean")
    _, bslds = series_from_rows(rows, AXIS, "bsld_mean")
    _, rejected = series_from_rows(rows, AXIS, "rejected")
    _, pool_utils = series_from_rows(rows, AXIS, "pool_util")
    return waits, bslds, [int(r) for r in rejected], pool_utils


def test_f5_pool_capacity_sweep(benchmark):
    waits, bslds, rejected, pool_utils = benchmark.pedantic(
        poolsize_sweep, rounds=1, iterations=1
    )
    banner("F5", "pool size sweep (W-DATA; pool as fraction of removed DRAM)")
    print(series_table(
        "pool fraction",
        list(FRACTIONS),
        {
            "wait mean (s)": [round(w) for w in waits],
            "bsld mean": [round(b, 2) for b in bslds],
            "rejected": rejected,
            "pool util": [f"{u:.0%}" for u in pool_utils],
        },
    ))
    # More pool never makes more of the workload infeasible.
    assert all(a >= b for a, b in zip(rejected, rejected[1:]))
    # The smallest pool is the most contended one.
    assert pool_utils[0] == max(pool_utils)
    # Diminishing returns: the last doubling (0.5 -> 1.0) buys a smaller
    # absolute wait improvement than the first (0.125 -> 0.25)... unless
    # the small pools rejected so much load they ran emptier.  Make the
    # robust claim only: wait at 1.0 is within noise of wait at 0.75.
    assert waits[-1] <= waits[-2] * 1.25

"""F7 — Pool reach: system-wide vs rack-local vs hybrid.

At an equal total pool budget (50% of removed DRAM), compare one
global pool, per-rack pools, and a hybrid (half rack / half global).
Rack pools are cheaper fabric but fragment capacity: a wide job's
remote demand concentrates in the racks it lands in, so the widest
memory-heavy jobs exceed any single rack pool and become infeasible —
the global and hybrid arms keep them feasible.  (The rack arm's lower
wait is the flip side of shedding exactly the most demanding jobs;
completion count is the primary metric.)  Asserted shape: global
rejects no more and completes no less than rack-local, and hybrid
recovers rack-local's feasibility losses via the global overflow.
"""

from __future__ import annotations

from repro.cluster import ClusterSpec
from repro.metrics import ascii_table
from repro.units import GiB

from _common import (
    FAT_LOCAL,
    NODES,
    NODES_PER_RACK,
    THIN_LOCAL,
    banner,
    run,
    thin_spec,
    workload,
)


def hybrid_spec(fraction: float = 0.5) -> ClusterSpec:
    removed_total = (FAT_LOCAL - THIN_LOCAL) * NODES
    pool_total = int(removed_total * fraction)
    num_racks = NODES // NODES_PER_RACK
    return ClusterSpec.from_dict({
        "name": "HYBRID-50",
        "num_nodes": NODES,
        "nodes_per_rack": NODES_PER_RACK,
        "node": {"local_mem": THIN_LOCAL},
        "pool": {
            "rack_pool": pool_total // 2 // num_racks,
            "global_pool": pool_total // 2,
        },
    })


def reach_experiment():
    jobs = workload("W-DATA")
    arms = [
        ("GLOBAL-50", thin_spec(fraction=0.5, reach="global",
                                name="GLOBAL-50"), {}),
        ("RACK-50", thin_spec(fraction=0.5, reach="rack", name="RACK-50"),
         {"placement": "rack_pack"}),
        ("HYBRID-50", hybrid_spec(0.5), {"placement": "rack_pack"}),
    ]
    summaries = []
    for label, spec, extra in arms:
        _, summary = run(spec, jobs, label=label, **extra)
        summaries.append(summary)
    return summaries


def test_f7_pool_reach(benchmark):
    summaries = benchmark.pedantic(reach_experiment, rounds=1, iterations=1)
    banner("F7", "pool reach at equal budget (W-DATA, 50% of removed DRAM)")
    rows = [
        [
            s.label,
            round(s.wait["mean"]),
            round(s.bsld["mean"], 2),
            s.jobs_completed,
            s.jobs_rejected,
            f"{s.pool_utilization:.0%}",
        ]
        for s in summaries
    ]
    print(ascii_table(
        ["reach", "wait mean (s)", "bsld mean", "completed", "rejected",
         "pool util"],
        rows,
    ))
    global_arm, rack_arm, hybrid_arm = summaries
    # One big pool serves at least as much workload as fragmented ones.
    assert global_arm.jobs_rejected <= rack_arm.jobs_rejected
    assert global_arm.jobs_completed >= rack_arm.jobs_completed
    # Hybrid recovers rack-arm feasibility via the global overflow.
    assert hybrid_arm.jobs_rejected <= rack_arm.jobs_rejected

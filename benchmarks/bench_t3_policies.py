"""T3 — Scheduling policy matrix on the disaggregated machine.

Queue policies {FCFS, SJF, WFP} × backfill {none, EASY, conservative}
on THIN-G50 — the table that shows classic scheduling results survive
disaggregation (backfilling slashes wait under every queue policy).
The matrix is a genuine cartesian product, so it is expressed as a
:class:`repro.runner.ScenarioGrid` and executed by the sweep runner.

Below the matrix, the paper's own ablation: memory-aware vs
memory-blind EASY.  At the generously sized THIN-G50 pool the two
coincide (the pool never binds, so a blind shadow is accidentally
correct); the ablation therefore runs on a deliberately *tight* pool
(THIN-G10) where the pool is a real bottleneck — there the blind
shadow lets backfills squat on pool memory the queue head was waiting
for, and mean wait degrades.  Both effects are asserted.

Conservative runs with a reduced job count to keep its O(queue²) cost
in budget (real implementations cap reservation depth the same way).
"""

from __future__ import annotations

from repro.metrics import ascii_table
from repro.runner import summary_from_record

from _common import banner, grid, scaled, sweep, thin_cluster

NUM_JOBS_T3 = scaled(400)
TIGHT_FRACTION = 0.10  # the ablation's pool: 10% of removed DRAM

QUEUES = ("fcfs", "sjf", "wfp")
BACKFILLS = ("none", "easy", "conservative")


def policy_matrix():
    matrix_grid = grid(
        axes={
            "scheduler.queue": list(QUEUES),
            "scheduler.backfill": list(BACKFILLS),
        },
        name="t3-policy-matrix",
        num_jobs=NUM_JOBS_T3,
        cluster=thin_cluster(fraction=0.5),
    )
    report = sweep(matrix_grid)
    # Scenario names are "<queue>/<backfill>" by grid construction.
    summaries = {
        record["name"]: summary_from_record(record)
        for record in report.records
    }
    # Memory-awareness ablation on the tight pool: a set-point axis,
    # because "blind" flips a flag rather than moving along one path.
    ablation_grid = grid(
        axes={
            "shadow": [
                {"label": "aware", "set": {"scheduler.backfill": "easy"}},
                {"label": "blind", "set": {"scheduler.backfill": "easy",
                                           "scheduler.memory_aware": False}},
            ],
        },
        name="t3-ablation",
        num_jobs=NUM_JOBS_T3,
        cluster=thin_cluster(fraction=TIGHT_FRACTION),
    )
    ablation = {
        record["name"]: summary_from_record(record)
        for record in sweep(ablation_grid).records
    }
    return summaries, ablation


def test_t3_policy_matrix(benchmark):
    summaries, ablation = benchmark.pedantic(
        policy_matrix, rounds=1, iterations=1
    )
    banner("T3", f"policy matrix on THIN-G50 (W-MIX, {NUM_JOBS_T3} jobs)")
    rows = [
        [
            label,
            round(s.wait["mean"]),
            round(s.wait["p95"]),
            round(s.bsld["mean"], 2),
            f"{s.node_utilization:.0%}",
            s.jobs_killed,
        ]
        for label, s in summaries.items()
    ]
    print(ascii_table(
        ["queue/backfill", "wait mean (s)", "wait p95 (s)", "bsld mean",
         "node util", "killed"],
        rows,
    ))
    print(f"\nmemory-awareness ablation on the tight pool "
          f"(THIN-G{int(TIGHT_FRACTION * 100)}):")
    print(ascii_table(
        ["shadow reservation", "wait mean (s)", "bsld mean", "pool util"],
        [
            [label, round(s.wait["mean"]), round(s.bsld["mean"], 2),
             f"{s.pool_utilization:.0%}"]
            for label, s in ablation.items()
        ],
    ))
    # Backfilling's classic win survives disaggregation.
    for queue in QUEUES:
        assert summaries[f"{queue}/easy"].wait["mean"] \
            < summaries[f"{queue}/none"].wait["mean"]
    # The paper's point: when the pool binds, memory-aware shadow
    # reservations beat memory-blind ones outright.
    assert ablation["aware"].wait["mean"] < ablation["blind"].wait["mean"]

"""F1 — Motivation: memory stranding on fat nodes.

Replays each mix on the FAT baseline and reports (a) the CDF of
requested and used per-node memory against the 512 GiB provisioned,
and (b) the time-averaged stranded-DRAM fraction.  The paper-shape
claims asserted: most jobs use a small fraction of the provisioned
memory, and the stranded fraction on the compute-heavy mix exceeds
40% — the number that motivates buying less node DRAM and pooling it.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import ascii_table, stranded_memory_fraction
from repro.units import GiB

from _common import FAT_LOCAL, banner, fat_spec, run, workload

MIXES = ("W-COMP", "W-MIX", "W-DATA")
PERCENTILES = (10, 25, 50, 75, 90, 99)


def stranding_experiment():
    cdf_rows = []
    stranded = {}
    for name in MIXES:
        jobs = workload(name)
        result, summary = run(fat_spec(), jobs, label=f"FAT/{name}",
                              penalty={"kind": "none"})
        req = np.array([j.mem_per_node for j in jobs], dtype=float)
        used = np.array([j.mem_used_per_node for j in jobs], dtype=float)
        cdf_rows.append(
            [name, "requested"]
            + [f"{np.percentile(req, p) / GiB:.0f}" for p in PERCENTILES]
        )
        cdf_rows.append(
            [name, "used"]
            + [f"{np.percentile(used, p) / GiB:.0f}" for p in PERCENTILES]
        )
        stranded[name] = (result, summary)
    return cdf_rows, stranded


def test_f1_memory_stranding(benchmark):
    cdf_rows, stranded = benchmark.pedantic(
        stranding_experiment, rounds=1, iterations=1
    )
    banner("F1", f"per-node memory CDF vs the {FAT_LOCAL // GiB} GiB "
                 "provisioned on FAT nodes")
    print(ascii_table(
        ["mix", "metric"] + [f"p{p} (GiB)" for p in PERCENTILES], cdf_rows
    ))
    print()
    rows = []
    for name, (result, summary) in stranded.items():
        frac = stranded_memory_fraction(result)
        rows.append([
            name,
            f"{summary.node_utilization:.0%}",
            f"{summary.local_mem_used_util:.1%}",
            f"{frac:.1%}",
        ])
    print(ascii_table(
        ["mix", "node util", "DRAM actually used", "DRAM stranded"], rows
    ))
    # Shape assertions: the machine is busy, the DRAM is not.
    comp_result, comp_summary = stranded["W-COMP"]
    assert comp_summary.node_utilization > 0.5
    assert stranded_memory_fraction(comp_result) > 0.40
    # Even the data-heavy mix strands a large fraction.
    data_result, _ = stranded["W-DATA"]
    assert stranded_memory_fraction(data_result) > 0.25

"""T2 — Cluster configuration table.

The hardware arms every experiment compares: the fat-node baseline and
the thin-node + pool configurations at several DRAM budgets and both
pool reaches.  Total-DRAM bookkeeping is asserted (THIN-G100 must
match FAT exactly; THIN-*50 must be 62.5% of FAT's DRAM).
"""

from __future__ import annotations

from repro.metrics import ascii_table
from repro.units import GiB, TiB

from _common import NODES, banner, fat_spec, thin_spec


def build_configs():
    specs = [
        fat_spec(),
        thin_spec(fraction=1.0, reach="global", name="THIN-G100"),
        thin_spec(fraction=0.5, reach="global", name="THIN-G50"),
        thin_spec(fraction=0.25, reach="global", name="THIN-G25"),
        thin_spec(fraction=1.0, reach="rack", name="THIN-R100"),
        thin_spec(fraction=0.5, reach="rack", name="THIN-R50"),
    ]
    for spec in specs:
        spec.validate()
    return specs


def test_t2_cluster_configurations(benchmark):
    specs = benchmark.pedantic(build_configs, rounds=1, iterations=1)
    fat = specs[0]
    banner("T2", "hardware configurations under comparison")
    rows = []
    for spec in specs:
        rows.append([
            spec.name,
            spec.num_nodes,
            spec.num_racks,
            f"{spec.node.local_mem / GiB:.0f}",
            f"{spec.pool.rack_pool / TiB:.2f}" if spec.pool.rack_pool else "-",
            f"{spec.pool.global_pool / TiB:.2f}" if spec.pool.global_pool else "-",
            f"{spec.total_mem / TiB:.1f}",
            f"{spec.total_mem / fat.total_mem:.0%}",
        ])
    print(ascii_table(
        ["config", "nodes", "racks", "GiB/node", "rack pool (TiB)",
         "global pool (TiB)", "total DRAM (TiB)", "vs FAT"],
        rows,
    ))
    assert specs[1].total_mem == fat.total_mem  # THIN-G100 budget-neutral
    assert specs[2].total_mem / fat.total_mem == 0.625  # THIN-G50
    assert specs[4].total_mem == fat.total_mem  # THIN-R100
    assert all(spec.num_nodes == NODES for spec in specs)

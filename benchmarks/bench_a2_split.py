"""A2 (ablation) — local/remote split policy.

Design choice from DESIGN.md §3 / `repro.memdis.split`: how a job's
footprint divides between node DRAM and the pool.  ``local_first`` is
the performance-optimal policy; ``fixed_ratio`` models static
hardware interleaving (a fraction goes remote even when it would fit
locally); ``headroom`` reserves node DRAM for the OS/page cache.

Asserted shape: local-first yields the lowest mean remote fraction
and dilation; fixed-ratio pays dilation on *every* job (including the
small ones); headroom sits between.
"""

from __future__ import annotations

from repro.memdis import FixedRatioSplit, LocalFirstSplit, LinearPenalty
from repro.metrics import ascii_table
from repro.sched import Scheduler
from repro.units import GiB

from _common import banner, run, thin_spec, workload

ARMS = (
    ("local_first", lambda: LocalFirstSplit()),
    ("headroom-16GiB", lambda: LocalFirstSplit(headroom=16 * GiB)),
    ("fixed_ratio-0.5", lambda: FixedRatioSplit(local_ratio=0.5)),
)


def split_experiment():
    jobs = workload("W-MIX")
    summaries = {}
    for label, make_split in ARMS:
        scheduler = Scheduler(
            split_policy=make_split(),
            penalty=LinearPenalty(beta=0.3),
        )
        _, summary = run(
            thin_spec(fraction=1.0, name=f"split-{label}"), jobs,
            label=label, scheduler=scheduler,
        )
        summaries[label] = summary
    return summaries


def test_a2_split_policy(benchmark):
    summaries = benchmark.pedantic(split_experiment, rounds=1, iterations=1)
    banner("A2", "local/remote split policy (W-MIX on THIN-G100, β=0.3)")
    rows = [
        [
            label,
            round(s.mean_remote_fraction, 4),
            round(s.mean_dilation, 4),
            round(s.wait["mean"]),
            round(s.bsld["mean"], 2),
            f"{s.pool_utilization:.1%}",
        ]
        for label, s in summaries.items()
    ]
    print(ascii_table(
        ["split policy", "mean remote frac", "mean dilation",
         "wait mean (s)", "bsld mean", "pool util"],
        rows,
    ))
    local = summaries["local_first"]
    head = summaries["headroom-16GiB"]
    ratio = summaries["fixed_ratio-0.5"]
    assert local.mean_remote_fraction < head.mean_remote_fraction
    assert head.mean_remote_fraction < ratio.mean_remote_fraction
    assert local.mean_dilation <= ratio.mean_dilation
    # Static interleaving taxes even light jobs: remote fraction ~0.5
    # for everyone.
    assert ratio.mean_remote_fraction > 0.4
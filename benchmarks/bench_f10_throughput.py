"""F10 — Throughput under sustained overload.

Drives the balanced mix at offered load 1.2 (the machine cannot keep
up; the queue grows) and compares FAT, budget-neutral THIN-G100, and
cost-saving THIN-G50 on makespan, jobs/hour, and delivered node-hours.
This is the capacity argument in one table: at equal DRAM the thin
machine delivers the same throughput; at 62.5% of the DRAM it still
delivers within 15% of baseline throughput.  Those two bounds are
asserted.
"""

from __future__ import annotations

from repro.metrics import ascii_table

from _common import banner, fat_spec, run, thin_spec, workload

ARMS = (
    ("FAT", lambda: fat_spec()),
    ("THIN-G100", lambda: thin_spec(fraction=1.0, name="THIN-G100")),
    ("THIN-G50", lambda: thin_spec(fraction=0.5, name="THIN-G50")),
)


def throughput_experiment():
    jobs = workload("W-MIX", load=1.2)
    summaries = []
    for label, make_spec in ARMS:
        _, summary = run(make_spec(), jobs, label=label)
        summaries.append(summary)
    return summaries


def test_f10_overload_throughput(benchmark):
    summaries = benchmark.pedantic(throughput_experiment, rounds=1,
                                   iterations=1)
    banner("F10", "sustained overload (W-MIX at offered load 1.2)")
    rows = [
        [
            s.label,
            f"{s.makespan / 3600:.1f}",
            round(s.throughput_jobs_per_hour, 1),
            f"{s.node_utilization:.0%}",
            round(s.wait["mean"]),
            s.jobs_killed,
        ]
        for s in summaries
    ]
    print(ascii_table(
        ["config", "makespan (h)", "jobs/hour", "node util",
         "wait mean (s)", "killed"],
        rows,
    ))
    fat, thin100, thin50 = summaries
    # Budget-neutral disaggregation: no meaningful throughput loss.
    assert thin100.makespan <= fat.makespan * 1.10
    # 62.5% of the DRAM still delivers within 15% of the makespan.
    assert thin50.makespan <= fat.makespan * 1.15
    assert thin50.throughput_jobs_per_hour >= \
        fat.throughput_jobs_per_hour * 0.85

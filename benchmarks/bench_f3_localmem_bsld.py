"""F3 — Bounded slowdown and dilation vs node-local memory capacity.

Companion to F2 on the user-experience metric: as local DRAM shrinks,
more of each job's footprint is remote, so dilation rises and bounded
slowdown with it.  Asserted shape: mean remote fraction and mean
dilation decrease monotonically as local DRAM grows, and bounded
slowdown at 512 GiB (no remote at all) is the sweep's minimum-or-near.
"""

from __future__ import annotations

from repro.metrics.report import series_table
from repro.units import GiB

from _common import banner, run, thin_spec, workload

LOCAL_SIZES = (64, 128, 192, 256, 384, 512)


def bsld_sweep():
    jobs = workload("W-MIX")
    bslds, dilations, remote_fracs = [], [], []
    for local_gib in LOCAL_SIZES:
        _, summary = run(
            thin_spec(fraction=1.0, local_mem=local_gib * GiB,
                      name=f"POOL-{local_gib}"),
            jobs,
        )
        bslds.append(summary.bsld["mean"])
        dilations.append(summary.mean_dilation)
        remote_fracs.append(summary.mean_remote_fraction)
    return bslds, dilations, remote_fracs


def test_f3_bsld_vs_local_memory(benchmark):
    bslds, dilations, remote_fracs = benchmark.pedantic(
        bsld_sweep, rounds=1, iterations=1
    )
    banner("F3", "bounded slowdown / dilation vs local DRAM per node "
                 "(W-MIX, linear β=0.3, pool = removed DRAM)")
    print(series_table(
        "GiB/node",
        list(LOCAL_SIZES),
        {
            "mean bsld": [round(b, 2) for b in bslds],
            "mean dilation": [round(d, 4) for d in dilations],
            "mean remote frac": [round(f, 4) for f in remote_fracs],
        },
    ))
    # Remote fraction and dilation shrink monotonically with local DRAM.
    assert all(a >= b - 1e-12 for a, b in zip(remote_fracs, remote_fracs[1:]))
    assert all(a >= b - 1e-12 for a, b in zip(dilations, dilations[1:]))
    # At 512 GiB local nothing is remote.
    assert remote_fracs[-1] == 0.0
    assert dilations[-1] == 0.0
    # Slowdown at full-fat local is no worse than at the thinnest point.
    assert bslds[-1] <= bslds[0]

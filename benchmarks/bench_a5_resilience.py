"""A5 (ablation) — failures, checkpointing, and goodput.

Failure injection meets checkpoint/restart: drive the balanced mix
through an escalating failure storm (per-node MTBF from none down to
a quarter of the horizon) with and without application checkpointing
every 10 simulated minutes.

Goodput here = base node-seconds of *completed* root jobs (a restarted
job counts once, by lineage).  Asserted shape: failures destroy
goodput monotonically-ish without checkpoints; with checkpoints, at
the harshest failure rate, strictly more root jobs complete than
without.
"""

from __future__ import annotations

from repro.engine import SchedulerSimulation, audit_result, exponential_failure_trace
from repro.cluster import Cluster
from repro.metrics import ascii_table
from repro.sched import build_scheduler
from repro.sim import RandomStreams
from repro.workload import JobState
from repro.workload.filters import reset_jobs

from _common import DEFAULT_PENALTY, NODES, banner, thin_spec, workload

CKPT_INTERVAL = 600.0  # 10 minutes of base progress
MTBF_DIVISORS = (0, 2, 4, 8)  # horizon / divisor; 0 = no failures


def run_arm(jobs, trace, checkpointed: bool):
    fresh = reset_jobs(jobs)
    if checkpointed:
        for job in fresh:
            job.checkpoint_interval = CKPT_INTERVAL
    scheduler = build_scheduler(penalty=DEFAULT_PENALTY)
    result = SchedulerSimulation(
        Cluster(thin_spec(fraction=0.5, name="resilience")),
        scheduler, fresh, failures=list(trace),
    ).run()
    audit_result(result)
    roots_done = {
        j.restart_of or j.job_id
        for j in result.jobs if j.state is JobState.COMPLETED
    }
    goodput = sum(
        j.nodes * j.runtime
        for j in jobs
        if j.job_id in roots_done
    ) / 3600.0
    failure_kills = sum(
        1 for j in result.jobs if j.kill_reason == "node_failure"
    )
    return len(roots_done), goodput, failure_kills, len(result.jobs)


def resilience_experiment():
    jobs = list(workload("W-MIX", num_jobs=400))
    horizon = jobs[-1].submit_time + 48 * 3600
    rows = []
    harshest = {}
    for divisor in MTBF_DIVISORS:
        if divisor == 0:
            trace = []
            label = "none"
        else:
            trace = exponential_failure_trace(
                NODES, horizon, mtbf=horizon / divisor,
                mean_repair=2 * 3600, streams=RandomStreams(13),
            )
            label = f"horizon/{divisor}"
        for checkpointed in (False, True):
            done, goodput, kills, total = run_arm(jobs, trace, checkpointed)
            rows.append([
                label,
                "ckpt" if checkpointed else "plain",
                len(trace),
                kills,
                done,
                round(goodput),
                total - 400,  # continuations spawned
            ])
            if divisor == MTBF_DIVISORS[-1]:
                harshest[checkpointed] = done
    return rows, harshest


def test_a5_resilience(benchmark):
    rows, harshest = benchmark.pedantic(resilience_experiment, rounds=1,
                                        iterations=1)
    banner("A5", "failure storms × checkpointing (W-MIX 400 jobs on "
                 "THIN-G50; ckpt every 10 min)")
    print(ascii_table(
        ["node MTBF", "mode", "failures", "failure kills",
         "roots completed", "goodput (node-h)", "restarts"],
        rows,
    ))
    # Checkpointing recovers work under the harshest storm.
    assert harshest[True] >= harshest[False]
    # And the baseline (no failures) completes everything in both modes.
    assert rows[0][4] == 400 and rows[1][4] == 400
"""Exception hierarchy for the dismem-sched library.

Every error raised on a public code path derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime-state
violations (which usually indicate a bug and are worth reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An experiment, cluster, or workload specification is invalid."""


class UnitError(ConfigurationError):
    """A quantity string (memory size, duration) could not be parsed."""


class AllocationError(ReproError):
    """A resource allocation request violated capacity or state rules.

    Raised when code attempts to allocate busy nodes, exceed pool
    capacity, or release resources that were never granted.  Scheduler
    policies are expected to check feasibility first; seeing this error
    during a simulation indicates a policy bug, not a full system.
    """


class SchedulingError(ReproError):
    """A scheduling policy produced an inconsistent decision."""


class SimulationError(ReproError):
    """The discrete-event kernel was driven into an invalid state.

    Examples: scheduling an event in the past, running a finished
    simulation, or cancelling an event twice.
    """


class TraceFormatError(ReproError):
    """A workload trace file (SWF) is malformed."""


class AuditError(ReproError):
    """The post-hoc schedule auditor found an invariant violation."""

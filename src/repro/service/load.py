"""``repro load``: replay a trace through a live daemon, under load.

The harness answers two questions at once:

1. **Throughput/latency** — N concurrent client threads stream the
   trace's submissions at the daemon; the harness reports
   submissions/sec, client-side submit latency, and the server's own
   decision-latency percentiles (receipt → first scheduling pass) into
   ``BENCH_SERVICE.json``.
2. **Decision identity** — after draining the daemon, the same trace
   is run through the *offline* engine and every job record and
   promise is compared field-for-field.  The service is allowed to be
   a daemon; it is not allowed to schedule differently.

Replay discipline: the trace is cut into **windows** that never split
a same-submit-time group (the pass at instant *t* must see the whole
group, or the admission batch at *t* would differ from the offline
run).  Within a window, jobs are dealt round-robin to the clients and
submitted concurrently — arrival *interleaving* is deliberately
uncontrolled, which is exactly what the identity property must
survive; a barrier then advances the virtual clock to the window's
last submit instant.  Wall-clock throughput is measured around the
submission phase only (advances are the replay protocol's overhead,
not a submission cost — but they are included in the reported
``wall_elapsed_s`` for honesty).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..config import ExperimentConfig
from ..engine.simulation import SchedulerSimulation
from ..perf.core import calibrate
from ..workload.job import Job
from .client import ServiceClient, ServiceError
from .core import default_service_config, percentiles
from .protocol import PROTOCOL_VERSION, job_to_record

__all__ = ["plan_windows", "run_load", "compare_records", "QUICK_THRESHOLDS"]

#: Quick-mode gates: deliberately lenient so CI smoke never flakes on a
#: loaded shared runner.  Real hardware clears these by an order of
#: magnitude (see docs/PERF.md "Service latency").
QUICK_THRESHOLDS = {
    "min_submissions_per_sec": 100.0,
    "max_decision_p99_ms": 2000.0,
}

#: The execution-record fields that must match the offline run exactly.
_IDENTITY_FIELDS = (
    "state",
    "start_time",
    "end_time",
    "assigned_nodes",
    "local_grant_per_node",
    "remote_per_node",
    "pool_grants",
    "dilation",
    "kill_reason",
)


def plan_windows(jobs: Sequence[Job], batch_target: int) -> List[List[Job]]:
    """Cut a submit-time-sorted trace into admission windows.

    Windows aim for ``batch_target`` jobs but may only end on a
    submit-time boundary: all jobs sharing a submit instant land in
    one window, because the scheduling pass at that instant must see
    the complete group for the replay to be decision-identical.
    """
    ordered = sorted(jobs, key=lambda job: (job.submit_time, job.job_id))
    windows: List[List[Job]] = []
    current: List[Job] = []
    for job in ordered:
        if (
            current
            and len(current) >= batch_target
            and job.submit_time != current[-1].submit_time
        ):
            windows.append(current)
            current = []
        current.append(job)
    if current:
        windows.append(current)
    return windows


def _deal(window: Sequence[Job], clients: int) -> List[List[Job]]:
    hands: List[List[Job]] = [[] for _ in range(clients)]
    for index, job in enumerate(window):
        hands[index % clients].append(job)
    return hands


def _spec_of(job: Job) -> Dict[str, Any]:
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "walltime": job.walltime,
        "runtime": job.runtime,
        "mem_per_node": job.mem_per_node,
        "mem_used_per_node": job.mem_used_per_node,
        "user": job.user,
        "group": job.group,
        "tag": job.tag,
    }


def compare_records(
    live: Dict[int, Dict[str, Any]],
    offline: Dict[int, Dict[str, Any]],
) -> List[str]:
    """Field-for-field identity check; returns human-readable diffs."""
    problems: List[str] = []
    missing = sorted(set(offline) - set(live))
    extra = sorted(set(live) - set(offline))
    if missing:
        problems.append(f"jobs missing from service: {missing[:10]}")
    if extra:
        problems.append(f"jobs the offline run never saw: {extra[:10]}")
    for job_id in sorted(set(live) & set(offline)):
        a, b = live[job_id], offline[job_id]
        for field in _IDENTITY_FIELDS:
            va, vb = a.get(field), b.get(field)
            if field == "pool_grants":
                va = {str(k): v for k, v in (va or {}).items()}
                vb = {str(k): v for k, v in (vb or {}).items()}
            if field == "assigned_nodes":
                va, vb = list(va or []), list(vb or [])
            if va != vb:
                problems.append(
                    f"job {job_id} field {field!r}: service={va!r} offline={vb!r}"
                )
        pa, pb = a.get("promise"), b.get("promise")
        if (pa is None) != (pb is None):
            problems.append(
                f"job {job_id} promise presence: service={pa!r} offline={pb!r}"
            )
        elif pa is not None and pb is not None:
            for key in ("decided_at", "promised_start"):
                if pa.get(key) != pb.get(key):
                    problems.append(
                        f"job {job_id} promise {key}: "
                        f"service={pa.get(key)!r} offline={pb.get(key)!r}"
                    )
    return problems


# ----------------------------------------------------------------------
def run_load(
    base_url: str,
    config: Optional[ExperimentConfig] = None,
    *,
    clients: int = 4,
    batch_target: int = 32,
    num_jobs: Optional[int] = None,
    quick: bool = False,
    output: Optional[str | Path] = None,
    thresholds: Optional[Dict[str, float]] = None,
    skip_identity: bool = False,
) -> Dict[str, Any]:
    """Drive the daemon at ``base_url``; return the bench document.

    The daemon must be in **replay** mode and freshly started (clock at
    the trace origin, no prior jobs) — identity is checked against an
    offline run of the same config, so any pre-existing state would
    show up as a diff.  ``quick=True`` trims the trace to 120 jobs and
    applies :data:`QUICK_THRESHOLDS`.
    """
    config = config or default_service_config()
    jobs = config.build_jobs()
    if quick and num_jobs is None:
        num_jobs = 120
    if num_jobs is not None:
        jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))[:num_jobs]
    if not jobs:
        raise ServiceError(400, "empty_trace", "the workload produced no jobs")
    clients = max(1, min(clients, len(jobs)))
    windows = plan_windows(jobs, batch_target)

    control = ServiceClient(base_url)
    health = control.health()
    if health.get("mode") != "replay":
        raise ServiceError(
            409, "wall_clock",
            "load replay needs a replay-mode daemon (start: repro serve)",
        )

    pool = [ServiceClient(base_url) for _ in range(clients)]
    submit_errors: List[str] = []
    submit_latencies: List[float] = []
    lock = threading.Lock()

    def worker(client: ServiceClient, hand: List[Job]) -> None:
        local_lat: List[float] = []
        local_err: List[str] = []
        for job in hand:
            t0 = time.monotonic()
            try:
                client.submit([_spec_of(job)])
                local_lat.append(time.monotonic() - t0)
            except ServiceError as exc:
                local_err.append(f"job {job.job_id}: {exc}")
        with lock:
            submit_latencies.extend(local_lat)
            submit_errors.extend(local_err)

    wall_start = time.monotonic()
    submit_elapsed = 0.0
    for window in windows:
        hands = [hand for hand in _deal(window, clients) if hand]
        t0 = time.monotonic()
        threads = [
            threading.Thread(target=worker, args=(client, hand), daemon=True)
            for client, hand in zip(pool, hands)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        submit_elapsed += time.monotonic() - t0
        # Barrier: run every pass due up to this window's last instant.
        control.advance(window[-1].submit_time)
    control.drain()
    wall_elapsed = time.monotonic() - wall_start

    live_jobs = control.jobs()["jobs"]
    metrics = control.metrics()
    state = control.state()
    for client in pool:
        client.close()

    # ------------------------------------------------------------------
    # identity: offline run of the same trace
    # ------------------------------------------------------------------
    identity: Dict[str, Any] = {"checked": False, "identical": None, "problems": []}
    if not skip_identity:
        offline_engine = SchedulerSimulation(
            config.build_cluster(),
            config.build_scheduler(),
            [job.copy_request() for job in jobs],
        )
        offline_result = offline_engine.run()
        offline_records = {
            job.job_id: job_to_record(
                job, offline_result.promises.get(job.job_id)
            )
            for job in offline_result.jobs
        }
        live_records = {record["job_id"]: record for record in live_jobs}
        problems = compare_records(live_records, offline_records)
        identity = {
            "checked": True,
            "identical": not problems,
            "problems": problems[:50],
            "offline_cycles": offline_result.cycles,
            "service_cycles": metrics.get("cycles"),
        }

    # ------------------------------------------------------------------
    # the bench document
    # ------------------------------------------------------------------
    rate = len(jobs) / submit_elapsed if submit_elapsed > 0 else float("inf")
    calibration_s = calibrate(repeats=1 if quick else 3)
    gates = dict(QUICK_THRESHOLDS if thresholds is None else thresholds)
    decision = metrics.get("decision_latency_ms", {})
    failures: List[str] = list(submit_errors[:20])
    if rate < gates["min_submissions_per_sec"]:
        failures.append(
            f"throughput {rate:.1f}/s below gate "
            f"{gates['min_submissions_per_sec']}/s"
        )
    p99 = decision.get("p99")
    if p99 is not None and p99 > gates["max_decision_p99_ms"]:
        failures.append(
            f"decision p99 {p99}ms above gate {gates['max_decision_p99_ms']}ms"
        )
    if identity["checked"] and not identity["identical"]:
        failures.append(
            f"decision identity broken: {len(identity['problems'])} diffs"
        )

    document: Dict[str, Any] = {
        "schema": 1,
        "protocol": PROTOCOL_VERSION,
        "mode": "quick" if quick else "full",
        "config": config.name,
        "clients": clients,
        "jobs": len(jobs),
        "windows": len(windows),
        "batch_target": batch_target,
        "wall_elapsed_s": round(wall_elapsed, 4),
        "submit_elapsed_s": round(submit_elapsed, 4),
        "submissions_per_sec": round(rate, 2),
        "client_submit_latency_ms": percentiles(submit_latencies),
        "server": {
            "decision_latency_ms": decision,
            "submit_latency_ms": metrics.get("submit_latency_ms"),
            "admission_batch": metrics.get("admission_batch"),
            "counters": metrics.get("counters"),
            "final_now": metrics.get("now"),
            "queue_depth_at_end": state.get("service", {})
            .get("counters", {})
            .get("queued", None),
        },
        "calibration_s": round(calibration_s, 6),
        # Machine-portable form: how many calibration loops one
        # decision-p99 is worth (latency / calibration time).
        "decision_p99_calibrated": (
            round(p99 / (calibration_s * 1e3), 4)
            if p99 is not None and calibration_s > 0
            else None
        ),
        "thresholds": gates,
        "identity": identity,
        "failures": failures,
        "ok": not failures,
    }
    if output is not None:
        Path(output).write_text(json.dumps(document, indent=2) + "\n")
    return document

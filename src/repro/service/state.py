"""The snapshotable cluster-state document (``GET /v1/state``).

One JSON document that fully describes what the service is doing right
now: clock, policy stack, per-node ownership, per-pool occupancy, the
queue, and the running set.  It is computed **on the engine thread**
(like every other op), so it is a consistent cut — no node can appear
both free and owned, and pool occupancy always sums to the running
set's grants.  Dashboards poll it; the load harness snapshots it into
``BENCH_SERVICE.json``; incident write-ups can archive it as the
ground truth of "what the scheduler believed at the time".
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List

from .protocol import PROTOCOL_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import SchedulerService

__all__ = ["STATE_SCHEMA_VERSION", "build_state_document"]

STATE_SCHEMA_VERSION = 1


def build_state_document(
    service: "SchedulerService", include_jobs: bool = False
) -> Dict[str, Any]:
    """Assemble the state document.  Engine-thread only."""
    engine = service.engine
    cluster = service.cluster
    nodes: List[Dict[str, Any]] = [
        {
            "node_id": node.node_id,
            "rack_id": node.rack_id,
            "state": node.state.value,
            "job_id": node.job_id,
            "local_grant_mib": node.local_grant,
            "local_mem_mib": node.local_mem,
        }
        for node in cluster.nodes
    ]
    pools: List[Dict[str, Any]] = []
    for rack in cluster.racks:
        if rack.pool is not None:
            pools.append(_pool_entry(rack.pool))
    if cluster.global_pool is not None:
        pools.append(_pool_entry(cluster.global_pool))
    queue = [
        {
            "job_id": job.job_id,
            "submit_time": job.submit_time,
            "nodes": job.nodes,
            "mem_per_node": job.mem_per_node,
            "user": job.user,
        }
        for job in engine._queue
    ]
    running = [
        {
            "job_id": job.job_id,
            "start_time": job.start_time,
            "nodes": sorted(job.assigned_nodes),
            "remote_per_node": job.remote_per_node,
            "pool_grants": dict(sorted(job.pool_grants.items())),
            "dilation": job.dilation,
        }
        for job in engine._running
    ]
    document: Dict[str, Any] = {
        "schema": STATE_SCHEMA_VERSION,
        "protocol": PROTOCOL_VERSION,
        "service": {
            "mode": service.config.mode,
            "now": engine.now,
            "cycles": engine.cycles,
            "started_wall": service._started_wall,
            "uptime_s": round(time.monotonic() - service._started_mono, 3),
            "counters": service.counters.to_dict(),
        },
        "scheduler": service.scheduler.describe(),
        "cluster": {
            "name": cluster.spec.name,
            "num_nodes": cluster.num_nodes,
            "num_racks": cluster.num_racks,
            "totals": cluster.snapshot(),
            "nodes": nodes,
            "pools": pools,
        },
        "queue": queue,
        "running": running,
    }
    if include_jobs:
        document["jobs"] = [
            service._record(job.job_id) for job in engine.jobs
        ]
    return document


def _pool_entry(pool: Any) -> Dict[str, Any]:
    return {
        "pool_id": pool.pool_id,
        "capacity_mib": pool.capacity,
        "used_mib": pool.used,
        "free_mib": pool.free,
        "utilization": round(pool.utilization, 6),
    }

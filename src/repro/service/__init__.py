"""Online scheduler service: the simulator promoted to a daemon.

The offline engine answers "what would this policy have done to this
trace"; this package answers the *operational* question — run the same
pass-transaction scheduler core as a long-running service that accepts
streaming job submissions over a JSON/HTTP API and serves cluster
state and placement advice while jobs run.

Layering (one module per role, mirroring a client/orchestrator/
resource-state split):

* :mod:`~repro.service.core` — :class:`SchedulerService`, the
  orchestrator: a single engine thread owning an *online*
  :class:`~repro.engine.simulation.SchedulerSimulation`; every client
  request becomes an op in its inbox, and all submissions found in the
  inbox at once are coalesced into **one admission batch** served by
  one scheduling pass per submit instant (the pass-transaction core's
  shared availability sweep is what makes the batch cheap).
* :mod:`~repro.service.protocol` — the wire schema: job specs in,
  job records/promises/errors out, all JSON.
* :mod:`~repro.service.state` — the snapshotable cluster-state
  document served by ``GET /v1/state``.
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only threaded HTTP front end and the matching client.
* :mod:`~repro.service.load` — the ``repro load`` harness: replays a
  trace as N concurrent clients, measures submissions/sec and
  p50/p99 decision latency into ``BENCH_SERVICE.json``, and proves
  the replay **decision-identical** to the offline engine.

See ``docs/SERVICE.md`` for the full handbook.
"""

from .client import ServiceClient, ServiceError
from .core import SchedulerService, ServiceConfig, default_service_config
from .load import run_load
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import ServiceDaemon

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "ServiceDaemon",
    "default_service_config",
    "run_load",
]

"""Wire schema for the scheduler service: specs in, records out.

Everything on the wire is JSON.  A **job spec** is what a client
submits (the request half of :class:`~repro.workload.job.Job`); a
**job record** is what the service reports back (request + execution
record + the service's own latency stamps).  Errors travel as one
envelope shape — ``{"error": {"code": ..., "message": ...}}`` — with
the HTTP status carrying the class of failure.

The schema is versioned (:data:`PROTOCOL_VERSION`); every response
body that is a document (state, metrics, records list) carries the
version so dashboards can detect drift.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..engine.results import Promise
from ..errors import ConfigurationError
from ..workload.job import Job

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "check_idempotency_key",
    "job_from_spec",
    "job_to_record",
    "job_to_request_spec",
    "promise_to_dict",
    "error_envelope",
]

PROTOCOL_VERSION = 1

#: Fields a client may set on a job spec; anything else is a 400 (the
#: strict surface catches typos like ``mem_per_node`` vs ``mem``).
_SPEC_FIELDS = frozenset(
    {
        "job_id",
        "submit_time",
        "nodes",
        "walltime",
        "runtime",
        "mem_per_node",
        "mem_used_per_node",
        "user",
        "group",
        "tag",
    }
)

_REQUIRED_FIELDS = ("nodes", "walltime", "mem_per_node")


class ProtocolError(Exception):
    """A client-visible failure: HTTP status + stable error code.

    ``retry_after`` (seconds) rides along on load-shedding responses
    (429) so clients back off by the amount the service asks for
    instead of guessing.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        return error_envelope(self.code, self.message, self.retry_after)


def error_envelope(
    code: str, message: str, retry_after: Optional[float] = None
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {"error": {"code": code, "message": message}}
    if retry_after is not None:
        envelope["error"]["retry_after"] = retry_after
    return envelope


def check_idempotency_key(key: Any) -> Optional[str]:
    """Validate a request's idempotency key (``None`` = none given).

    Keys are opaque client-chosen strings; the service deduplicates
    retries of the same key, so two *different* logical operations must
    never share one (the client library generates UUIDs).
    """
    if key is None:
        return None
    if not isinstance(key, str) or not key or len(key) > 200:
        raise ProtocolError(
            400,
            "invalid_key",
            "idempotency_key must be a non-empty string of at most 200 chars",
        )
    return key


def _number(spec: Mapping[str, Any], key: str) -> float:
    value = spec[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            400, "invalid_field", f"job spec field {key!r} must be a number"
        )
    return float(value)


def job_from_spec(
    spec: Mapping[str, Any],
    *,
    default_job_id: Optional[int] = None,
    default_submit_time: Optional[float] = None,
) -> Job:
    """Validate a submitted spec into a fresh PENDING :class:`Job`.

    ``runtime`` (the true base runtime, a simulation-only quantity)
    defaults to ``walltime`` — a live service never knows it, and the
    dilation-aware kill bound then degenerates to the classic
    walltime-kill contract.  ``submit_time`` defaults to the value the
    caller supplies (the service stamps "now"); ``job_id`` likewise.
    """
    if not isinstance(spec, Mapping):
        raise ProtocolError(400, "invalid_spec", "job spec must be an object")
    unknown = set(spec) - _SPEC_FIELDS
    if unknown:
        raise ProtocolError(
            400,
            "unknown_field",
            f"unknown job spec field(s): {', '.join(sorted(unknown))}",
        )
    missing = [key for key in _REQUIRED_FIELDS if key not in spec]
    if missing:
        raise ProtocolError(
            400,
            "missing_field",
            f"job spec requires: {', '.join(missing)}",
        )
    job_id = spec.get("job_id", default_job_id)
    if job_id is None:
        raise ProtocolError(400, "missing_field", "job spec requires job_id")
    submit_time = spec.get("submit_time", default_submit_time)
    if submit_time is None:
        raise ProtocolError(400, "missing_field", "job spec requires submit_time")
    walltime = _number(spec, "walltime")
    runtime = (
        _number(spec, "runtime") if "runtime" in spec else walltime
    )
    try:
        return Job(
            job_id=int(job_id),
            submit_time=float(submit_time),
            nodes=int(_number(spec, "nodes")),
            walltime=walltime,
            runtime=runtime,
            mem_per_node=int(_number(spec, "mem_per_node")),
            mem_used_per_node=int(_number(spec, "mem_used_per_node"))
            if "mem_used_per_node" in spec
            else -1,
            user=str(spec.get("user", "user0")),
            group=str(spec.get("group", "group0")),
            tag=str(spec.get("tag", "")),
        )
    except ConfigurationError as exc:
        raise ProtocolError(400, "invalid_spec", str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(400, "invalid_spec", f"malformed job spec: {exc}") from exc


def job_to_request_spec(job: Job) -> Dict[str, Any]:
    """The fully resolved request half of a job, JSON-able.

    This is the write-ahead journal's submit payload: every default
    (auto id, stamped submit time, runtime ← walltime) is already
    applied, so replaying the spec reconstructs the identical job no
    matter what the auto-id counter looks like at replay time.
    """
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "walltime": job.walltime,
        "runtime": job.runtime,
        "mem_per_node": job.mem_per_node,
        "mem_used_per_node": job.mem_used_per_node,
        "user": job.user,
        "group": job.group,
        "tag": job.tag,
    }


def job_to_record(
    job: Job,
    promise: Optional[Promise] = None,
    timing: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The service's view of one job, JSON-able.

    The execution half mirrors the engine's record exactly — the load
    harness compares these fields verbatim against an offline run, so
    nothing here may be rounded or reordered.
    """
    record: Dict[str, Any] = {
        "job_id": job.job_id,
        "state": job.state.value,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "walltime": job.walltime,
        "runtime": job.runtime,
        "mem_per_node": job.mem_per_node,
        "mem_used_per_node": job.mem_used_per_node,
        "user": job.user,
        "group": job.group,
        "tag": job.tag,
        "start_time": job.start_time,
        "end_time": job.end_time,
        "assigned_nodes": list(job.assigned_nodes),
        "local_grant_per_node": job.local_grant_per_node,
        "remote_per_node": job.remote_per_node,
        "pool_grants": dict(sorted(job.pool_grants.items())),
        "dilation": job.dilation,
        "kill_reason": job.kill_reason,
    }
    record["promise"] = promise_to_dict(promise) if promise is not None else None
    if timing is not None:
        record["service"] = dict(timing)
    return record


def promise_to_dict(promise: Promise) -> Dict[str, Any]:
    return {
        "job_id": promise.job_id,
        "decided_at": promise.decided_at,
        "promised_start": promise.promised_start,
    }

"""``repro chaos``: kill the scheduler service mid-run and prove that
recovery changes nothing.

Two harnesses share one verdict — after any number of crashes, the
recovered service's final records and promises must be field-for-field
identical to an uninterrupted offline run of the same trace, and the
recovered schedule must pass the full audit invariants:

1. **In-process crash simulation** (:func:`run_chaos`): the trace is
   cut into admission windows; between windows the service is torn
   down exactly as a SIGKILL would leave it (journal fsynced, no final
   checkpoint, nothing else) and reopened from the state directory.
   Crash points, checkpoint cadence, and the number of crashes are all
   drawn from a seeded RNG, so every seed explores a different crash
   schedule deterministically.  This is the CI gate: seeds × scheduler
   variants, seconds per cell.

2. **Subprocess SIGKILL** (:func:`run_chaos_process`): a real
   ``repro serve`` daemon is spawned, loaded over HTTP with keyed
   submissions, SIGKILLed at a randomized mid-trace point, restarted
   on the same state directory, and the interrupted window is retried
   with the same idempotency keys — the lost-reply path exercised for
   real, process death and all.

The report document both produce is JSON-able and is what the CI
chaos-smoke job archives.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..audit import deep_audit
from ..config import ExperimentConfig
from ..engine.audit import audit_result
from ..engine.simulation import SchedulerSimulation
from ..errors import ReproError
from ..workload.job import Job
from .client import ServiceClient
from .core import SchedulerService, ServiceConfig, default_service_config
from .load import compare_records, plan_windows
from .protocol import job_to_record

__all__ = ["run_chaos", "run_chaos_process", "CHAOS_SCHEDULERS"]

#: The scheduler variants every chaos gate must hold under.  EASY and
#: conservative backfill take different code paths through promises
#: and the availability profile — surviving one says little about the
#: other.
CHAOS_SCHEDULERS = (
    {"backfill": "easy"},
    {"backfill": "conservative"},
)


def _offline_records(
    config: ExperimentConfig, jobs: Sequence[Job]
) -> Dict[int, Dict[str, Any]]:
    engine = SchedulerSimulation(
        config.build_cluster(),
        config.build_scheduler(),
        [job.copy_request() for job in jobs],
    )
    result = engine.run()
    audit_result(result)
    deep_audit(result).raise_if_failed()
    return {
        job.job_id: job_to_record(job, result.promises.get(job.job_id))
        for job in result.jobs
    }


def _spec_of(job: Job) -> Dict[str, Any]:
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "walltime": job.walltime,
        "runtime": job.runtime,
        "mem_per_node": job.mem_per_node,
        "mem_used_per_node": job.mem_used_per_node,
        "user": job.user,
        "group": job.group,
        "tag": job.tag,
    }


def _crash(service: SchedulerService) -> None:
    """Tear the service down as a SIGKILL would: acknowledged work is
    on disk (the journal fsyncs before every acknowledgement), the
    shutdown checkpoint never happens."""
    service._final_checkpoint = lambda: None  # type: ignore[method-assign]
    service.stop()


def _variant_config(
    base: Optional[ExperimentConfig], scheduler: Dict[str, Any], num_jobs: int
) -> ExperimentConfig:
    config = base or default_service_config()
    config = ExperimentConfig.from_dict(config.to_dict())
    config.workload = dict(config.workload, num_jobs=num_jobs)
    config.scheduler = dict(config.scheduler, **scheduler)
    return config


# ----------------------------------------------------------------------
# layer 1: in-process crash simulation (the CI gate)
# ----------------------------------------------------------------------
def _one_crash_run(
    config: ExperimentConfig,
    state_dir: Path,
    seed: int,
) -> Dict[str, Any]:
    """Replay one trace with seeded random crashes; return the verdict."""
    rng = np.random.default_rng(seed)
    jobs = config.build_jobs()
    windows = plan_windows(jobs, batch_target=max(2, len(jobs) // 12))
    # Every run draws its own cadence so crash points land before,
    # between, and after snapshots across the seed sweep.
    checkpoint_every = int(rng.integers(0, 6))
    crash_windows = set(
        rng.choice(
            range(len(windows)), size=min(3, max(1, len(windows) // 3)),
            replace=False,
        ).tolist()
    )
    svc_config = ServiceConfig(
        mode="replay",
        state_dir=str(state_dir),
        checkpoint_every=checkpoint_every,
    )

    crashes = 0
    service = SchedulerService.open(config, svc_config).start()
    try:
        for index, window in enumerate(windows):
            for job in window:
                service.submit(
                    [_spec_of(job)], idempotency_key=f"chaos-{seed}-{job.job_id}"
                )
            service.advance(window[-1].submit_time)
            if index in crash_windows:
                _crash(service)
                crashes += 1
                service = SchedulerService.open(config, svc_config).start()
                # The client retries its last window into the recovered
                # service; dedup must absorb every duplicate.
                for job in window:
                    service.submit(
                        [_spec_of(job)],
                        idempotency_key=f"chaos-{seed}-{job.job_id}",
                    )
        service.advance(None)
        live = {
            record["job_id"]: record
            for record in service.jobs()["jobs"]
        }
        recovered = service.engine.online_result()
        audit_result(recovered)
        # The extended validator recomputes occupancy from scratch; a
        # recovered schedule must survive it, not just the legacy
        # first-failure auditor.
        recovered_report = deep_audit(recovered)
        dedup_hits = service.counters.dedup_hits
    finally:
        service.stop()

    problems = compare_records(live, _offline_records(config, jobs))
    problems.extend(
        f"deep-audit: {violation}" for violation in recovered_report.errors
    )
    return {
        "seed": seed,
        "jobs": len(jobs),
        "windows": len(windows),
        "crashes": crashes,
        "checkpoint_every": checkpoint_every,
        "dedup_hits": dedup_hits,
        "problems": problems[:20],
        "ok": not problems,
    }


def run_chaos(
    config: Optional[ExperimentConfig] = None,
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    schedulers: Sequence[Dict[str, Any]] = CHAOS_SCHEDULERS,
    num_jobs: int = 60,
    state_root: Optional[str | Path] = None,
    output: Optional[str | Path] = None,
    progress=None,
) -> Dict[str, Any]:
    """The chaos gate: seeds × scheduler variants of :func:`_one_crash_run`.

    Returns a report document with ``ok`` False if any cell diverged
    from its offline run or failed the audit.
    """
    cells: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        root = Path(state_root) if state_root is not None else Path(scratch)
        for scheduler in schedulers:
            variant = _variant_config(config, scheduler, num_jobs)
            for seed in seeds:
                state_dir = root / f"{scheduler['backfill']}-{seed}"
                cell = _one_crash_run(variant, state_dir, seed)
                cell["scheduler"] = dict(scheduler)
                cells.append(cell)
                if progress is not None:
                    verdict = "ok" if cell["ok"] else "DIVERGED"
                    progress(
                        f"chaos {scheduler['backfill']} seed={seed}: "
                        f"{cell['crashes']} crashes, "
                        f"{cell['dedup_hits']} dedup hits, {verdict}"
                    )
    document = {
        "schema": 1,
        "kind": "inprocess",
        "seeds": list(seeds),
        "num_jobs": num_jobs,
        "cells": cells,
        "total_crashes": sum(cell["crashes"] for cell in cells),
        "ok": all(cell["ok"] for cell in cells),
    }
    if output is not None:
        Path(output).write_text(json.dumps(document, indent=2) + "\n")
    return document


# ----------------------------------------------------------------------
# layer 2: a real daemon, a real SIGKILL
# ----------------------------------------------------------------------
_URL_RE = re.compile(r"http://[\d.]+:\d+")


def _spawn_daemon(
    config_path: Path, state_dir: Path, timeout: float = 30.0
) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--config", str(config_path),
            "--port", "0",
            "--state-dir", str(state_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise ReproError(
                    f"daemon exited {process.returncode} before serving"
                )
            continue
        match = _URL_RE.search(line)
        if match:
            return process, match.group(0)
    process.kill()
    raise ReproError(f"daemon never printed its URL (last line: {line!r})")


def run_chaos_process(
    config: Optional[ExperimentConfig] = None,
    *,
    seed: int = 1,
    num_jobs: int = 40,
    kills: int = 2,
    output: Optional[str | Path] = None,
    progress=None,
) -> Dict[str, Any]:
    """SIGKILL a live ``repro serve`` daemon mid-trace and recover it.

    The client keeps retrying the window that was in flight when the
    process died, using the same idempotency keys — exactly what a
    production submit tool would do — then the drained result is
    compared field-for-field against the offline engine.
    """
    rng = np.random.default_rng(seed)
    config = _variant_config(config, {"backfill": "easy"}, num_jobs)
    jobs = config.build_jobs()
    windows = plan_windows(jobs, batch_target=max(2, len(jobs) // 10))
    kill_windows = set(
        rng.choice(
            range(len(windows)), size=min(kills, len(windows)), replace=False
        ).tolist()
    )

    killed = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-proc-") as scratch:
        scratch_path = Path(scratch)
        config_path = scratch_path / "experiment.json"
        config_path.write_text(config.to_json())
        state_dir = scratch_path / "state"
        process, url = _spawn_daemon(config_path, state_dir)
        try:
            client = ServiceClient(url, retries=4, backoff_s=0.05)
            for index, window in enumerate(windows):
                if index in kill_windows:
                    # Mid-window murder: submit half, SIGKILL, restart,
                    # then resubmit the WHOLE window with the same keys
                    # — recovery + dedup must sort out which half was
                    # durably applied.
                    half = max(1, len(window) // 2)
                    for job in window[:half]:
                        client.submit(
                            [_spec_of(job)],
                            idempotency_key=f"proc-{seed}-{job.job_id}",
                        )
                    process.kill()
                    process.wait(timeout=10.0)
                    killed += 1
                    client.close()
                    process, url = _spawn_daemon(config_path, state_dir)
                    client = ServiceClient(url, retries=4, backoff_s=0.05)
                    if progress is not None:
                        progress(
                            f"SIGKILL at window {index}: daemon back on {url}"
                        )
                for job in window:
                    client.submit(
                        [_spec_of(job)],
                        idempotency_key=f"proc-{seed}-{job.job_id}",
                    )
                client.advance(window[-1].submit_time)
            client.drain()
            live = {
                record["job_id"]: record for record in client.jobs()["jobs"]
            }
            recovery = client.metrics()["durability"]["recovery"]
            client.close()
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(timeout=15.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait(timeout=10.0)

    problems = compare_records(live, _offline_records(config, jobs))
    document = {
        "schema": 1,
        "kind": "process",
        "seed": seed,
        "jobs": len(jobs),
        "windows": len(windows),
        "sigkills": killed,
        "final_recovery": recovery,
        "graceful_exit_code": process.returncode,
        "problems": problems[:20],
        "ok": not problems
        and killed == len(kill_windows)
        and process.returncode == 0,
    }
    if output is not None:
        Path(output).write_text(json.dumps(document, indent=2) + "\n")
    return document

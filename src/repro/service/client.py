"""JSON/HTTP client for the scheduler service (stdlib ``http.client``).

One :class:`ServiceClient` wraps one persistent keep-alive connection.
The connection is **not** thread-safe — that is deliberate: the load
harness gives each worker thread its own client, which is both the
realistic shape (real submit tools hold their own connection) and the
fast one (no client-side lock on the hot path).  Non-2xx responses
raise :class:`ServiceError` carrying the server's stable error code,
so callers branch on ``exc.code`` (``"duplicate_job"``,
``"late_arrival"``, ...) rather than parsing messages.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional
from urllib.parse import urlsplit

from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Typed calls over one persistent HTTP connection."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ReproError(f"unsupported scheme in {base_url!r}")
        netloc = parts.netloc or parts.path  # accept "host:port" bare
        if not netloc:
            raise ReproError(f"no host in service url {base_url!r}")
        self._netloc = netloc
        self._timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Any = None) -> Any:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):  # one retry on a stale keep-alive socket
            if self._conn is None:
                self._conn = HTTPConnection(self._netloc, timeout=self._timeout)
                # Small request/small reply ping-pong: Nagle + delayed
                # ACK would cost ~40ms per round trip.
                self._conn.connect()
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, HTTPException, socket.timeout, OSError):
                self.close()
                if attempt:
                    raise
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                response.status, "bad_payload", f"non-JSON response: {exc}"
            ) from exc
        if response.status >= 300:
            error = document.get("error", {}) if isinstance(document, dict) else {}
            raise ServiceError(
                response.status,
                error.get("code", "http_error"),
                error.get("message", f"HTTP {response.status}"),
            )
        return document

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def submit(self, jobs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._request("POST", "/v1/submit", {"jobs": jobs})["jobs"]

    def submit_one(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self.submit([spec])[0]

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._request("POST", "/v1/cancel", {"job_id": job_id})

    def query(self, job_id: int) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def advise(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/v1/advise", spec)

    def state(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/state")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def advance(self, to: Optional[float]) -> Dict[str, Any]:
        return self._request("POST", "/v1/advance", {"to": to})

    def drain(self) -> Dict[str, Any]:
        return self.advance(None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

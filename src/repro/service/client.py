"""JSON/HTTP client for the scheduler service (stdlib ``http.client``).

One :class:`ServiceClient` wraps one persistent keep-alive connection.
The connection is **not** thread-safe — that is deliberate: the load
harness gives each worker thread its own client, which is both the
realistic shape (real submit tools hold their own connection) and the
fast one (no client-side lock on the hot path).  Non-2xx responses
raise :class:`ServiceError` carrying the server's stable error code,
so callers branch on ``exc.code`` (``"duplicate_job"``,
``"late_arrival"``, ...) rather than parsing messages.

**Retry semantics.**  A network error leaves the client unable to tell
whether the server applied the request (the classic lost-reply
ambiguity), so blind resends can double-apply.  The client therefore
only retries requests that are *safe to repeat*: reads, advances, and
mutations carrying an idempotency key — which :meth:`submit` and
:meth:`cancel` generate automatically, so their retries are
deduplicated server-side and applied exactly once.  Retries use capped
exponential backoff with jitter.  Shed responses that are guaranteed
not applied — the 429 inbox-full shed and the 504 deadline shed
(``deadline_exceeded``, raised *before* any engine work) — honor the
server's ``retry_after`` hint and are retryable for every request,
keyed or not.  A 504 ``timeout`` instead reports an op that outlived
its reply window and may still be applied, so it follows the same
safe-to-repeat rule as a network error.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional
from urllib.parse import urlsplit

from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]

_BACKOFF_CAP_S = 1.0


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """Typed calls over one persistent HTTP connection.

    ``retries`` bounds how many times a safe-to-repeat request is
    retried after a network error or a 429 load shed; ``backoff_s``
    seeds the exponential backoff (doubled per attempt, jittered,
    capped at one second).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ReproError(f"unsupported scheme in {base_url!r}")
        netloc = parts.netloc or parts.path  # accept "host:port" bare
        if not netloc:
            raise ReproError(f"no host in service url {base_url!r}")
        self._netloc = netloc
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff_s = backoff_s
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    def _sleep_backoff(self, attempt: int, hint: Optional[float]) -> None:
        delay = min(_BACKOFF_CAP_S, self._backoff_s * (2**attempt))
        if hint is not None:
            delay = max(delay, min(hint, _BACKOFF_CAP_S))
        # Jitter to half..full delay: retrying clients decorrelate
        # instead of re-stampeding a shedding server in lockstep.
        time.sleep(delay * (0.5 + random.random() / 2))

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        *,
        idempotent: bool = True,
    ) -> Any:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        attempt = 0
        while True:
            if self._conn is None:
                self._conn = HTTPConnection(self._netloc, timeout=self._timeout)
                # Small request/small reply ping-pong: Nagle + delayed
                # ACK would cost ~40ms per round trip.
                self._conn.connect()
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
            except (ConnectionError, HTTPException, socket.timeout, OSError):
                # The server may or may not have applied the request —
                # only repeat it when repeating is safe.
                self.close()
                if not idempotent or attempt >= self._retries:
                    raise
                self._sleep_backoff(attempt, None)
                attempt += 1
                continue
            try:
                document = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    response.status, "bad_payload", f"non-JSON response: {exc}"
                ) from exc
            if response.status >= 300:
                error = (
                    document.get("error", {}) if isinstance(document, dict) else {}
                )
                failure = ServiceError(
                    response.status,
                    error.get("code", "http_error"),
                    error.get("message", f"HTTP {response.status}"),
                    error.get("retry_after"),
                )
                if attempt < self._retries and (
                    response.status == 429
                    or (
                        response.status == 504
                        and (failure.code == "deadline_exceeded" or idempotent)
                    )
                ):
                    # A shed request was never applied (429 inbox-full,
                    # 504 deadline shed happen *before* any engine
                    # work): always safe to retry, keyed or not.  A 504
                    # ``timeout`` is the lost-reply ambiguity over HTTP
                    # — the op may still apply after the reply window —
                    # so it retries only when repeating is safe.
                    self._sleep_backoff(attempt, failure.retry_after)
                    attempt += 1
                    continue
                raise failure
            return document

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def submit(
        self,
        jobs: List[Dict[str, Any]],
        idempotency_key: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Submit job specs; exactly-once even across retries.

        A key is generated when the caller does not supply one, making
        the request safe to resend after a lost reply: the service
        deduplicates on the key and returns the original outcome.
        """
        key = idempotency_key or uuid.uuid4().hex
        body = {"jobs": jobs, "idempotency_key": key}
        return self._request("POST", "/v1/submit", body)["jobs"]

    def submit_one(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self.submit([spec])[0]

    def cancel(
        self, job_id: int, idempotency_key: Optional[str] = None
    ) -> Dict[str, Any]:
        key = idempotency_key or uuid.uuid4().hex
        return self._request(
            "POST", "/v1/cancel", {"job_id": job_id, "idempotency_key": key}
        )

    def query(self, job_id: int) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def advise(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/v1/advise", spec)

    def state(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/state")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def advance(self, to: Optional[float]) -> Dict[str, Any]:
        # Idempotent by the clock's monotonic contract: re-advancing to
        # a time already reached is a no-op, so a retry is safe.
        return self._request("POST", "/v1/advance", {"to": to})

    def drain(self) -> Dict[str, Any]:
        return self.advance(None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

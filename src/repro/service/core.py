"""The service orchestrator: one engine thread, batched admissions.

:class:`SchedulerService` wraps an *online*
:class:`~repro.engine.simulation.SchedulerSimulation` behind a
single-writer design: client-facing calls (from any number of HTTP
handler threads) never touch the engine — they enqueue an **op** and
block on its future; one engine thread drains the inbox and is the
only code that mutates engine, cluster, or scheduler state.  That
removes every lock from the scheduler hot path and gives the service
its admission-batching behavior for free:

* every ``submit`` op found in one inbox drain joins **one admission
  batch** — the whole batch is injected as one sorted group and served
  by one scheduling pass per distinct submit instant, so one shared
  availability sweep (the PR-4 pass transaction) prices N concurrent
  submissions at roughly the cost of one;
* non-submit ops (cancel, query, advise, state, advance) are applied
  in arrival order after the batch, which makes a cancel racing its
  own submit well-defined: whichever reached the inbox first wins.

Clock policy is the service's, not the engine's: in ``wall`` mode the
engine thread maps monotonic wall time onto virtual seconds (scaled by
``speed``) every ``tick_s``; in ``replay`` mode the clock moves only on
explicit ``advance`` ops — that is the mode the load harness drives,
and the mode under which a replayed trace is decision-identical to the
offline engine.

**Decision latency**, the service's headline metric, is measured here:
for each submission, the wall-clock interval from request receipt to
the end of the first inbox drain in which the engine clock reached the
job's submit instant — i.e. until the scheduling pass that first
considered the job (started it, promised it a reservation, or queued
it behind one) had run.  It prices exactly the admission-batching
trade-off: coalescing widens batches (throughput) at the cost of the
earliest submission in each batch waiting out the linger (latency).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..config import ExperimentConfig
from ..engine.simulation import SchedulerSimulation
from ..errors import ConfigurationError, ReproError
from ..sched.base import Scheduler, SchedulerContext
from ..workload.job import Job
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    job_from_spec,
    job_to_record,
)

__all__ = [
    "ServiceConfig",
    "SchedulerService",
    "default_service_config",
    "percentiles",
]

_OP_TIMEOUT_S = 60.0


def default_service_config() -> ExperimentConfig:
    """The built-in service experiment: the demo thin-node machine.

    ``repro serve`` without ``--config`` and ``repro load`` without one
    build *this*, so a daemon and a load run that both defaulted are
    guaranteed to agree on cluster and scheduler — the precondition for
    the decision-identity check.
    """
    return ExperimentConfig(
        name="service-demo",
        cluster=ClusterSpec.thin_node(
            num_nodes=32,
            local_mem="128GiB",
            fat_local_mem="512GiB",
            pool_fraction=0.5,
            reach="global",
            name="SVC-THIN-32",
        ),
        workload={"reference": "W-MIX", "num_jobs": 1000, "seed": 42, "load": 0.9},
        scheduler={
            "queue": "fcfs",
            "backfill": "easy",
            "placement": "first_fit",
            "penalty": {"kind": "linear", "beta": 0.3},
        },
    )


def percentiles(values: List[float]) -> Dict[str, Optional[float]]:
    """p50/p90/p99/max/mean of a latency sample, in milliseconds.

    Nearest-rank percentiles on the sorted sample — standard for
    latency reporting, and exact for the small-thousands sample sizes
    the service sees per load run.  Empty samples yield all-None.
    """
    if not values:
        return {"count": 0, "p50": None, "p90": None, "p99": None,
                "max": None, "mean": None}
    ordered = sorted(values)
    count = len(ordered)

    def rank(q: float) -> float:
        index = max(0, min(count - 1, math.ceil(q * count) - 1))
        return ordered[index] * 1e3

    return {
        "count": count,
        "p50": round(rank(0.50), 3),
        "p90": round(rank(0.90), 3),
        "p99": round(rank(0.99), 3),
        "max": round(ordered[-1] * 1e3, 3),
        "mean": round(sum(ordered) / count * 1e3, 3),
    }


@dataclass
class ServiceConfig:
    """Operating parameters of one service instance."""

    #: ``"replay"`` — virtual time moves only on ``advance`` ops (load
    #: harness / differential testing); ``"wall"`` — the engine thread
    #: advances the clock every ``tick_s`` of wall time.
    mode: str = "replay"
    #: Virtual seconds per wall second in ``wall`` mode (3600 = one
    #: simulated hour per real second).
    speed: float = 1.0
    #: Wall-mode ticker period, seconds; also the admission linger — a
    #: submission waits at most one tick for its scheduling pass.
    tick_s: float = 0.05
    #: Virtual clock origin.
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("replay", "wall"):
            raise ConfigurationError(f"unknown service mode {self.mode!r}")
        if self.speed <= 0:
            raise ConfigurationError("speed must be positive")
        if self.tick_s <= 0:
            raise ConfigurationError("tick_s must be positive")


class _Op:
    """One client request in the engine thread's inbox."""

    __slots__ = ("kind", "payload", "received", "done", "result", "error")

    def __init__(self, kind: str, payload: Any, received: float) -> None:
        self.kind = kind
        self.payload = payload
        self.received = received  # monotonic seconds at request receipt
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


@dataclass
class _Counters:
    submitted: int = 0
    admitted: int = 0
    rejected_specs: int = 0
    cancelled: int = 0
    cancel_kills: int = 0
    queries: int = 0
    advises: int = 0
    advances: int = 0
    drains: int = 0
    batches: int = 0
    ticks: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Timing:
    """Service-side latency stamps for one submission."""

    received: float
    admitted: Optional[float] = None
    decided: Optional[float] = None
    batch_size: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class SchedulerService:
    """The long-running scheduler core behind the HTTP front end."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cluster = cluster
        self.scheduler = scheduler
        self.engine = SchedulerSimulation(
            cluster,
            scheduler,
            [],
            online=True,
            start_time=self.config.start_time,
        )
        self._inbox: deque[_Op] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._crashed: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self.counters = _Counters()
        self._timings: Dict[int, _Timing] = {}
        self._undecided: Dict[int, _Timing] = {}
        self._submit_latencies: List[float] = []
        self._decision_latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._next_auto_id = 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SchedulerService":
        if self._thread is not None:
            raise ReproError("service already started")
        self._thread = threading.Thread(
            target=self._engine_loop, name="sched-engine", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "SchedulerService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client-facing surface (any thread)
    # ------------------------------------------------------------------
    def submit(self, specs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit one request's worth of job specs; returns records."""
        return self._call("submit", specs)

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._call("cancel", job_id)

    def query(self, job_id: int) -> Dict[str, Any]:
        return self._call("query", job_id)

    def jobs(self) -> Dict[str, Any]:
        return self._call("jobs", None)

    def advise(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("advise", spec)

    def state(self) -> Dict[str, Any]:
        return self._call("state", None)

    def advance(self, to: Optional[float]) -> Dict[str, Any]:
        return self._call("advance", to)

    def metrics(self) -> Dict[str, Any]:
        return self._call("metrics", None)

    def health(self) -> Dict[str, Any]:
        # Answered without the engine thread on purpose: health must
        # respond even when the engine is mid-pass under heavy load.
        status = "ok"
        if self._crashed is not None:
            status = "crashed"
        elif self._thread is None or not self._thread.is_alive():
            status = "stopped"
        return {
            "status": status,
            "protocol": PROTOCOL_VERSION,
            "mode": self.config.mode,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }

    # ------------------------------------------------------------------
    def _call(self, kind: str, payload: Any) -> Any:
        if self._crashed is not None:
            raise ProtocolError(
                500, "engine_crashed", f"engine thread died: {self._crashed}"
            )
        if self._thread is None or self._stopping:
            raise ProtocolError(503, "unavailable", "service is not running")
        op = _Op(kind, payload, time.monotonic())
        with self._cond:
            self._inbox.append(op)
            self._cond.notify_all()
        if not op.done.wait(timeout=_OP_TIMEOUT_S):
            raise ProtocolError(504, "timeout", f"{kind} op timed out")
        if op.error is not None:
            if isinstance(op.error, ProtocolError):
                raise op.error
            raise ProtocolError(500, "internal", str(op.error))
        return op.result

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _engine_loop(self) -> None:
        wall = self.config.mode == "wall"
        try:
            while True:
                with self._cond:
                    while not self._inbox and not self._stopping:
                        if wall:
                            if not self._cond.wait(timeout=self.config.tick_s):
                                break  # tick: advance the wall clock
                        else:
                            self._cond.wait()
                    batch = list(self._inbox)
                    self._inbox.clear()
                    stopping = self._stopping
                if stopping:
                    for op in batch:
                        op.error = ProtocolError(
                            503, "unavailable", "service shutting down"
                        )
                        op.done.set()
                    return
                self._process(batch, wall)
        except BaseException as exc:  # noqa: BLE001 - must unblock waiters
            self._crashed = exc
            with self._cond:
                pending = list(self._inbox)
                self._inbox.clear()
            for op in pending:
                op.error = exc
                op.done.set()

    def _wall_target(self) -> float:
        elapsed = time.monotonic() - self._started_mono
        return self.config.start_time + elapsed * self.config.speed

    def _process(self, batch: List[_Op], wall: bool) -> None:
        submits = [op for op in batch if op.kind == "submit"]
        others = [op for op in batch if op.kind != "submit"]
        target = self._wall_target() if wall else self.engine.now

        admitted: List[Job] = []
        if submits:
            admitted = self._admit(submits, default_time=max(target, self.engine.now))
        if wall:
            self.counters.ticks += 1
            if target > self.engine.now:
                self.engine.advance_to(target)
            else:
                self.engine.advance_to(self.engine.now)
        else:
            # Replay mode: fire whatever is due at the current instant
            # (same-instant submissions and their pass), nothing more.
            self.engine.advance_to(self.engine.now)
        self._stamp_decisions()
        for op in submits:
            if op.error is None:
                op.result = [
                    self._record(job.job_id) for job in op.result
                ]
            op.done.set()
        for op in others:
            try:
                op.result = self._dispatch(op)
            except BaseException as exc:  # noqa: BLE001 - per-op isolation
                op.error = exc
            op.done.set()
        if admitted or others:
            self._stamp_decisions()

    # ------------------------------------------------------------------
    def _admit(self, submits: List[_Op], default_time: float) -> List[Job]:
        """Coalesce every submit op in the drain into one admission batch.

        Per-op validation failures (bad spec, duplicate id, late
        arrival) fail *that op* only; the surviving jobs are injected
        as one sorted batch.  ``op.result`` temporarily holds the op's
        Job objects — :meth:`_process` converts them to records after
        the due passes have run.
        """
        all_jobs: List[Job] = []
        seen_batch: set = set()
        for op in submits:
            specs = op.payload
            try:
                if not isinstance(specs, list) or not specs:
                    raise ProtocolError(
                        400, "invalid_request", "submit requires a job list"
                    )
                jobs: List[Job] = []
                for spec in specs:
                    job = job_from_spec(
                        spec,
                        default_job_id=self._next_auto_id,
                        default_submit_time=default_time,
                    )
                    if (
                        self.engine.job(job.job_id) is not None
                        or job.job_id in seen_batch
                    ):
                        raise ProtocolError(
                            409,
                            "duplicate_job",
                            f"job id {job.job_id} already exists",
                        )
                    if job.submit_time < self.engine.now:
                        raise ProtocolError(
                            409,
                            "late_arrival",
                            f"job {job.job_id} submits at t={job.submit_time}, "
                            f"behind the service clock t={self.engine.now}",
                        )
                    jobs.append(job)
                    seen_batch.add(job.job_id)
                    self._next_auto_id = max(self._next_auto_id, job.job_id + 1)
            except ProtocolError as exc:
                op.error = exc
                self.counters.rejected_specs += 1
                continue
            op.result = jobs  # placeholder; records built post-pass
            all_jobs.extend(jobs)
        if not all_jobs:
            return []
        self.engine.inject_jobs(all_jobs)
        now_mono = time.monotonic()
        self.counters.batches += 1
        self.counters.submitted += sum(
            len(op.result) for op in submits if op.error is None
        )
        self.counters.admitted += len(all_jobs)
        self._batch_sizes.append(len(all_jobs))
        for op in submits:
            if op.error is not None:
                continue
            for job in op.result:
                timing = _Timing(
                    received=op.received,
                    admitted=now_mono,
                    batch_size=len(all_jobs),
                )
                self._timings[job.job_id] = timing
                self._undecided[job.job_id] = timing
                self._submit_latencies.append(now_mono - op.received)
        return all_jobs

    def _stamp_decisions(self) -> None:
        """Close the decision-latency window for every submission whose
        first scheduling pass has now run (or that went terminal)."""
        if not self._undecided:
            return
        now_virtual = self.engine.now
        now_mono = time.monotonic()
        done = [
            job_id
            for job_id in self._undecided
            if (job := self.engine.job(job_id)) is not None
            and (job.submit_time <= now_virtual or job.state.terminal)
        ]
        for job_id in done:
            timing = self._undecided.pop(job_id)
            timing.decided = now_mono
            self._decision_latencies.append(now_mono - timing.received)

    # ------------------------------------------------------------------
    def _dispatch(self, op: _Op) -> Any:
        if op.kind == "cancel":
            return self._do_cancel(op.payload)
        if op.kind == "query":
            self.counters.queries += 1
            return self._do_query(op.payload)
        if op.kind == "jobs":
            self.counters.queries += 1
            return {
                "protocol": PROTOCOL_VERSION,
                "now": self.engine.now,
                "jobs": [self._record(job.job_id) for job in self.engine.jobs],
            }
        if op.kind == "advise":
            self.counters.advises += 1
            return self._do_advise(op.payload)
        if op.kind == "state":
            from .state import build_state_document

            return build_state_document(self)
        if op.kind == "advance":
            return self._do_advance(op.payload)
        if op.kind == "metrics":
            return self._do_metrics()
        raise ProtocolError(400, "unknown_op", f"unknown op {op.kind!r}")

    def _do_cancel(self, job_id: Any) -> Dict[str, Any]:
        if not isinstance(job_id, int):
            raise ProtocolError(400, "invalid_request", "cancel requires job_id")
        outcome = self.engine.cancel_job(job_id)
        if outcome == "not_found":
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        if outcome == "cancelled":
            self.counters.cancelled += 1
        elif outcome == "killed":
            self.counters.cancel_kills += 1
            # The freed capacity's pass runs at the current instant.
            self.engine.advance_to(self.engine.now)
        return {"job_id": job_id, "outcome": outcome, "job": self._record(job_id)}

    def _do_query(self, job_id: Any) -> Dict[str, Any]:
        if not isinstance(job_id, int):
            raise ProtocolError(400, "invalid_request", "query requires job_id")
        if self.engine.job(job_id) is None:
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        return self._record(job_id)

    def _do_advance(self, to: Any) -> Dict[str, Any]:
        if self.config.mode == "wall":
            raise ProtocolError(
                409, "wall_clock", "a wall-clock service owns its own clock"
            )
        self.counters.advances += 1
        if to is None:
            self.counters.drains += 1
            now = self.engine.drain()
            return {"now": now, "drained": True}
        if isinstance(to, bool) or not isinstance(to, (int, float)):
            raise ProtocolError(400, "invalid_request", "advance 'to' must be a number")
        if float(to) < self.engine.now:
            raise ProtocolError(
                409,
                "clock_backwards",
                f"cannot advance to t={to}, behind clock t={self.engine.now}",
            )
        now = self.engine.advance_to(float(to))
        return {"now": now, "drained": False}

    def _do_metrics(self) -> Dict[str, Any]:
        batch = self._batch_sizes
        return {
            "protocol": PROTOCOL_VERSION,
            "now": self.engine.now,
            "counters": self.counters.to_dict(),
            "cycles": self.engine.cycles,
            "queue_depth": self.engine.queue_depth,
            "running": self.engine.running_count,
            "undecided": len(self._undecided),
            "submit_latency_ms": percentiles(self._submit_latencies),
            "decision_latency_ms": percentiles(self._decision_latencies),
            "admission_batch": {
                "count": len(batch),
                "mean": round(sum(batch) / len(batch), 3) if batch else None,
                "max": max(batch) if batch else None,
            },
        }

    # ------------------------------------------------------------------
    def _record(self, job_id: int) -> Dict[str, Any]:
        job = self.engine.job(job_id)
        if job is None:  # pragma: no cover - guarded by callers
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        timing = self._timings.get(job_id)
        service: Optional[Dict[str, Any]] = None
        if timing is not None:
            service = {
                "admission_batch_size": timing.batch_size,
                "decision_latency_ms": (
                    round((timing.decided - timing.received) * 1e3, 3)
                    if timing.decided is not None
                    else None
                ),
            }
        return job_to_record(job, self.engine.promise(job_id), service)

    # ------------------------------------------------------------------
    # advise: read-only placement recommendation
    # ------------------------------------------------------------------
    def _do_advise(self, spec: Any) -> Dict[str, Any]:
        """"Where should this job run" — without admitting it.

        The recommendation reports the immediate-start placement when
        one exists, otherwise the earliest-start estimate from a fresh
        availability profile over the running set, and always names
        the **bound** that determined the answer:

        * ``machine-capacity`` — can never run here (reject);
        * ``none`` — free nodes and pool capacity cover it right now;
        * ``gate`` — a start gate (pool-pressure policy) is holding it;
        * ``node-availability`` — waiting on busy nodes;
        * ``pool-capacity`` — nodes are free but remote memory is not.

        The wait estimate is optimistic by construction: it consults
        running jobs' conservative duration bounds but not the queue
        ahead (backfill may start the job earlier than queue order
        suggests; the estimate is the earliest *physically possible*
        start).  Purely read-only — nothing is admitted or reserved.
        """
        sched = self.scheduler
        cluster = self.cluster
        engine = self.engine
        job = job_from_spec(
            spec, default_job_id=0, default_submit_time=engine.now
        )
        base = {
            "protocol": PROTOCOL_VERSION,
            "now": engine.now,
            "queue_depth": engine.queue_depth,
            "advisory": True,
        }
        if not sched.fits_machine(job, cluster):
            return {
                **base,
                "verdict": "reject",
                "bound": "machine-capacity",
                "detail": "the request exceeds empty-machine capacity "
                "(nodes, or remote demand beyond total pool reach)",
            }
        ctx = SchedulerContext(
            cluster=cluster,
            now=engine.now,
            queue=[],
            running=engine._running,
            start_job=_advise_must_not_start,
        )
        split = sched.split_for(job, cluster)
        ungated = sched.try_start_now(ctx, job, check_gate=False)
        if ungated is not None:
            gated = (
                sched.gate.trivially_permits
                or sched.gate.permit(ctx, sched, ungated)
            )
            plan = dict(sorted(ungated.plan.items()))
            placement = {
                "node_ids": list(ungated.node_ids),
                "pool_plan": plan,
                "local_mib_per_node": ungated.split.local,
                "remote_mib_per_node": ungated.split.remote,
                "est_dilation": sched.est_dilation(job, cluster, ungated.split),
            }
            if gated:
                return {
                    **base,
                    "verdict": "start_now",
                    "bound": "none",
                    "placement": placement,
                }
            return {
                **base,
                "verdict": "wait",
                "bound": "gate",
                "detail": f"start gate {sched.gate.name!r} is holding the job",
                "placement": placement,
            }
        # No immediate fit: estimate the earliest physically possible
        # start against the running set's conservative duration bounds.
        bound = (
            "node-availability"
            if job.nodes > cluster.free_node_count
            else "pool-capacity"
        )
        profile = sched.build_profile(ctx)
        duration = sched.est_duration(job, cluster, split)
        reservation = profile.earliest_start(
            job,
            duration,
            split.remote,
            sched.placement,
            sched.resolve_allocator(cluster),
            memory_aware=getattr(sched.backfill, "memory_aware", True),
        )
        if reservation is None:  # pragma: no cover - fits_machine passed
            return {**base, "verdict": "reject", "bound": "machine-capacity"}
        return {
            **base,
            "verdict": "wait",
            "bound": bound,
            "estimated_start": reservation.start,
            "estimated_wait_s": reservation.start - engine.now,
            "placement": {
                "node_ids": sorted(reservation.node_ids),
                "pool_plan": dict(sorted(reservation.plan.items())),
                "local_mib_per_node": split.local,
                "remote_mib_per_node": split.remote,
            },
        }


def _advise_must_not_start(decision: Any) -> None:  # pragma: no cover
    raise ReproError("advise is read-only; no start may be applied")

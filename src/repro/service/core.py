"""The service orchestrator: one engine thread, batched admissions.

:class:`SchedulerService` wraps an *online*
:class:`~repro.engine.simulation.SchedulerSimulation` behind a
single-writer design: client-facing calls (from any number of HTTP
handler threads) never touch the engine — they enqueue an **op** and
block on its future; one engine thread drains the inbox and is the
only code that mutates engine, cluster, or scheduler state.  That
removes every lock from the scheduler hot path and gives the service
its admission-batching behavior for free:

* every ``submit`` op found in one inbox drain joins **one admission
  batch** — the whole batch is injected as one sorted group and served
  by one scheduling pass per distinct submit instant, so one shared
  availability sweep (the PR-4 pass transaction) prices N concurrent
  submissions at roughly the cost of one;
* non-submit ops (cancel, query, advise, state, advance) are applied
  in arrival order after the batch, which makes a cancel racing its
  own submit well-defined: whichever reached the inbox first wins.

Clock policy is the service's, not the engine's: in ``wall`` mode the
engine thread maps monotonic wall time onto virtual seconds (scaled by
``speed``) every ``tick_s``; in ``replay`` mode the clock moves only on
explicit ``advance`` ops — that is the mode the load harness drives,
and the mode under which a replayed trace is decision-identical to the
offline engine.

**Decision latency**, the service's headline metric, is measured here:
for each submission, the wall-clock interval from request receipt to
the end of the first inbox drain in which the engine clock reached the
job's submit instant — i.e. until the scheduling pass that first
considered the job (started it, promised it a reservation, or queued
it behind one) had run.  It prices exactly the admission-batching
trade-off: coalescing widens batches (throughput) at the cost of the
earliest submission in each batch waiting out the linger (latency).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..config import ExperimentConfig
from ..engine.simulation import SchedulerSimulation
from ..errors import ConfigurationError, ReproError
from ..sched.base import (
    BOUND_GATE,
    BOUND_MACHINE,
    BOUND_NODES,
    BOUND_NONE,
    BOUND_POOL,
    Scheduler,
    SchedulerContext,
)
from ..workload.job import Job
from .journal import StateStore, config_fingerprint
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_idempotency_key,
    job_from_spec,
    job_to_record,
    job_to_request_spec,
)

__all__ = [
    "ServiceConfig",
    "SchedulerService",
    "default_service_config",
    "percentiles",
]

_OP_TIMEOUT_S = 60.0


def default_service_config() -> ExperimentConfig:
    """The built-in service experiment: the demo thin-node machine.

    ``repro serve`` without ``--config`` and ``repro load`` without one
    build *this*, so a daemon and a load run that both defaulted are
    guaranteed to agree on cluster and scheduler — the precondition for
    the decision-identity check.
    """
    return ExperimentConfig(
        name="service-demo",
        cluster=ClusterSpec.thin_node(
            num_nodes=32,
            local_mem="128GiB",
            fat_local_mem="512GiB",
            pool_fraction=0.5,
            reach="global",
            name="SVC-THIN-32",
        ),
        workload={"reference": "W-MIX", "num_jobs": 1000, "seed": 42, "load": 0.9},
        scheduler={
            "queue": "fcfs",
            "backfill": "easy",
            "placement": "first_fit",
            "penalty": {"kind": "linear", "beta": 0.3},
        },
    )


def percentiles(values: List[float]) -> Dict[str, Optional[float]]:
    """p50/p90/p99/max/mean of a latency sample, in milliseconds.

    Nearest-rank percentiles on the sorted sample — standard for
    latency reporting, and exact for the small-thousands sample sizes
    the service sees per load run.  Empty samples yield all-None.
    """
    if not values:
        return {"count": 0, "p50": None, "p90": None, "p99": None,
                "max": None, "mean": None}
    ordered = sorted(values)
    count = len(ordered)

    def rank(q: float) -> float:
        index = max(0, min(count - 1, math.ceil(q * count) - 1))
        return ordered[index] * 1e3

    return {
        "count": count,
        "p50": round(rank(0.50), 3),
        "p90": round(rank(0.90), 3),
        "p99": round(rank(0.99), 3),
        "max": round(ordered[-1] * 1e3, 3),
        "mean": round(sum(ordered) / count * 1e3, 3),
    }


@dataclass
class ServiceConfig:
    """Operating parameters of one service instance."""

    #: ``"replay"`` — virtual time moves only on ``advance`` ops (load
    #: harness / differential testing); ``"wall"`` — the engine thread
    #: advances the clock every ``tick_s`` of wall time.
    mode: str = "replay"
    #: Virtual seconds per wall second in ``wall`` mode (3600 = one
    #: simulated hour per real second).
    speed: float = 1.0
    #: Wall-mode ticker period, seconds; also the admission linger — a
    #: submission waits at most one tick for its scheduling pass.
    tick_s: float = 0.05
    #: Virtual clock origin.
    start_time: float = 0.0
    #: Durable state directory (write-ahead journal + snapshots).
    #: ``None`` runs the service in-memory, exactly the pre-durability
    #: behavior; building through :meth:`SchedulerService.open` with a
    #: directory makes every mutation crash-safe.
    state_dir: Optional[str] = None
    #: Write an engine snapshot every N journal records (plus one on
    #: graceful shutdown).  0 = snapshot only on shutdown.
    checkpoint_every: int = 256
    #: Load-shedding bound on the op inbox: a request arriving while
    #: this many ops are already queued is refused with 429 and a
    #: ``retry_after`` hint.  0 = unbounded.
    max_inbox: int = 0
    #: Per-request deadline budget, seconds: an op that waited in the
    #: inbox longer than this is shed with 504 *before* any engine work
    #: is spent on it.  0 = no deadline.
    deadline_s: float = 0.0
    #: How many idempotency-key outcomes to remember for retry
    #: deduplication (an LRU window; old entries age out).
    dedup_window: int = 1024
    #: Replay-mode group-commit window, seconds, applied only when
    #: durable: after the first op of a drain arrives, the drain is
    #: held open this long for stragglers, so requests racing in
    #: behind it share one journal sync and one scheduling pass
    #: instead of paying a sync-plus-pass each.  A solo request waits
    #: at most this long; the window closes early the moment arrivals
    #: pause.  0 disables the linger (drain eagerly, the ephemeral
    #: behavior).  Wall mode ignores it — ``tick_s`` is already the
    #: admission linger there.
    group_commit_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.mode not in ("replay", "wall"):
            raise ConfigurationError(f"unknown service mode {self.mode!r}")
        if self.speed <= 0:
            raise ConfigurationError("speed must be positive")
        if self.tick_s <= 0:
            raise ConfigurationError("tick_s must be positive")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if self.max_inbox < 0:
            raise ConfigurationError("max_inbox must be >= 0")
        if self.deadline_s < 0:
            raise ConfigurationError("deadline_s must be >= 0")
        if self.dedup_window < 0:
            raise ConfigurationError("dedup_window must be >= 0")
        if self.group_commit_s < 0:
            raise ConfigurationError("group_commit_s must be >= 0")


class _Op:
    """One client request in the engine thread's inbox."""

    __slots__ = ("kind", "payload", "received", "done", "result", "error")

    def __init__(self, kind: str, payload: Any, received: float) -> None:
        self.kind = kind
        self.payload = payload
        self.received = received  # monotonic seconds at request receipt
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


@dataclass
class _Counters:
    submitted: int = 0
    admitted: int = 0
    rejected_specs: int = 0
    cancelled: int = 0
    cancel_kills: int = 0
    queries: int = 0
    advises: int = 0
    advances: int = 0
    drains: int = 0
    batches: int = 0
    ticks: int = 0
    shed_overload: int = 0
    shed_deadline: int = 0
    dedup_hits: int = 0
    journal_records: int = 0
    checkpoints: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Timing:
    """Service-side latency stamps for one submission."""

    received: float
    admitted: Optional[float] = None
    decided: Optional[float] = None
    batch_size: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class SchedulerService:
    """The long-running scheduler core behind the HTTP front end."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        config: Optional[ServiceConfig] = None,
        *,
        engine: Optional[SchedulerSimulation] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cluster = cluster
        self.scheduler = scheduler
        self.engine = engine or SchedulerSimulation(
            cluster,
            scheduler,
            [],
            online=True,
            start_time=self.config.start_time,
        )
        self._store = store
        self._records_since_snapshot = 0
        self._checkpoint_due = False
        self.recovery: Optional[Dict[str, Any]] = None
        self._inbox: deque[_Op] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._crashed: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self.counters = _Counters()
        self._timings: Dict[int, _Timing] = {}
        self._undecided: Dict[int, _Timing] = {}
        self._submit_latencies: List[float] = []
        self._decision_latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._next_auto_id = 1
        #: key -> ("submit", [job ids]) | ("cancel", outcome dict); an
        #: LRU window bounded by ``config.dedup_window``.
        self._dedup: "OrderedDict[str, Tuple[str, Any]]" = OrderedDict()

    # ------------------------------------------------------------------
    # durable construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        experiment: ExperimentConfig,
        config: Optional[ServiceConfig] = None,
    ) -> "SchedulerService":
        """Build a service from an experiment config, recovering durable
        state when the config names a state directory.

        Recovery is snapshot + journal-suffix replay: the newest
        readable engine snapshot is restored onto a fresh cluster and
        scheduler, then every journal record appended after it is
        re-applied through the same batching the live path uses.  The
        state directory is fingerprinted against the experiment config
        — replaying a journal against a different machine is refused.
        """
        config = config or ServiceConfig()
        cluster = experiment.build_cluster()
        scheduler = experiment.build_scheduler()
        if config.state_dir is None:
            return cls(cluster, scheduler, config)
        store = StateStore(config.state_dir, config_fingerprint(experiment.to_json()))
        engine: Optional[SchedulerSimulation] = None
        service_state: Optional[Dict[str, Any]] = None
        covered = 0
        snapshot = store.latest_snapshot()
        if snapshot is not None:
            covered, document = snapshot
            engine = SchedulerSimulation.restore(
                cluster, scheduler, document["engine"]
            )
            service_state = document.get("service")
        service = cls(cluster, scheduler, config, engine=engine, store=store)
        if service_state is not None:
            service._load_service_state(service_state)
        records = store.replay(covered)
        for _seq, body in records:
            service._replay_record(body)
        service.recovery = {
            "snapshot_seq": covered,
            "replayed_records": len(records),
            "resumed": snapshot is not None or bool(records),
        }
        return service

    def _service_state(self) -> Dict[str, Any]:
        return {
            "next_auto_id": self._next_auto_id,
            "dedup": [
                [key, kind, payload]
                for key, (kind, payload) in self._dedup.items()
            ],
            "counters": self.counters.to_dict(),
        }

    def _load_service_state(self, state: Dict[str, Any]) -> None:
        self._next_auto_id = int(state["next_auto_id"])
        self._dedup = OrderedDict(
            (key, (kind, payload)) for key, kind, payload in state["dedup"]
        )
        for name, value in state.get("counters", {}).items():
            if hasattr(self.counters, name):
                setattr(self.counters, name, value)

    def _register_dedup(self, key: Optional[str], kind: str, payload: Any) -> None:
        if key is None or self.config.dedup_window == 0:
            return
        self._dedup[key] = (kind, payload)
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.config.dedup_window:
            self._dedup.popitem(last=False)

    def _replay_record(self, body: Dict[str, Any]) -> None:
        """Re-apply one journal record exactly as the live path did.

        All submit groups re-enter as **one** injection batch (the
        pass-transaction batching is part of the decision record, not
        an implementation detail), the clock advances to the recorded
        target, and post-batch mutations re-run in arrival order with
        their original error outcomes swallowed — an op that failed
        live fails identically on replay.
        """
        jobs: List[Job] = []
        for group in body["submits"]:
            for spec in group["jobs"]:
                jobs.append(Job(**spec))
        if jobs:
            self.engine.inject_jobs(jobs)
            self.counters.batches += 1
            self.counters.submitted += len(jobs)
            self.counters.admitted += len(jobs)
            for job in jobs:
                if job.job_id >= self._next_auto_id:
                    self._next_auto_id = job.job_id + 1
        target = body.get("target")
        if target is not None and target > self.engine.now:
            self.engine.advance_to(target)
        else:
            self.engine.advance_to(self.engine.now)
        for entry in body["post"]:
            kind = entry[0]
            try:
                if kind == "cancel":
                    outcome = self._do_cancel(entry[1])
                    self._register_dedup(
                        entry[2],
                        "cancel",
                        {"job_id": entry[1], "outcome": outcome["outcome"]},
                    )
                elif kind == "advance":
                    self._do_advance(entry[1])
            except ProtocolError:
                pass  # failed live, fails identically here
        for group in body["submits"]:
            self._register_dedup(
                group.get("key"),
                "submit",
                [spec["job_id"] for spec in group["jobs"]],
            )
        self.counters.journal_records += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SchedulerService":
        if self._thread is not None:
            raise ReproError("service already started")
        self._thread = threading.Thread(
            target=self._engine_loop, name="sched-engine", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "SchedulerService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client-facing surface (any thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        specs: List[Dict[str, Any]],
        idempotency_key: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Submit one request's worth of job specs; returns records.

        With an ``idempotency_key``, retrying the same submission after
        a lost reply returns the original outcome instead of admitting
        the jobs twice.
        """
        key = check_idempotency_key(idempotency_key)
        return self._call("submit", {"specs": specs, "key": key})

    def cancel(
        self, job_id: int, idempotency_key: Optional[str] = None
    ) -> Dict[str, Any]:
        key = check_idempotency_key(idempotency_key)
        return self._call("cancel", {"job_id": job_id, "key": key})

    def query(self, job_id: int) -> Dict[str, Any]:
        return self._call("query", job_id)

    def jobs(self) -> Dict[str, Any]:
        return self._call("jobs", None)

    def advise(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("advise", spec)

    def state(self) -> Dict[str, Any]:
        return self._call("state", None)

    def advance(self, to: Optional[float]) -> Dict[str, Any]:
        return self._call("advance", to)

    def metrics(self) -> Dict[str, Any]:
        return self._call("metrics", None)

    def health(self) -> Dict[str, Any]:
        # Answered without the engine thread on purpose: health must
        # respond even when the engine is mid-pass under heavy load.
        status = "ok"
        if self._crashed is not None:
            status = "crashed"
        elif self._thread is None or not self._thread.is_alive():
            status = "stopped"
        return {
            "status": status,
            "protocol": PROTOCOL_VERSION,
            "mode": self.config.mode,
            "durable": self._store is not None,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }

    # ------------------------------------------------------------------
    def _call(self, kind: str, payload: Any) -> Any:
        if self._crashed is not None:
            raise ProtocolError(
                500, "engine_crashed", f"engine thread died: {self._crashed}"
            )
        if self._thread is None or self._stopping:
            raise ProtocolError(503, "unavailable", "service is not running")
        op = _Op(kind, payload, time.monotonic())
        with self._cond:
            if (
                self.config.max_inbox
                and len(self._inbox) >= self.config.max_inbox
            ):
                # Shed *before* enqueueing: a 429 guarantees the op was
                # never applied, so any client may retry it safely.
                self.counters.shed_overload += 1
                raise ProtocolError(
                    429,
                    "overloaded",
                    f"inbox is full ({self.config.max_inbox} ops queued)",
                    retry_after=max(self.config.tick_s, 0.05),
                )
            self._inbox.append(op)
            self._cond.notify_all()
        if not op.done.wait(timeout=_OP_TIMEOUT_S):
            raise ProtocolError(504, "timeout", f"{kind} op timed out")
        if op.error is not None:
            if isinstance(op.error, ProtocolError):
                raise op.error
            raise ProtocolError(500, "internal", str(op.error))
        return op.result

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _engine_loop(self) -> None:
        wall = self.config.mode == "wall"
        linger = (
            self.config.group_commit_s
            if self._store is not None and not wall
            else 0.0
        )
        try:
            while True:
                with self._cond:
                    while not self._inbox and not self._stopping:
                        if wall:
                            if not self._cond.wait(timeout=self.config.tick_s):
                                break  # tick: advance the wall clock
                        else:
                            self._cond.wait()
                    if linger and self._inbox and not self._stopping:
                        # Group commit: the upcoming drain pays one
                        # journal sync no matter how many ops it
                        # carries, so hold the door briefly while
                        # arrivals keep coming — each straggler rides
                        # the same sync and the same scheduling pass.
                        # The door closes at the deadline, or as soon
                        # as one straggler-gap passes with no arrival
                        # (every queued client is already in).
                        deadline = time.monotonic() + linger
                        gap = linger / 4
                        while not self._stopping:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                break
                            before = len(self._inbox)
                            self._cond.wait(timeout=min(remaining, gap))
                            if len(self._inbox) <= before:
                                break  # arrivals paused: door closes
                    batch = list(self._inbox)
                    self._inbox.clear()
                    stopping = self._stopping
                # Graceful drain: ops already accepted into the inbox
                # are processed even when stopping — _call refuses new
                # ones the moment _stopping is set, so this in-flight
                # batch is the last.  An empty batch still ticks the
                # wall clock.
                if batch or wall:
                    self._process(batch, wall)
                if stopping:
                    self._final_checkpoint()
                    return
        except BaseException as exc:  # noqa: BLE001 - must unblock waiters
            self._crashed = exc
            with self._cond:
                pending = list(self._inbox)
                self._inbox.clear()
            for op in pending:
                op.error = exc
                op.done.set()

    def _final_checkpoint(self) -> None:
        if self._store is None:
            return
        try:
            self._write_snapshot()
        except Exception:  # noqa: BLE001 - shutdown must not raise
            pass

    def _write_snapshot(self) -> None:
        self._store.write_snapshot(
            {"engine": self.engine.checkpoint(), "service": self._service_state()}
        )
        self._records_since_snapshot = 0
        self.counters.checkpoints += 1

    def _wall_target(self) -> float:
        elapsed = time.monotonic() - self._started_mono
        return self.config.start_time + elapsed * self.config.speed

    def _process(self, batch: List[_Op], wall: bool) -> None:
        """Apply one inbox drain: shed, dedup, **journal, then apply**.

        The write-ahead discipline: every mutation the drain will apply
        (admitted submit batches, cancels, advances) is appended to the
        journal and fsynced *before* the engine applies it and before
        any client sees success.  A crash after the fsync replays the
        record on recovery; a crash before it means no client was ever
        acknowledged, so the idempotent retry re-submits it.
        """
        batch = self._shed_expired(batch)
        submits = [op for op in batch if op.kind == "submit"]
        others = [
            op
            for op in batch
            if op.kind != "submit" and not self._cancel_dedup_hit(op)
        ]
        target = self._wall_target() if wall else self.engine.now

        fresh, replayed = self._split_dedup(submits)
        validated = self._validate_submits(
            fresh, default_time=max(target, self.engine.now)
        )
        self._journal_drain(validated, others, target if wall else None)

        admitted = self._inject(validated)
        if wall:
            self.counters.ticks += 1
            if target > self.engine.now:
                self.engine.advance_to(target)
            else:
                self.engine.advance_to(self.engine.now)
        else:
            # Replay mode: fire whatever is due at the current instant
            # (same-instant submissions and their pass), nothing more.
            self.engine.advance_to(self.engine.now)
        self._stamp_decisions()
        for op in fresh:
            if op.error is None:
                self._register_dedup(
                    op.payload.get("key"),
                    "submit",
                    [job.job_id for job in op.result],
                )
                op.result = [self._record(job.job_id) for job in op.result]
            op.done.set()
        for op in replayed:
            op.done.set()
        for op in others:
            try:
                op.result = self._dispatch(op)
            except BaseException as exc:  # noqa: BLE001 - per-op isolation
                op.error = exc
            op.done.set()
        if admitted or others:
            self._stamp_decisions()
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Snapshot when the journal suffix has grown long enough.

        A failed snapshot is tolerated: the journal remains the source
        of truth and recovery simply replays a longer suffix from the
        previous snapshot generation.
        """
        if not self._checkpoint_due:
            return
        self._checkpoint_due = False
        try:
            self._write_snapshot()
        except Exception:  # noqa: BLE001 - journal still covers the state
            pass

    # ------------------------------------------------------------------
    def _cancel_dedup_hit(self, op: _Op) -> bool:
        """Resolve a retried keyed cancel from the dedup window.

        Returns True when the op was answered here — the stored
        outcome, not a second application — so it must not be journaled
        or dispatched again.
        """
        if op.kind != "cancel" or not isinstance(op.payload, dict):
            return False
        key = op.payload.get("key")
        hit = self._dedup.get(key) if key is not None else None
        if hit is None or hit[0] != "cancel":
            return False
        self.counters.dedup_hits += 1
        self._dedup.move_to_end(key)
        stored = hit[1]
        try:
            op.result = {
                "job_id": stored["job_id"],
                "outcome": stored["outcome"],
                "job": self._record(stored["job_id"]),
            }
        except ProtocolError as exc:  # pragma: no cover - aged out
            op.error = exc
        op.done.set()
        return True

    def _shed_expired(self, batch: List[_Op]) -> List[_Op]:
        """Deadline budget: fail ops that aged out waiting in the inbox
        before any engine work is spent on them."""
        if not self.config.deadline_s:
            return batch
        cutoff = time.monotonic() - self.config.deadline_s
        kept: List[_Op] = []
        for op in batch:
            if op.received < cutoff:
                self.counters.shed_deadline += 1
                op.error = ProtocolError(
                    504,
                    "deadline_exceeded",
                    f"op waited past its {self.config.deadline_s}s deadline",
                )
                op.done.set()
            else:
                kept.append(op)
        return kept

    def _split_dedup(
        self, submits: List[_Op]
    ) -> Tuple[List[_Op], List[_Op]]:
        """Resolve keyed submits the dedup window has already seen.

        A hit answers from the stored outcome — the original job ids,
        re-rendered as current records — without touching the engine:
        exactly-once application under client retries.
        """
        fresh: List[_Op] = []
        replayed: List[_Op] = []
        for op in submits:
            key = op.payload.get("key") if isinstance(op.payload, dict) else None
            hit = self._dedup.get(key) if key is not None else None
            if hit is not None and hit[0] == "submit":
                self.counters.dedup_hits += 1
                self._dedup.move_to_end(key)
                try:
                    op.result = [self._record(job_id) for job_id in hit[1]]
                except ProtocolError as exc:  # pragma: no cover - aged out
                    op.error = exc
                replayed.append(op)
            else:
                fresh.append(op)
        return fresh, replayed

    def _validate_submits(
        self, submits: List[_Op], default_time: float
    ) -> List[_Op]:
        """Per-op spec validation, **without** touching the engine.

        Failures (bad spec, duplicate id, late arrival) fail that op
        only; survivors carry their Job objects in ``op.result`` and
        their resolved request specs in ``op.payload["resolved"]`` for
        the journal.  Returns the surviving ops.
        """
        validated: List[_Op] = []
        seen_batch: set = set()
        for op in submits:
            specs = op.payload.get("specs")
            try:
                if not isinstance(specs, list) or not specs:
                    raise ProtocolError(
                        400, "invalid_request", "submit requires a job list"
                    )
                jobs: List[Job] = []
                for spec in specs:
                    job = job_from_spec(
                        spec,
                        default_job_id=self._next_auto_id,
                        default_submit_time=default_time,
                    )
                    if (
                        self.engine.job(job.job_id) is not None
                        or job.job_id in seen_batch
                    ):
                        raise ProtocolError(
                            409,
                            "duplicate_job",
                            f"job id {job.job_id} already exists",
                        )
                    if job.submit_time < self.engine.now:
                        raise ProtocolError(
                            409,
                            "late_arrival",
                            f"job {job.job_id} submits at t={job.submit_time}, "
                            f"behind the service clock t={self.engine.now}",
                        )
                    jobs.append(job)
                    seen_batch.add(job.job_id)
                    self._next_auto_id = max(self._next_auto_id, job.job_id + 1)
            except ProtocolError as exc:
                op.error = exc
                self.counters.rejected_specs += 1
                op.done.set()
                continue
            op.result = jobs  # placeholder; records built post-pass
            validated.append(op)
        return validated

    def _journal_drain(
        self,
        validated: List[_Op],
        others: List[_Op],
        wall_target: Optional[float],
    ) -> None:
        """Append this drain's mutations to the journal and fsync.

        One record per drain — the fsync amortizes over the whole
        admission batch — and only drains that *mutate* are journaled
        (query-only drains and empty wall ticks cost nothing).  On a
        journal write failure every mutating op fails and nothing is
        applied: the journal is the commit point.
        """
        if self._store is None:
            return
        mutations = [op for op in others if op.kind in ("cancel", "advance")]
        if not validated and not mutations:
            return
        body = {
            "target": wall_target,
            "submits": [
                {
                    "key": op.payload.get("key"),
                    "jobs": [job_to_request_spec(job) for job in op.result],
                }
                for op in validated
            ],
            "post": [
                (
                    ["cancel", op.payload.get("job_id"), op.payload.get("key")]
                    if op.kind == "cancel"
                    else ["advance", op.payload]
                )
                for op in mutations
            ],
        }
        try:
            self._store.append(body)
        except Exception as exc:  # noqa: BLE001 - journal is the commit point
            failure = ProtocolError(
                500, "journal_error", f"could not journal the mutation: {exc}"
            )
            for op in validated + mutations:
                op.error = failure
                op.done.set()
            validated.clear()
            for op in mutations:
                others.remove(op)
            return
        self.counters.journal_records += 1
        self._records_since_snapshot += 1
        if (
            self.config.checkpoint_every
            and self._records_since_snapshot >= self.config.checkpoint_every
        ):
            self._checkpoint_due = True

    def _inject(self, validated: List[_Op]) -> List[Job]:
        """Inject every validated submit as one admission batch."""
        all_jobs: List[Job] = []
        for op in validated:
            all_jobs.extend(op.result)
        if not all_jobs:
            return []
        self.engine.inject_jobs(all_jobs)
        now_mono = time.monotonic()
        self.counters.batches += 1
        self.counters.submitted += len(all_jobs)
        self.counters.admitted += len(all_jobs)
        self._batch_sizes.append(len(all_jobs))
        for op in validated:
            for job in op.result:
                timing = _Timing(
                    received=op.received,
                    admitted=now_mono,
                    batch_size=len(all_jobs),
                )
                self._timings[job.job_id] = timing
                self._undecided[job.job_id] = timing
                self._submit_latencies.append(now_mono - op.received)
        return all_jobs

    def _stamp_decisions(self) -> None:
        """Close the decision-latency window for every submission whose
        first scheduling pass has now run (or that went terminal)."""
        if not self._undecided:
            return
        now_virtual = self.engine.now
        now_mono = time.monotonic()
        done = [
            job_id
            for job_id in self._undecided
            if (job := self.engine.job(job_id)) is not None
            and (job.submit_time <= now_virtual or job.state.terminal)
        ]
        for job_id in done:
            timing = self._undecided.pop(job_id)
            timing.decided = now_mono
            self._decision_latencies.append(now_mono - timing.received)

    # ------------------------------------------------------------------
    def _dispatch(self, op: _Op) -> Any:
        if op.kind == "cancel":
            payload = op.payload if isinstance(op.payload, dict) else {}
            result = self._do_cancel(payload.get("job_id"))
            self._register_dedup(
                payload.get("key"),
                "cancel",
                {"job_id": payload.get("job_id"), "outcome": result["outcome"]},
            )
            return result
        if op.kind == "query":
            self.counters.queries += 1
            return self._do_query(op.payload)
        if op.kind == "jobs":
            self.counters.queries += 1
            return {
                "protocol": PROTOCOL_VERSION,
                "now": self.engine.now,
                "jobs": [self._record(job.job_id) for job in self.engine.jobs],
            }
        if op.kind == "advise":
            self.counters.advises += 1
            return self._do_advise(op.payload)
        if op.kind == "state":
            from .state import build_state_document

            return build_state_document(self)
        if op.kind == "advance":
            return self._do_advance(op.payload)
        if op.kind == "metrics":
            return self._do_metrics()
        raise ProtocolError(400, "unknown_op", f"unknown op {op.kind!r}")

    def _do_cancel(self, job_id: Any) -> Dict[str, Any]:
        if not isinstance(job_id, int):
            raise ProtocolError(400, "invalid_request", "cancel requires job_id")
        outcome = self.engine.cancel_job(job_id)
        if outcome == "not_found":
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        if outcome == "cancelled":
            self.counters.cancelled += 1
        elif outcome == "killed":
            self.counters.cancel_kills += 1
            # The freed capacity's pass runs at the current instant.
            self.engine.advance_to(self.engine.now)
        return {"job_id": job_id, "outcome": outcome, "job": self._record(job_id)}

    def _do_query(self, job_id: Any) -> Dict[str, Any]:
        if not isinstance(job_id, int):
            raise ProtocolError(400, "invalid_request", "query requires job_id")
        if self.engine.job(job_id) is None:
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        return self._record(job_id)

    def _do_advance(self, to: Any) -> Dict[str, Any]:
        if self.config.mode == "wall":
            raise ProtocolError(
                409, "wall_clock", "a wall-clock service owns its own clock"
            )
        self.counters.advances += 1
        if to is None:
            self.counters.drains += 1
            now = self.engine.drain()
            return {"now": now, "drained": True}
        if isinstance(to, bool) or not isinstance(to, (int, float)):
            raise ProtocolError(400, "invalid_request", "advance 'to' must be a number")
        if float(to) < self.engine.now:
            raise ProtocolError(
                409,
                "clock_backwards",
                f"cannot advance to t={to}, behind clock t={self.engine.now}",
            )
        now = self.engine.advance_to(float(to))
        return {"now": now, "drained": False}

    def _do_metrics(self) -> Dict[str, Any]:
        batch = self._batch_sizes
        return {
            "protocol": PROTOCOL_VERSION,
            "now": self.engine.now,
            "counters": self.counters.to_dict(),
            "cycles": self.engine.cycles,
            "queue_depth": self.engine.queue_depth,
            "running": self.engine.running_count,
            "undecided": len(self._undecided),
            "submit_latency_ms": percentiles(self._submit_latencies),
            "decision_latency_ms": percentiles(self._decision_latencies),
            "admission_batch": {
                "count": len(batch),
                "mean": round(sum(batch) / len(batch), 3) if batch else None,
                "max": max(batch) if batch else None,
            },
            "durability": {
                "durable": self._store is not None,
                "records_since_snapshot": self._records_since_snapshot,
                "recovery": self.recovery,
            },
        }

    # ------------------------------------------------------------------
    def _record(self, job_id: int) -> Dict[str, Any]:
        job = self.engine.job(job_id)
        if job is None:  # pragma: no cover - guarded by callers
            raise ProtocolError(404, "not_found", f"no job {job_id}")
        timing = self._timings.get(job_id)
        service: Optional[Dict[str, Any]] = None
        if timing is not None:
            service = {
                "admission_batch_size": timing.batch_size,
                "decision_latency_ms": (
                    round((timing.decided - timing.received) * 1e3, 3)
                    if timing.decided is not None
                    else None
                ),
            }
        return job_to_record(job, self.engine.promise(job_id), service)

    # ------------------------------------------------------------------
    # advise: read-only placement recommendation
    # ------------------------------------------------------------------
    def _do_advise(self, spec: Any) -> Dict[str, Any]:
        """"Where should this job run" — without admitting it.

        The recommendation reports the immediate-start placement when
        one exists, otherwise the earliest-start estimate from a fresh
        availability profile over the running set, and always names
        the **bound** that determined the answer:

        * ``machine-capacity`` — can never run here (reject);
        * ``none`` — free nodes and pool capacity cover it right now;
        * ``gate`` — a start gate (pool-pressure policy) is holding it;
        * ``node-availability`` — waiting on busy nodes;
        * ``pool-capacity`` — nodes are free but remote memory is not.

        The wait estimate is optimistic by construction: it consults
        running jobs' conservative duration bounds but not the queue
        ahead (backfill may start the job earlier than queue order
        suggests; the estimate is the earliest *physically possible*
        start).  Purely read-only — nothing is admitted or reserved.
        """
        sched = self.scheduler
        cluster = self.cluster
        engine = self.engine
        job = job_from_spec(
            spec, default_job_id=0, default_submit_time=engine.now
        )
        base = {
            "protocol": PROTOCOL_VERSION,
            "now": engine.now,
            "queue_depth": engine.queue_depth,
            "advisory": True,
        }
        if not sched.fits_machine(job, cluster):
            return {
                **base,
                "verdict": "reject",
                "bound": BOUND_MACHINE,
                "detail": "the request exceeds empty-machine capacity "
                "(nodes, or remote demand beyond total pool reach)",
            }
        ctx = SchedulerContext(
            cluster=cluster,
            now=engine.now,
            queue=[],
            running=engine._running,
            start_job=_advise_must_not_start,
        )
        split = sched.split_for(job, cluster)
        ungated = sched.try_start_now(ctx, job, check_gate=False)
        if ungated is not None:
            gated = (
                sched.gate.trivially_permits
                or sched.gate.permit(ctx, sched, ungated)
            )
            plan = dict(sorted(ungated.plan.items()))
            placement = {
                "node_ids": list(ungated.node_ids),
                "pool_plan": plan,
                "local_mib_per_node": ungated.split.local,
                "remote_mib_per_node": ungated.split.remote,
                "est_dilation": sched.est_dilation(job, cluster, ungated.split),
            }
            if gated:
                return {
                    **base,
                    "verdict": "start_now",
                    "bound": BOUND_NONE,
                    "placement": placement,
                }
            return {
                **base,
                "verdict": "wait",
                "bound": BOUND_GATE,
                "detail": f"start gate {sched.gate.name!r} is holding the job",
                "placement": placement,
            }
        # No immediate fit: estimate the earliest physically possible
        # start against the running set's conservative duration bounds.
        bound = (
            BOUND_NODES
            if job.nodes > cluster.free_node_count
            else BOUND_POOL
        )
        profile = sched.build_profile(ctx)
        duration = sched.est_duration(job, cluster, split)
        reservation = profile.earliest_start(
            job,
            duration,
            split.remote,
            sched.placement,
            sched.resolve_allocator(cluster),
            memory_aware=getattr(sched.backfill, "memory_aware", True),
        )
        if reservation is None:  # pragma: no cover - fits_machine passed
            return {**base, "verdict": "reject", "bound": BOUND_MACHINE}
        return {
            **base,
            "verdict": "wait",
            "bound": bound,
            "estimated_start": reservation.start,
            "estimated_wait_s": reservation.start - engine.now,
            "placement": {
                "node_ids": sorted(reservation.node_ids),
                "pool_plan": dict(sorted(reservation.plan.items())),
                "local_mib_per_node": split.local,
                "remote_mib_per_node": split.remote,
            },
        }


def _advise_must_not_start(decision: Any) -> None:  # pragma: no cover
    raise ReproError("advise is read-only; no start may be applied")

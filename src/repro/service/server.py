"""Stdlib-only threaded HTTP front end for the scheduler service.

One :class:`~http.server.ThreadingHTTPServer` (a thread per
connection, HTTP/1.1 keep-alive) translating JSON requests into
:class:`~repro.service.core.SchedulerService` calls.  The handler is
deliberately thin: parse, dispatch, serialize — every scheduling
decision and every consistency concern lives behind the service's
single-writer op queue, so handler threads never hold scheduler state.

Routes (all under ``/v1``; see docs/SERVICE.md for the full reference):

====== ==================== ==========================================
Method Path                 Meaning
====== ==================== ==========================================
GET    /v1/health           liveness + mode (answered off-engine)
GET    /v1/state            snapshotable cluster-state document
GET    /v1/metrics          latency percentiles + counters
GET    /v1/jobs             every job record the service knows
GET    /v1/jobs/<id>        one job record (execution + promise)
POST   /v1/submit           ``{"jobs": [spec, ...]}`` → records
POST   /v1/cancel           ``{"job_id": N}`` → outcome + record
POST   /v1/advise           one job spec → placement recommendation
POST   /v1/advance          ``{"to": T|null}`` (replay mode only)
====== ==================== ==========================================

Errors are ``{"error": {"code", "message"}}`` with a meaningful HTTP
status; unknown routes 404; malformed JSON 400.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .core import SchedulerService
from .protocol import ProtocolError, error_envelope

__all__ = ["ServiceDaemon", "make_server"]

_MAX_BODY = 8 * 1024 * 1024  # 8 MiB: a ~10k-job submit fits comfortably


class _Handler(BaseHTTPRequestHandler):
    """Request translator; ``server.service`` is the SchedulerService."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-sched"
    sys_version = ""

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def service(self) -> SchedulerService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._reply(200, self._route_get(self.path))
        except ProtocolError as exc:
            self._reply(exc.status, exc.to_dict())
        except Exception as exc:  # noqa: BLE001 - handler must not die
            self._reply(500, error_envelope("internal", str(exc)))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_json()
            self._reply(200, self._route_post(self.path, body))
        except ProtocolError as exc:
            self._reply(exc.status, exc.to_dict())
        except Exception as exc:  # noqa: BLE001 - handler must not die
            self._reply(500, error_envelope("internal", str(exc)))

    # ------------------------------------------------------------------
    def _route_get(self, path: str) -> Dict[str, Any]:
        if path == "/v1/health":
            return self.service.health()
        if path == "/v1/state":
            return self.service.state()
        if path == "/v1/metrics":
            return self.service.metrics()
        if path == "/v1/jobs":
            return self.service.jobs()
        if path.startswith("/v1/jobs/"):
            return self.service.query(self._job_id(path[len("/v1/jobs/"):]))
        raise ProtocolError(404, "no_route", f"no GET route {path!r}")

    def _route_post(self, path: str, body: Any) -> Any:
        if path == "/v1/submit":
            if not isinstance(body, dict) or "jobs" not in body:
                raise ProtocolError(
                    400, "invalid_request", 'submit body is {"jobs": [spec, ...]}'
                )
            return {
                "jobs": self.service.submit(
                    body["jobs"], body.get("idempotency_key")
                )
            }
        if path == "/v1/cancel":
            if not isinstance(body, dict) or "job_id" not in body:
                raise ProtocolError(
                    400, "invalid_request", 'cancel body is {"job_id": N}'
                )
            return self.service.cancel(
                self._job_id(body["job_id"]), body.get("idempotency_key")
            )
        if path == "/v1/advise":
            return self.service.advise(body)
        if path == "/v1/advance":
            if not isinstance(body, dict):
                raise ProtocolError(
                    400, "invalid_request", 'advance body is {"to": T | null}'
                )
            return self.service.advance(body.get("to"))
        raise ProtocolError(404, "no_route", f"no POST route {path!r}")

    # ------------------------------------------------------------------
    @staticmethod
    def _job_id(raw: Any) -> int:
        if isinstance(raw, bool):
            raise ProtocolError(400, "invalid_request", "job_id must be an integer")
        if isinstance(raw, int):
            return raw
        try:
            return int(str(raw))
        except ValueError:
            raise ProtocolError(
                400, "invalid_request", f"job_id must be an integer, got {raw!r}"
            ) from None

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY:
            raise ProtocolError(413, "too_large", "request body exceeds 8 MiB")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(400, "bad_json", f"malformed JSON body: {exc}") from exc

    def _reply(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-reply; nothing to salvage


def make_server(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind (but do not serve) an HTTP server for ``service``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``; tests and the load harness use that to
    avoid port collisions.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    # Replies are one small JSON write; Nagle + delayed ACK would add
    # a ~40ms stall per round trip, demolishing submission throughput.
    server.RequestHandlerClass.disable_nagle_algorithm = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = False  # type: ignore[attr-defined]
    return server


class ServiceDaemon:
    """Service + HTTP server with one start/stop lifecycle.

    The composition root: builds nothing itself, just owns the two
    threads (engine, accept loop) and tears them down in the right
    order — HTTP first so no new ops arrive, then the engine so every
    in-flight op resolves.
    """

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = make_server(service, host, port)
        self._http_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceDaemon":
        self.service.start()
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="sched-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        self.service.stop()

    def serve_until_interrupt(self) -> None:  # pragma: no cover - CLI path
        """Foreground mode for ``repro serve``: block until Ctrl-C or
        SIGTERM.

        Both signals trigger the same graceful drain: the HTTP server
        stops accepting, the in-flight engine batch completes, a final
        checkpoint is written (durable services), and the process exits
        0 — so an orchestrator's ordinary ``SIGTERM`` never loses
        acknowledged state.
        """
        stop = threading.Event()
        previous = None
        try:
            previous = signal.signal(
                signal.SIGTERM, lambda signum, frame: stop.set()
            )
        except ValueError:
            pass  # not the main thread; Ctrl-C handling still works
        try:
            while not stop.is_set():
                stop.wait(3600)
        except KeyboardInterrupt:
            pass
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
            self.stop()

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

"""Durable state store: write-ahead journal segments plus snapshots.

The service's crash-safety contract is **journal-then-apply**: every
accepted mutation batch (one inbox drain's submits/cancels/advances)
is appended to the journal and fsynced *before* the engine applies it
and before any client sees a success reply.  Recovery is therefore
mechanical: load the newest readable snapshot, replay every journal
record with a higher sequence number, and the engine is back at the
exact pre-crash state — the same pass-transaction batching, the same
event order.

Layout of a state directory::

    meta.json               schema + config fingerprint (+ creation stamp)
    journal-000001.jsonl    records n=1.. (segment named by first seq)
    journal-000042.jsonl    opened by the rotation after snapshot n=41
    snapshot-000041.json    engine snapshot covering records n<=41

Each journal line is ``{"n": seq, "crc": crc32(body), "rec": body}``
with canonical (sorted-key, compact) body serialization so the CRC is
reproducible.  A torn final line — the crash happened mid-append — is
tolerated and dropped: its batch was never applied, never acknowledged,
and the client's idempotent retry resubmits it.  A bad line anywhere
*else* is real corruption and refuses to load.

Snapshots are written atomically (temp file + ``os.replace``) and
rotation prunes journal segments fully covered by the newest snapshot,
so steady-state disk usage is one snapshot plus the journal suffix
written since.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["JournalError", "StateStore", "config_fingerprint"]

JOURNAL_SCHEMA = 1

_SEGMENT_PREFIX = "journal-"
_SNAPSHOT_PREFIX = "snapshot-"


class JournalError(ReproError):
    """The state directory is corrupt or inconsistent with the config."""


def config_fingerprint(config_json: str) -> str:
    """Stable digest of an experiment configuration document.

    A state directory is only replayable against the configuration
    that produced it — a different cluster or scheduler would take the
    journal's mutations down a different decision path — so the store
    refuses to open under a different fingerprint.
    """
    return hashlib.sha256(config_json.encode("utf-8")).hexdigest()


def _canonical(body: Dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _seq_of(path: Path, prefix: str) -> int:
    stem = path.name[len(prefix):].split(".", 1)[0]
    return int(stem)


class StateStore:
    """One service's durable state directory (single writer)."""

    def __init__(self, root: str | os.PathLike, fingerprint: str) -> None:
        """Open (or create) the state directory.

        ``fingerprint`` is the owning configuration's digest; opening
        an existing directory under a different one raises
        :class:`JournalError` instead of silently replaying a journal
        against the wrong machine.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self._segment_fd: Optional[int] = None
        self._segment_path: Optional[Path] = None
        meta_path = self.root / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (ValueError, OSError) as exc:
                raise JournalError(f"unreadable state meta: {exc}") from exc
            if meta.get("schema") != JOURNAL_SCHEMA:
                raise JournalError(
                    f"state dir schema {meta.get('schema')!r} is not "
                    f"{JOURNAL_SCHEMA}"
                )
            if meta.get("fingerprint") != fingerprint:
                raise JournalError(
                    "state dir belongs to a different configuration "
                    f"(fingerprint {meta.get('fingerprint')!r:.20} != "
                    f"{fingerprint!r:.20}); refusing to replay"
                )
        else:
            self._atomic_write(
                meta_path,
                json.dumps(
                    {"schema": JOURNAL_SCHEMA, "fingerprint": fingerprint},
                    indent=2,
                ),
            )
        self.next_seq = self._scan_next_seq()

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _segments(self) -> List[Path]:
        return sorted(
            self.root.glob(f"{_SEGMENT_PREFIX}*.jsonl"),
            key=lambda p: _seq_of(p, _SEGMENT_PREFIX),
        )

    def _snapshots(self) -> List[Path]:
        return sorted(
            self.root.glob(f"{_SNAPSHOT_PREFIX}*.json"),
            key=lambda p: _seq_of(p, _SNAPSHOT_PREFIX),
        )

    def _scan_next_seq(self) -> int:
        last = 0
        for path in self._snapshots():
            last = max(last, _seq_of(path, _SNAPSHOT_PREFIX))
        for path in self._segments():
            for seq, _body in self._read_segment(path, tail_tolerant=True):
                last = max(last, seq)
        return last + 1

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # journal writing
    # ------------------------------------------------------------------
    def append(self, body: Dict) -> int:
        """Durably append one mutation record; returns its sequence.

        The record is on disk (written and fdatasync'd) when this
        returns — the service calls this once per inbox drain with
        mutations, so the sync cost amortizes over the whole batch.
        The sync sits on the engine thread's drain latency, so the
        append path is kept lean: the canonical body is serialized
        once and spliced into a hand-built envelope whose keys are
        already in sorted order (``crc`` < ``n`` < ``rec``), and
        ``fdatasync`` skips the inode-metadata flush ``fsync`` would
        pay (the record data and the size change it needs are still
        durable — the WAL contract only needs the bytes readable
        after a crash).
        """
        seq = self.next_seq
        if self._segment_fd is None:
            self._open_segment(seq)
        encoded = _canonical(body)
        crc = zlib.crc32(encoded.encode("utf-8"))
        line = f'{{"crc":{crc},"n":{seq},"rec":{encoded}}}\n'
        os.write(self._segment_fd, line.encode("utf-8"))
        os.fdatasync(self._segment_fd)
        self.next_seq = seq + 1
        return seq

    def _open_segment(self, start_seq: int) -> None:
        # Always a fresh segment, truncating any existing file of the
        # same name: a file at this start seq can only hold a torn
        # remnant (a valid record here would have bumped next_seq past
        # it), and appending after a torn line would bury the tear
        # mid-file where the reader rightly treats it as corruption.
        path = self.root / f"{_SEGMENT_PREFIX}{start_seq:06d}.jsonl"
        self._segment_fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        self._segment_path = path

    # ------------------------------------------------------------------
    # reading / recovery
    # ------------------------------------------------------------------
    def _read_segment(
        self, path: Path, tail_tolerant: bool
    ) -> Iterator[Tuple[int, Dict]]:
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            raise JournalError(f"unreadable journal segment {path.name}: {exc}")
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            try:
                doc = json.loads(line)
                body = doc["rec"]
                if doc["crc"] != zlib.crc32(_canonical(body).encode("utf-8")):
                    raise ValueError("crc mismatch")
                seq = int(doc["n"])
            except (ValueError, KeyError, TypeError) as exc:
                if last and tail_tolerant:
                    # Torn tail: the crash interrupted this append, so
                    # the batch was never applied nor acknowledged.
                    return
                raise JournalError(
                    f"corrupt journal record at {path.name}:{index + 1}: {exc}"
                ) from exc
            yield seq, body

    def replay(self, after_seq: int) -> List[Tuple[int, Dict]]:
        """Every durable record with sequence number > ``after_seq``."""
        records: List[Tuple[int, Dict]] = []
        segments = self._segments()
        for index, path in enumerate(segments):
            if index + 1 < len(segments) and _seq_of(
                segments[index + 1], _SEGMENT_PREFIX
            ) <= after_seq + 1:
                continue  # fully covered by the snapshot
            for seq, body in self._read_segment(path, tail_tolerant=True):
                if seq > after_seq:
                    records.append((seq, body))
        records.sort(key=lambda item: item[0])
        expected = after_seq + 1
        for seq, _body in records:
            if seq != expected:
                raise JournalError(
                    f"journal gap: expected record {expected}, found {seq}"
                )
            expected += 1
        return records

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self, document: Dict) -> None:
        """Atomically persist a snapshot covering all appended records,
        then rotate: start a fresh segment and prune everything the new
        snapshot supersedes."""
        covered = self.next_seq - 1
        path = self.root / f"{_SNAPSHOT_PREFIX}{covered:06d}.json"
        self._atomic_write(
            path, json.dumps({"covered_seq": covered, "snapshot": document})
        )
        if self._segment_fd is not None:
            os.close(self._segment_fd)
            self._segment_fd = None
            self._segment_path = None
        # Keep the newest two snapshots so a corrupted newest one still
        # leaves a recoverable older generation, and keep the journal
        # suffix back to the older retained snapshot for its replay.
        snapshots = self._snapshots()
        for old in snapshots[:-2]:
            old.unlink()
        retained = self._snapshots()
        retain_from = _seq_of(retained[0], _SNAPSHOT_PREFIX)
        # A segment is prunable when every record it can contain is
        # covered by the oldest retained snapshot: its successor
        # segment starts at or below that snapshot's coverage + 1.
        segments = self._segments()
        for index, segment in enumerate(segments):
            if index + 1 < len(segments) and _seq_of(
                segments[index + 1], _SEGMENT_PREFIX
            ) <= retain_from + 1:
                segment.unlink()

    def latest_snapshot(self) -> Optional[Tuple[int, Dict]]:
        """Newest readable ``(covered_seq, snapshot)``, or ``None``.

        A snapshot that fails to parse (crash mid-replace cannot cause
        this — the write is atomic — but disk corruption can) falls
        back to the next older one; the journal suffix from that older
        snapshot is still intact because pruning only runs *after* a
        snapshot write succeeds.
        """
        for path in reversed(self._snapshots()):
            try:
                doc = json.loads(path.read_text())
                return int(doc["covered_seq"]), doc["snapshot"]
            except (ValueError, KeyError, OSError):
                continue
        return None

    def close(self) -> None:
        if self._segment_fd is not None:
            os.close(self._segment_fd)
            self._segment_fd = None
            self._segment_path = None

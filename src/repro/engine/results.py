"""The record a simulation run leaves behind.

Everything downstream (metrics, audits, reports, benches) consumes a
:class:`SimulationResult`; nothing reaches back into the engine.  The
result deliberately stores the *jobs themselves* (with their execution
records) rather than extracted arrays, so late-added metrics never
require engine changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.spec import ClusterSpec
from ..memdis.ledger import MemoryLedger
from ..workload.job import Job, JobState

__all__ = ["Promise", "Sample", "SimulationResult"]


@dataclass(frozen=True)
class Promise:
    """A backfill reservation promise recorded for auditing.

    ``decided_at`` is when the scheduler made the promise;
    ``promised_start`` the reservation's start.  Only the *first*
    promise per job is kept — it is the strongest bound a later
    backfill decision must honor.
    """

    job_id: int
    decided_at: float
    promised_start: float


@dataclass(frozen=True, slots=True)
class Sample:
    """One time-series sample of system state (slotted: one instance
    per sampling tick over long simulations)."""

    time: float
    queue_length: int
    running_jobs: int
    busy_nodes: int
    local_mem_granted: int
    pool_used: int
    pool_capacity: int


@dataclass
class SimulationResult:
    """Complete record of one simulation run."""

    jobs: List[Job]
    cluster_spec: ClusterSpec
    scheduler_info: Dict[str, str]
    ledger: MemoryLedger
    promises: Dict[int, Promise] = field(default_factory=dict)
    samples: List[Sample] = field(default_factory=list)
    failures: List["FailureEvent"] = field(default_factory=list)  # noqa: F821
    cycles: int = 0
    events: int = 0
    started_at: float = 0.0  # earliest submit
    finished_at: float = 0.0  # latest terminal time
    #: Backfill cache/replay counters by ledger ("shadow", "replay") —
    #: observability of the incremental fast paths, never decision
    #: state, and deliberately excluded from serialized records.
    strategy_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def by_state(self, state: JobState) -> List[Job]:
        return [job for job in self.jobs if job.state is state]

    @property
    def completed(self) -> List[Job]:
        return self.by_state(JobState.COMPLETED)

    @property
    def killed(self) -> List[Job]:
        return self.by_state(JobState.KILLED)

    @property
    def rejected(self) -> List[Job]:
        return self.by_state(JobState.REJECTED)

    @property
    def finished(self) -> List[Job]:
        """Jobs that ran to a terminal state on the machine (not rejected)."""
        return [
            job
            for job in self.jobs
            if job.state in (JobState.COMPLETED, JobState.KILLED)
        ]

    @property
    def makespan(self) -> float:
        """Last terminal time minus first submission."""
        return self.finished_at - self.started_at

    def job(self, job_id: int) -> Job:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(job_id)

    def summary_counts(self) -> Dict[str, int]:
        return {
            "total": len(self.jobs),
            "completed": len(self.completed),
            "killed": len(self.killed),
            "rejected": len(self.rejected),
        }

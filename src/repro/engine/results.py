"""The record a simulation run leaves behind.

Everything downstream (metrics, audits, reports, benches) consumes a
:class:`SimulationResult`; nothing reaches back into the engine.  The
result deliberately stores the *jobs themselves* (with their execution
records) rather than extracted arrays, so late-added metrics never
require engine changes.

Trace-scale runs cannot afford that: a million-job replay would hold a
million Job objects (plus ledger entries and promises) to the end.  The
**rolling-aggregation mode** lives here too — :class:`RollingResults`
ingests each job *as it reaches a terminal state*, folds it into exact
online accumulators (:class:`RollingStats`), optionally spills the full
per-job record to a JSONL sink, and lets the engine evict the object.
Peak memory becomes O(active jobs), not O(trace length).

Determinism contract: :func:`job_record` + :func:`canonical_json` are
the *only* serialization of a terminal job, and ``RollingStats`` folds
records (not live objects), so a fold over spilled JSONL lines is
bit-identical to the fold performed live — which is what lets sharded
replay prove itself field-for-field equal to an uninterrupted run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, IO, List, Optional

from ..cluster.spec import ClusterSpec
from ..memdis.ledger import MemoryLedger
from ..workload.job import Job, JobState

__all__ = [
    "Promise",
    "Sample",
    "SimulationResult",
    "RollingStats",
    "RollingResults",
    "job_record",
    "canonical_json",
]


@dataclass(frozen=True)
class Promise:
    """A backfill reservation promise recorded for auditing.

    ``decided_at`` is when the scheduler made the promise;
    ``promised_start`` the reservation's start.  Only the *first*
    promise per job is kept — it is the strongest bound a later
    backfill decision must honor.
    """

    job_id: int
    decided_at: float
    promised_start: float


@dataclass(frozen=True, slots=True)
class Sample:
    """One time-series sample of system state (slotted: one instance
    per sampling tick over long simulations)."""

    time: float
    queue_length: int
    running_jobs: int
    busy_nodes: int
    local_mem_granted: int
    pool_used: int
    pool_capacity: int


@dataclass
class SimulationResult:
    """Complete record of one simulation run."""

    jobs: List[Job]
    cluster_spec: ClusterSpec
    scheduler_info: Dict[str, str]
    ledger: MemoryLedger
    promises: Dict[int, Promise] = field(default_factory=dict)
    samples: List[Sample] = field(default_factory=list)
    failures: List["FailureEvent"] = field(default_factory=list)  # noqa: F821
    cycles: int = 0
    events: int = 0
    started_at: float = 0.0  # earliest submit
    finished_at: float = 0.0  # latest terminal time
    #: Backfill cache/replay counters by ledger ("shadow", "replay") —
    #: observability of the incremental fast paths, never decision
    #: state, and deliberately excluded from serialized records.
    strategy_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Set when the run executed in rolling-aggregation mode: the exact
    #: online accumulators over every terminal job.  ``jobs`` then holds
    #: only whatever was still live at the end (normally nothing).
    rolling: Optional["RollingStats"] = None

    # ------------------------------------------------------------------
    def by_state(self, state: JobState) -> List[Job]:
        return [job for job in self.jobs if job.state is state]

    @property
    def completed(self) -> List[Job]:
        return self.by_state(JobState.COMPLETED)

    @property
    def killed(self) -> List[Job]:
        return self.by_state(JobState.KILLED)

    @property
    def rejected(self) -> List[Job]:
        return self.by_state(JobState.REJECTED)

    @property
    def finished(self) -> List[Job]:
        """Jobs that ran to a terminal state on the machine (not rejected)."""
        return [
            job
            for job in self.jobs
            if job.state in (JobState.COMPLETED, JobState.KILLED)
        ]

    @property
    def makespan(self) -> float:
        """Last terminal time minus first submission."""
        return self.finished_at - self.started_at

    def job(self, job_id: int) -> Job:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(job_id)

    def summary_counts(self) -> Dict[str, int]:
        return {
            "total": len(self.jobs),
            "completed": len(self.completed),
            "killed": len(self.killed),
            "rejected": len(self.rejected),
        }


# ----------------------------------------------------------------------
# Rolling-aggregation mode (trace-scale, bounded memory)
# ----------------------------------------------------------------------

#: Bounded-slowdown floor, matching :meth:`Job.bounded_slowdown`.
_BSLD_TAU = 10.0


def job_record(job: Job, promise: Optional[Promise] = None) -> dict:
    """The canonical per-job terminal record.

    Captures the full request *and* execution record — everything a
    late-added metric could want — in JSON-able form.  This is the unit
    of the sharded-replay identity proof, so every field the engine
    writes must appear here.
    """
    return {
        "job_id": job.job_id,
        "submit": job.submit_time,
        "nodes": job.nodes,
        "walltime": job.walltime,
        "runtime": job.runtime,
        "mem_per_node": job.mem_per_node,
        "mem_used_per_node": job.mem_used_per_node,
        "user": job.user,
        "group": job.group,
        "tag": job.tag,
        "restart_of": job.restart_of,
        "restart_count": job.restart_count,
        "state": job.state.value,
        "start": job.start_time,
        "end": job.end_time,
        "assigned_nodes": list(job.assigned_nodes),
        "local_grant_per_node": job.local_grant_per_node,
        "remote_per_node": job.remote_per_node,
        "pool_grants": dict(job.pool_grants),
        "dilation": job.dilation,
        "kill_reason": job.kill_reason,
        "promise": (
            [promise.decided_at, promise.promised_start]
            if promise is not None
            else None
        ),
    }


def canonical_json(doc: dict) -> str:
    """One-line canonical JSON: sorted keys, no whitespace.

    Python's float repr round-trips exactly, so a record folded after a
    JSON round trip is arithmetically identical to the live one — the
    property the stitching identity check rests on.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass
class RollingStats:
    """Exact online accumulators over terminal-job records.

    Every value is a plain sum / min / max / count — mergeable across
    shards for progress reporting, and, because :meth:`add_record`
    consumes the serialized record, a sequential fold over spilled
    JSONL reproduces the live fold bit-for-bit.
    """

    jobs: int = 0
    completed: int = 0
    killed: int = 0
    rejected: int = 0
    cancelled: int = 0
    finished: int = 0  # completed + killed (ran on the machine)
    promises: int = 0
    first_submit: float = math.inf
    last_end: float = -math.inf
    wait_sum: float = 0.0
    wait_max: float = 0.0
    response_sum: float = 0.0
    response_max: float = 0.0
    bsld_sum: float = 0.0
    bsld_max: float = 0.0
    node_seconds: float = 0.0
    local_grant_node_seconds: float = 0.0
    pool_mib_seconds: float = 0.0
    remote_fraction_sum: float = 0.0
    dilation_sum: float = 0.0

    def add(self, job: Job, promise: Optional[Promise] = None) -> dict:
        """Fold one live job; returns the record it was folded from."""
        rec = job_record(job, promise)
        self.add_record(rec)
        return rec

    def add_record(self, rec: dict) -> None:
        self.jobs += 1
        state = rec["state"]
        if state == "completed":
            self.completed += 1
        elif state == "killed":
            self.killed += 1
        elif state == "rejected":
            self.rejected += 1
        elif state == "cancelled":
            self.cancelled += 1
        if rec["promise"] is not None:
            self.promises += 1
        self.first_submit = min(self.first_submit, rec["submit"])
        start, end = rec["start"], rec["end"]
        if end is not None:
            self.last_end = max(self.last_end, end)
        if state not in ("completed", "killed") or start is None or end is None:
            return
        self.finished += 1
        wait = start - rec["submit"]
        response = end - rec["submit"]
        bsld = max(1.0, response / max(_BSLD_TAU, rec["runtime"]))
        span = end - start
        self.wait_sum += wait
        self.wait_max = max(self.wait_max, wait)
        self.response_sum += response
        self.response_max = max(self.response_max, response)
        self.bsld_sum += bsld
        self.bsld_max = max(self.bsld_max, bsld)
        self.node_seconds += rec["nodes"] * span
        self.local_grant_node_seconds += (
            rec["nodes"] * rec["local_grant_per_node"] * span
        )
        self.pool_mib_seconds += sum(rec["pool_grants"].values()) * span
        denom = rec["mem_per_node"]
        self.remote_fraction_sum += (
            rec["remote_per_node"] / denom if denom else 0.0
        )
        self.dilation_sum += rec["dilation"]

    def merge(self, other: "RollingStats") -> None:
        """Fold another shard's accumulators into this one.

        Sums are associative in exact arithmetic but not in floats; use
        merged stats for *progress*, and re-fold the stitched record
        stream (:meth:`add_record` per line, in order) when bit-level
        identity with an unsharded run matters.
        """
        for f in dataclass_fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name == "first_submit":
                self.first_submit = min(mine, theirs)
            elif f.name in ("last_end", "wait_max", "response_max", "bsld_max"):
                setattr(self, f.name, max(mine, theirs))
            else:
                setattr(self, f.name, mine + theirs)

    @property
    def makespan(self) -> float:
        if self.jobs == 0 or not math.isfinite(self.last_end):
            return 0.0
        return self.last_end - self.first_submit

    def to_dict(self) -> dict:
        """Exact (unrounded) accumulator values, JSON-able."""
        out = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        # Infinities are not JSON; empty-fold sentinels map to None.
        if not math.isfinite(out["first_submit"]):
            out["first_submit"] = None
        if not math.isfinite(out["last_end"]):
            out["last_end"] = None
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "RollingStats":
        stats = cls()
        for f in dataclass_fields(cls):
            if f.name in doc and doc[f.name] is not None:
                setattr(stats, f.name, doc[f.name])
        return stats

    def summary_dict(self) -> dict:
        """Headline derived metrics (means over finished jobs)."""
        n = max(1, self.finished)
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "killed": self.killed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "wait_mean": self.wait_sum / n,
            "wait_max": self.wait_max,
            "response_mean": self.response_sum / n,
            "bsld_mean": self.bsld_sum / n,
            "bsld_max": self.bsld_max,
            "mean_remote_fraction": self.remote_fraction_sum / n,
            "mean_dilation": self.dilation_sum / n,
            "node_seconds": self.node_seconds,
            "makespan": self.makespan,
            "throughput_jobs_per_hour": (
                self.finished / (self.makespan / 3600.0)
                if self.makespan > 0
                else 0.0
            ),
        }


class RollingResults:
    """Terminal-job sink for rolling-aggregation runs.

    The engine calls :meth:`ingest` exactly once per job reaching a
    terminal state (in event order); the sink folds the job into
    :class:`RollingStats` and, when spilling, appends the canonical
    record to a JSONL stream.  Sharded replay stitches those streams
    and re-folds them to prove identity with an unsharded run.
    """

    def __init__(
        self,
        spill_path: Optional[str] = None,
        spill: Optional[IO[str]] = None,
    ) -> None:
        if spill_path is not None and spill is not None:
            raise ValueError("pass spill_path or spill, not both")
        self.stats = RollingStats()
        self.records = 0
        self._sink: Optional[IO[str]] = spill
        self._owns_sink = False
        if spill_path is not None:
            self._sink = open(spill_path, "w", encoding="utf-8")
            self._owns_sink = True

    def ingest(self, job: Job, promise: Optional[Promise] = None) -> None:
        rec = self.stats.add(job, promise)
        if self._sink is not None:
            self._sink.write(canonical_json(rec) + "\n")
        self.records += 1

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None

    def __enter__(self) -> "RollingResults":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The batch-scheduling simulation driver.

Event flow: every job submission enqueues the job and requests a
scheduling pass; every completion/kill releases resources and requests
a pass.  Passes are deduplicated per instant and run at the lowest
intra-instant priority, so one pass sees the net effect of everything
that happened at that time.  The scheduler's decisions are applied
*during* the pass through the context callback — decision and
allocation are atomic with respect to simulation time.

Each pass runs as a **transaction** (:class:`~repro.sched.base.
PassTransaction`): the strategy-visible effects of a start — cluster
allocation, job lifecycle, the running list — are applied immediately
through the context callback (strategies and gates must observe live
state), while the engine-only side effects are deferred to one commit
at pass end: one ledger append batch, one completion-group push into
the event calendar, one queue rebuild, and one cluster-version bump.
Nothing outside the pass can observe the difference (no event runs
between the deferral and the commit), so the committed state is
bit-identical to the historical one-start-at-a-time path — which is
retained behind ``batch_starts=False`` as the differential anchor.

Scheduler state persists *across* passes, and the engine keeps it
coherent by notification rather than teardown: a completion or kill
releases cluster resources and then calls
:meth:`~repro.sched.base.Scheduler.notify_release` (while the job
still carries its grant records, with the pre-release cluster version
as the proof stamp), letting strategies fold the release into their
cached availability profile and retained reservation plan in place.
The engine never clears scheduler-side plans between passes — what
survives a pass, and what a perturbation invalidates, is entirely the
strategy's contract (see :mod:`repro.sched.backfill` and
``docs/ARCHITECTURE.md``).

**Online mode** (``online=True``) turns the same engine into the core
of a long-running scheduler service (:mod:`repro.service`): instead of
a one-shot :meth:`~SchedulerSimulation.run` over a pre-declared
workload, the caller streams work in with
:meth:`~SchedulerSimulation.inject_jobs` /
:meth:`~SchedulerSimulation.cancel_job` and steps the clock with
:meth:`~SchedulerSimulation.advance_to` (wall-clock or replay pacing
is the *caller's* policy — the engine only ever sees virtual time).
Injected batches are sorted by ``(submit_time, job_id)`` before entry
into the calendar, which makes an online replay of a trace — however
its submissions were interleaved across client connections —
event-for-event identical to the offline run, as long as the clock is
never advanced past a time that still has undelivered submissions.
The decision-identity differential suite anchors on exactly that
contract.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.node import NodeState
from ..errors import ConfigurationError, SimulationError
from ..memdis.ledger import MemoryLedger
from ..sched.base import (
    KillPolicy,
    PassTransaction,
    Scheduler,
    SchedulerContext,
    StartDecision,
    pool_pressure,
)
from ..sim.engine import Simulator
from ..sim.events import Event, EventPriority
from ..workload.job import Job, JobState
from . import lifecycle
from .failures import FailureEvent
from .results import Promise, RollingResults, Sample, SimulationResult

__all__ = ["SchedulerSimulation"]

_EPS = 1e-9


def _remove_by_identity(items: List[Job], job: Job) -> None:
    """Remove ``job`` from ``items`` by identity.

    Equivalent to ``items.remove(job)`` — job ids are unique per
    simulation, so the first equal element *is* the object — but skips
    the field-by-field dataclass comparison on every scanned element.
    """
    for index, item in enumerate(items):
        if item is job:
            del items[index]
            return
    items.remove(job)  # preserves the original ValueError behavior


class SchedulerSimulation:
    """Runs one workload on one cluster under one scheduler stack."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        jobs: Iterable[Job],
        sample_interval: Optional[float] = None,
        max_events: Optional[int] = None,
        failures: Iterable["FailureEvent"] = (),
        # Apply each pass's starts as one transaction commit (the
        # default).  False restores the historical one-start-at-a-time
        # application — kept as the anchor for the batch≡sequential
        # differential suite.
        batch_starts: bool = True,
        # Online mode: jobs stream in through inject_jobs()/cancel_job()
        # and the caller steps the clock with advance_to()/drain();
        # run() is forbidden.  The workload may start empty.
        online: bool = False,
        # Clock origin for an online engine with no initial jobs.
        start_time: float = 0.0,
        # Streaming admission: an iterator of PENDING jobs in
        # non-decreasing submit order.  The engine keeps exactly one
        # un-admitted job buffered and admits it when the previous
        # submission fires, so the calendar — and peak memory — never
        # hold the whole trace.  Decisions are identical to passing the
        # same jobs as a list (submit events still precede every
        # scheduling pass at their instant).
        job_source: Optional[Iterable[Job]] = None,
        # Rolling aggregation: fold each job into the sink the moment
        # it turns terminal, then evict it from the engine.  Peak RSS
        # becomes O(active jobs); pair with ``job_source`` — with a
        # pre-built list the list itself already dominates memory.
        rolling: Optional[RollingResults] = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.online = online
        self.jobs: List[Job] = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not self.jobs and not online and job_source is None:
            raise ConfigurationError("no jobs to simulate")
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate job ids in workload")
        for job in self.jobs:
            if job.state is not JobState.PENDING:
                raise ConfigurationError(
                    f"job {job.job_id} is {job.state.value}; "
                    "pass fresh PENDING jobs (see workload.filters.reset_jobs)"
                )
        if online and sample_interval is not None:
            raise ConfigurationError(
                "online mode has no sampling ticker; poll state instead"
            )
        self.sample_interval = sample_interval
        self.max_events = max_events
        self.failures: List["FailureEvent"] = sorted(
            failures, key=lambda e: (e.time, e.node_id)
        )
        for event in self.failures:
            if event.node_id >= cluster.num_nodes:
                raise ConfigurationError(
                    f"failure trace references node {event.node_id}; "
                    f"cluster has {cluster.num_nodes}"
                )
        if job_source is not None and self.failures:
            # Failure continuations race chained submissions at shared
            # instants; list admission is the anchored path for failure
            # traces, streaming is for (failure-free) archive replay.
            raise ConfigurationError(
                "job_source cannot be combined with a failure trace; "
                "pass the workload as a list instead"
            )

        # Streaming source: pull the first job early — the clock origin
        # must not start after the first submission.
        self._job_source: Optional[Iterator[Job]] = None
        self._source_next: Optional[Job] = None
        self._source_done = True
        self._source_last_submit = -math.inf
        if job_source is not None:
            self._job_source = iter(job_source)
            self._source_done = False
            first = next(self._job_source, None)
            if first is None:
                self._source_done = True
            else:
                self._validate_source_job(first)
                self._source_next = first

        origin = self.jobs[0].submit_time if self.jobs else float(start_time)
        if self._source_next is not None and not online:
            origin = (
                min(origin, self._source_next.submit_time)
                if self.jobs
                else self._source_next.submit_time
            )
        self._sim = Simulator(start_time=origin)
        self._max_job_id = max((job.job_id for job in self.jobs), default=0)
        self._jobs_by_id: Dict[int, Job] = {job.job_id: job for job in self.jobs}
        self._queue: List[Job] = []
        self._running: List[Job] = []
        self._ledger = MemoryLedger()
        self._promises: Dict[int, Promise] = {}
        self._samples: List[Sample] = []
        self._end_events: Dict[int, Event] = {}
        self._submit_events: Dict[int, Event] = {}
        self._cycles = 0
        self._pass_requested = False
        self._terminal_count = 0
        self._ran = False
        self._batch_starts = batch_starts
        self._txn: Optional[PassTransaction] = None
        self._admitted = len(self.jobs)
        self._first_submit: Optional[float] = (
            self.jobs[0].submit_time if self.jobs else None
        )
        self._rolling = rolling
        # Rolling mode drops the grant ledger: it grows O(trace) and
        # exists for post-hoc audits, which rolling runs trade away.
        self._ledger_enabled = rolling is None
        if online:
            # Arm the calendar immediately: initial jobs and failures
            # enter it now, and advance_to() does the stepping run()
            # would have done.
            for job in self.jobs:
                self._submit_events[job.job_id] = self._sim.schedule_at(
                    job.submit_time,
                    self._on_submit,
                    priority=EventPriority.SUBMIT,
                    payload=job,
                )
            for failure in self.failures:
                self._sim.schedule_at(
                    max(failure.time, origin),
                    self._on_node_failure,
                    priority=EventPriority.KILL,
                    payload=failure,
                )
            self._admit_next_from_source()

    # ------------------------------------------------------------------
    # streaming admission
    # ------------------------------------------------------------------
    @property
    def source_exhausted(self) -> bool:
        """True when no streaming source is attached or it has fully
        drained into the calendar (checkpoints require this)."""
        return self._job_source is None or (
            self._source_done and self._source_next is None
        )

    @property
    def admitted_count(self) -> int:
        """Jobs ever admitted (initial + injected + streamed)."""
        return self._admitted

    def attach_source(self, source: Iterable[Job]) -> None:
        """Attach a streaming job source to a live engine.

        Used by sharded replay: a restored engine gets the next trace
        segment's stream attached *after* its calendar has been
        re-entered, so the chained submit events draw sequence numbers
        strictly after every restored event — exactly where an
        uninterrupted run would have allocated them.
        """
        if not self.source_exhausted:
            raise SimulationError("engine already has an active job source")
        if self.failures:
            raise ConfigurationError(
                "job_source cannot be combined with a failure trace; "
                "pass the workload as a list instead"
            )
        self._job_source = iter(source)
        self._source_done = False
        self._source_next = None
        first = next(self._job_source, None)
        if first is None:
            self._source_done = True
            return
        self._validate_source_job(first)
        self._source_next = first
        self._admit_next_from_source()

    def _validate_source_job(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            raise ConfigurationError(
                f"job {job.job_id} is {job.state.value}; a job source must "
                "yield fresh PENDING jobs"
            )
        if job.submit_time < self._source_last_submit:
            raise ConfigurationError(
                f"job source is not submit-ordered: job {job.job_id} at "
                f"t={job.submit_time} after t={self._source_last_submit}"
            )
        self._source_last_submit = job.submit_time

    def _pull_from_source(self) -> Optional[Job]:
        if self._job_source is None or self._source_done:
            return None
        job = next(self._job_source, None)
        if job is None:
            self._source_done = True
            return None
        self._validate_source_job(job)
        return job

    def _admit_next_from_source(self) -> None:
        """Admit the buffered source job; buffer its successor.

        Keeping exactly one un-admitted job in hand means the calendar
        always contains the next submission (so the run loop never
        starves) while memory holds O(active) jobs, not the trace.
        """
        job = self._source_next
        if job is None:
            return
        self._source_next = self._pull_from_source()
        if job.job_id in self._jobs_by_id:
            raise ConfigurationError(
                f"duplicate job id {job.job_id} from job source"
            )
        if job.submit_time < self._sim.now:
            raise ConfigurationError(
                f"job {job.job_id} submits at t={job.submit_time}, before "
                f"the engine clock t={self._sim.now} (late arrival)"
            )
        self.jobs.append(job)
        self._jobs_by_id[job.job_id] = job
        if job.job_id > self._max_job_id:
            self._max_job_id = job.job_id
        self._admitted += 1
        if self._first_submit is None or job.submit_time < self._first_submit:
            self._first_submit = job.submit_time
        self._submit_events[job.job_id] = self._sim.schedule_at(
            job.submit_time,
            self._on_submit,
            priority=EventPriority.SUBMIT,
            payload=job,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run to completion (or ``until``); returns the result record."""
        if self.online:
            raise SimulationError(
                "online engine: step with advance_to()/drain(), not run()"
            )
        if self._ran:
            raise SimulationError("simulation already ran; build a new one")
        self._ran = True
        for job in self.jobs:
            self._sim.schedule_at(
                job.submit_time,
                self._on_submit,
                priority=EventPriority.SUBMIT,
                payload=job,
            )
        start = self._sim.now
        for failure in self.failures:
            # Failures before the first submission apply at the start.
            self._sim.schedule_at(
                max(failure.time, start),
                self._on_node_failure,
                priority=EventPriority.KILL,
                payload=failure,
            )
        self._admit_next_from_source()
        if self.sample_interval is not None:
            if self.sample_interval <= 0:
                raise ConfigurationError("sample_interval must be positive")
            self._sim.schedule_at(
                self._sim.now, self._on_sample, priority=EventPriority.SAMPLE
            )
        self._sim.run(until=until, max_events=self.max_events)

        if until is None and self._terminal_count != self._admitted:
            stuck = [j.job_id for j in self.jobs if not j.state.terminal]
            raise SimulationError(
                f"simulation drained its calendar with non-terminal jobs {stuck[:10]}"
            )
        return self._build_result()

    def _build_result(self) -> SimulationResult:
        finished_times = [
            job.end_time for job in self.jobs if job.end_time is not None
        ]
        finished_at = max(finished_times) if finished_times else self._sim.now
        rolling_stats = None
        if self._rolling is not None:
            rolling_stats = self._rolling.stats
            if math.isfinite(rolling_stats.last_end):
                finished_at = max(finished_at, rolling_stats.last_end)
        return SimulationResult(
            jobs=self.jobs,
            cluster_spec=self.cluster.spec,
            scheduler_info=self.scheduler.describe(),
            ledger=self._ledger,
            promises=self._promises,
            samples=self._samples,
            failures=self.failures,
            cycles=self._cycles,
            events=self._sim.events_processed,
            started_at=(
                self._first_submit
                if self._first_submit is not None
                else self._sim.now
            ),
            finished_at=finished_at,
            strategy_stats=self.scheduler.strategy_stats(),
            rolling=rolling_stats,
        )

    # ------------------------------------------------------------------
    # online API (the scheduler service's engine-facing surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._sim.now

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def cycles(self) -> int:
        return self._cycles

    def job(self, job_id: int) -> Optional[Job]:
        """The job with this id, or ``None`` — any state, any mode."""
        return self._jobs_by_id.get(job_id)

    def promise(self, job_id: int) -> Optional[Promise]:
        return self._promises.get(job_id)

    def _require_online(self) -> None:
        if not self.online:
            raise SimulationError(
                "offline engine: construct with online=True to stream work in"
            )

    def inject_jobs(self, jobs: Iterable[Job]) -> List[Job]:
        """Admit a batch of external submissions into the calendar.

        The batch is validated (fresh PENDING jobs, unseen ids, no
        submission in the past) and sorted by ``(submit_time,
        job_id)`` before its submit events are created — the sort is
        what makes a streamed replay event-for-event identical to an
        offline run regardless of arrival interleaving, because queue
        policies break every remaining tie on the same key.  Returns
        the accepted jobs in injection order.  Must not be called
        while the clock is stepping (the service's engine thread is
        the single writer).
        """
        self._require_online()
        batch = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        now = self._sim.now
        for job in batch:
            if job.state is not JobState.PENDING:
                raise ConfigurationError(
                    f"job {job.job_id} is {job.state.value}; submit fresh "
                    "PENDING jobs"
                )
            if job.job_id in self._jobs_by_id:
                raise ConfigurationError(
                    f"duplicate job id {job.job_id} in online submission"
                )
            if job.submit_time < now:
                raise ConfigurationError(
                    f"job {job.job_id} submits at t={job.submit_time}, "
                    f"before the engine clock t={now} (late arrival)"
                )
        for job in batch:
            self.jobs.append(job)
            self._jobs_by_id[job.job_id] = job
            if job.job_id > self._max_job_id:
                self._max_job_id = job.job_id
            self._admitted += 1
            if self._first_submit is None or job.submit_time < self._first_submit:
                self._first_submit = job.submit_time
            self._submit_events[job.job_id] = self._sim.schedule_at(
                job.submit_time,
                self._on_submit,
                priority=EventPriority.SUBMIT,
                payload=job,
            )
        return batch

    def cancel_job(self, job_id: int) -> str:
        """Withdraw a job; returns what happened.

        * ``"cancelled"`` — it was queued (or not yet due): removed
          without ever holding resources (PENDING → CANCELLED);
        * ``"killed"`` — it was running: resources released, execution
          record kept (RUNNING → KILLED, reason ``"cancelled"``), and
          a scheduling pass requested for the freed capacity;
        * ``"already_terminal"`` / ``"not_found"`` — nothing to do.
        """
        self._require_online()
        job = self._jobs_by_id.get(job_id)
        if job is None:
            return "not_found"
        if job.state.terminal:
            return "already_terminal"
        now = self._sim.now
        if job.state is JobState.PENDING:
            submit_event = self._submit_events.pop(job_id, None)
            if submit_event is not None:
                self._sim.cancel(submit_event)
            for index, item in enumerate(self._queue):
                if item is job:
                    del self._queue[index]
                    break
            lifecycle.cancel_job(job, now)
            self._finalize_terminal(job)
            return "cancelled"
        # RUNNING: exactly the node-failure kill path, minus the drain.
        end_event = self._end_events.pop(job_id, None)
        if end_event is not None:
            self._sim.cancel(end_event)
        self._release(job)
        lifecycle.kill_job(job, now, reason="cancelled")
        self._finalize_terminal(job)
        self._request_pass()
        return "killed"

    def advance_to(self, time: float) -> float:
        """Step the virtual clock to ``time``, firing every due event
        (submissions, passes, completions).  Idempotent for a time at
        or before the current clock *with no due events*; otherwise
        processes exactly what an offline run would have processed by
        then.  Returns the clock."""
        self._require_online()
        if time < self._sim.now:
            raise SimulationError(
                f"cannot advance to t={time}, before clock t={self._sim.now}"
            )
        return self._sim.run(until=time, max_events=self.max_events)

    def drain(self) -> float:
        """Run the calendar empty (lets every admitted job finish)."""
        self._require_online()
        return self._sim.run(max_events=self.max_events)

    def online_result(self) -> SimulationResult:
        """Snapshot the run record without requiring termination.

        Unlike :meth:`run`, jobs may still be pending or running; the
        caller decides when the record is complete (the load harness
        drains first, so its record matches an offline run's exactly).
        """
        self._require_online()
        return self._build_result()

    # ------------------------------------------------------------------
    # checkpoint/restore (crash-safe service support)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """JSON-able snapshot of the full online engine state.

        See :mod:`repro.engine.snapshot` for the format and the
        restore contract.  Only legal between events (the service
        checkpoints between inbox drains)."""
        from .snapshot import checkpoint_engine  # deferred: import cycle

        return checkpoint_engine(self)

    @classmethod
    def restore(
        cls,
        cluster: Cluster,
        scheduler: Scheduler,
        snapshot: Dict,
        *,
        rolling: Optional[RollingResults] = None,
        job_source: Optional[Iterable[Job]] = None,
    ) -> "SchedulerSimulation":
        """Rebuild a live online engine from :meth:`checkpoint` output.

        ``cluster`` and ``scheduler`` must be fresh instances built
        from the configuration that produced the snapshot.  ``rolling``
        re-arms rolling aggregation on the restored engine (each shard
        folds its own window); ``job_source`` attaches the next trace
        segment's stream after the calendar is re-entered."""
        from .snapshot import restore_engine  # deferred: import cycle

        return restore_engine(
            cluster, scheduler, snapshot, rolling=rolling, job_source=job_source
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_submit(self, event: Event) -> None:
        job: Job = event.payload
        self._submit_events.pop(job.job_id, None)
        # Chain the next streamed submission into the calendar.  Its
        # submit time is >= this one's, and SUBMIT priority beats the
        # SCHEDULE pass at any shared instant, so decisions match the
        # pre-built-list path event for event.
        self._admit_next_from_source()
        if not self.scheduler.fits_machine(job, self.cluster):
            lifecycle.reject_job(job, self._sim.now)
            self._finalize_terminal(job)
            return
        self._queue.append(job)
        self._request_pass()

    def _on_finish(self, event: Event) -> None:
        job: Job = event.payload
        self._end_events.pop(job.job_id, None)
        self._release(job)
        lifecycle.complete_job(job, self._sim.now)
        self._finalize_terminal(job)
        self._request_pass()

    def _on_kill(self, event: Event) -> None:
        job: Job = event.payload
        self._end_events.pop(job.job_id, None)
        self._release(job)
        lifecycle.kill_job(job, self._sim.now, reason="walltime")
        self._finalize_terminal(job)
        self._request_pass()

    def _on_node_failure(self, event: Event) -> None:
        failure = event.payload
        # Repair completes at the *absolute* time the trace implies,
        # even when the failure itself predates simulation start.
        repair_at = failure.time + failure.repair_time
        if repair_at <= self._sim.now:
            return  # failed and repaired entirely before the sim began
        node = self.cluster.node(failure.node_id)
        if node.state is NodeState.DOWN:
            return  # overlapping failure while already down: absorbed
        if node.state is NodeState.BUSY:
            victim = next(
                job for job in self._running if job.job_id == node.job_id
            )
            end_event = self._end_events.pop(victim.job_id, None)
            if end_event is not None:
                self._sim.cancel(end_event)
            self._release(victim)
            lifecycle.kill_job(victim, self._sim.now, reason="node_failure")
            self._finalize_terminal(victim)
            self._maybe_resubmit_from_checkpoint(victim)
        self.cluster.take_down(failure.node_id)
        self._sim.schedule_at(
            repair_at,
            self._on_node_repair,
            priority=EventPriority.GENERIC,
            payload=failure.node_id,
        )
        self._request_pass()

    def _on_node_repair(self, event: Event) -> None:
        self.cluster.bring_up(event.payload)
        self._request_pass()

    def _maybe_resubmit_from_checkpoint(self, victim: Job) -> None:
        """Resubmit a checkpointable failure victim as a continuation.

        The application checkpointed every ``checkpoint_interval``
        seconds of *base* progress; base progress at the kill instant
        is wall-clock elapsed deflated by the dilation factor.  The
        continuation carries the remaining base runtime, the original
        request shape, and a fresh id (lineage kept in ``restart_of``).
        If no checkpoint completed before the failure, the continuation
        restarts from scratch.
        """
        if victim.checkpoint_interval is None:
            return
        elapsed_base = (victim.end_time - victim.start_time) / (
            1.0 + victim.dilation
        )
        saved = (
            int(elapsed_base / victim.checkpoint_interval)
            * victim.checkpoint_interval
        )
        remaining = victim.runtime - saved
        if remaining <= 0:
            # The job was effectively done; charge a minimal restart.
            remaining = 1.0
        self._max_job_id += 1
        continuation = Job(
            job_id=self._max_job_id,
            submit_time=self._sim.now,
            nodes=victim.nodes,
            walltime=victim.walltime,
            runtime=remaining,
            mem_per_node=victim.mem_per_node,
            mem_used_per_node=victim.mem_used_per_node,
            user=victim.user,
            group=victim.group,
            tag=victim.tag,
            checkpoint_interval=victim.checkpoint_interval,
            restart_of=victim.restart_of or victim.job_id,
            restart_count=victim.restart_count + 1,
        )
        self.jobs.append(continuation)
        self._jobs_by_id[continuation.job_id] = continuation
        self._admitted += 1
        self._sim.schedule_at(
            self._sim.now,
            self._on_submit,
            priority=EventPriority.SUBMIT,
            payload=continuation,
        )

    def _on_schedule(self, event: Event) -> None:
        self._pass_requested = False
        self._cycles += 1
        if not self._queue:
            # Nothing to schedule: every strategy returns before any
            # observable work on an empty pending list, so the pass is
            # counted (cycles are part of the result) but not run.
            return
        txn: Optional[PassTransaction] = None
        if self._batch_starts:
            txn = PassTransaction()
            self._txn = txn
            # One availability-version bump per pass: the pass is one
            # atomic decision unit, so its starts advance the cluster
            # version once (caches compare stamps for equality only).
            self.cluster.begin_version_batch()
        try:
            ctx = SchedulerContext(
                cluster=self.cluster,
                now=self._sim.now,
                queue=self._queue,
                running=self._running,
                start_job=self._apply_start,
                record_promise=self._record_promise,
                has_promise=self._promises.__contains__,
                queue_all_pending=True,
                transaction=txn,
            )
            self.scheduler.schedule(ctx)
        finally:
            if txn is not None:
                self._txn = None
                self.cluster.end_version_batch()
        if txn is not None and txn.decisions:
            self._commit_pass(txn)

    def _on_sample(self, event: Event) -> None:
        snap = self.cluster.snapshot()
        self._samples.append(
            Sample(
                time=self._sim.now,
                queue_length=len(self._queue),
                running_jobs=len(self._running),
                busy_nodes=snap["busy_nodes"],
                local_mem_granted=snap["local_mem_granted"],
                pool_used=snap["pool_used"],
                pool_capacity=snap["pool_capacity"],
            )
        )
        if self._terminal_count < self._admitted or not self.source_exhausted:
            self._sim.schedule_after(
                self.sample_interval, self._on_sample, priority=EventPriority.SAMPLE
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _finalize_terminal(self, job: Job) -> None:
        """Every terminal transition funnels through here exactly once.

        In rolling mode the job is folded into the sink (with its
        promise, which is consumed) and evicted from the engine — the
        step that bounds peak memory at O(active jobs).
        """
        self._terminal_count += 1
        if self._rolling is None:
            return
        self._rolling.ingest(job, self._promises.pop(job.job_id, None))
        self._jobs_by_id.pop(job.job_id, None)
        _remove_by_identity(self.jobs, job)

    def _request_pass(self) -> None:
        if not self._pass_requested:
            self._pass_requested = True
            self._sim.schedule_now(self._on_schedule, priority=EventPriority.SCHEDULE)

    def _record_promise(self, job_id: int, promised_start: float) -> None:
        if job_id not in self._promises:
            self._promises[job_id] = Promise(
                job_id=job_id,
                decided_at=self._sim.now,
                promised_start=promised_start,
            )

    def _apply_start(self, decision: StartDecision) -> None:
        """Apply a start decision.

        The strategy-visible half — pressure-dependent dilation,
        cluster allocation, job lifecycle, the running list — is
        always applied immediately: later decisions of the same pass
        (and the gates vetting them) must observe it.  Under a pass
        transaction the engine-only half (ledger entry, completion
        event, queue removal) is deferred to :meth:`_commit_pass`;
        without one (``batch_starts=False``, hand-driven contexts) it
        happens inline, one start at a time.
        """
        job = decision.job
        now = self._sim.now
        # Pressure is measured with the job's own grant included: the
        # job competes with itself on the fabric from its first byte.
        pressure = pool_pressure(self.cluster, decision.plan)
        dilation = self.scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )

        self.cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        try:
            self.cluster.allocate_pool(job.job_id, decision.plan)
        except Exception:
            self.cluster.release_nodes(job.job_id, decision.node_ids)
            raise
        if self._txn is None and self._ledger_enabled:
            self._ledger.record_grant(
                now,
                job.job_id,
                local_total=decision.split.local * job.nodes,
                pool_grants=decision.plan,
            )
        lifecycle.start_job(job, now, decision, dilation)
        self._running.append(job)
        if self._txn is not None:
            return  # ledger/calendar/queue effects commit at pass end
        _remove_by_identity(self._queue, job)
        self._schedule_end_event(job, now)

    def _end_event_spec(self, job: Job, now: float) -> tuple:
        """(time, callback, priority, payload) for a started job's
        completion — a kill at the policy bound, or a natural finish."""
        bound = lifecycle.kill_bound(job, self.scheduler.kill_policy)
        dilated_runtime = job.dilated_runtime
        if bound is not None and dilated_runtime > bound + _EPS:
            return (now + bound, self._on_kill, EventPriority.KILL, job)
        return (now + dilated_runtime, self._on_finish, EventPriority.FINISH, job)

    def _schedule_end_event(self, job: Job, now: float) -> None:
        time, callback, priority, payload = self._end_event_spec(job, now)
        self._end_events[job.job_id] = self._sim.schedule_at(
            time, callback, priority=priority, payload=payload
        )

    def _commit_pass(self, txn: PassTransaction) -> None:
        """Batch-apply the deferred effects of one pass's starts.

        Runs after the strategy returns and before any other event can
        fire, so the committed state — ledger entry order, completion
        event times/priorities/sequence numbers, queue content — is
        bit-identical to the sequential path's.  What changes is the
        cost shape: one ledger append batch, one queue rebuild instead
        of one identity scan per start, and one completion-group push
        into the calendar instead of k interleaved heap operations.
        """
        decisions = txn.decisions
        now = self._sim.now
        if self._ledger_enabled:
            self._ledger.record_grant_batch(
                now,
                (
                    (
                        decision.job.job_id,
                        decision.split.local * decision.job.nodes,
                        decision.plan,
                    )
                    for decision in decisions
                ),
            )
        # Started jobs left PENDING at lifecycle.start_job; one filter
        # preserves the order of the survivors exactly as repeated
        # identity removals did.
        self._queue = [
            job for job in self._queue if job.state is JobState.PENDING
        ]
        events = self._sim.schedule_batch(
            [self._end_event_spec(decision.job, now) for decision in decisions]
        )
        end_events = self._end_events
        for decision, end_event in zip(decisions, events):
            end_events[decision.job.job_id] = end_event

    def _release(self, job: Job) -> None:
        version_before = self.cluster.version
        self.cluster.release_nodes(job.job_id, job.assigned_nodes)
        self.cluster.release_pool(job.job_id)
        if self._ledger_enabled:
            self._ledger.record_release(self._sim.now, job.job_id)
        _remove_by_identity(self._running, job)
        # Let the scheduler fold the release into any cached
        # availability profile in place (the version stamp proves
        # nothing else touched the cluster since the cache was taken).
        self.scheduler.notify_release(
            self.cluster, job, self._sim.now, version_before
        )

"""Post-hoc schedule auditor.

Replays a :class:`~repro.engine.results.SimulationResult` and proves
the invariants from DESIGN.md §7.  The auditor is intentionally
independent of the engine's bookkeeping: it recomputes everything from
the jobs and the memory ledger, so an engine bug cannot vouch for
itself.  Tests run it after every integration scenario; benches run it
once per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import AuditError
from ..workload.job import JobState
from .results import SimulationResult

__all__ = ["audit_result"]

_EPS = 1e-6


def audit_result(result: SimulationResult, strict_promises: bool = True) -> None:
    """Raise :class:`AuditError` on the first violated invariant.

    ``strict_promises`` additionally enforces backfill promises
    (realized start ≤ first promised start); valid only for runs whose
    queue policy is FCFS and whose kill policy bounds runtimes — the
    caller knows, we check ``result.scheduler_info``.
    """
    _check_terminal_states(result)
    _check_node_exclusivity(result)
    _check_pool_capacity(result)
    _check_reach_and_split(result)
    _check_metric_identities(result)
    if strict_promises and _promises_apply(result):
        _check_promises(result)
    if _fcfs_order_applies(result):
        _check_fcfs_no_overtaking(result)


def _promises_apply(result: SimulationResult) -> bool:
    """Applicability lives in :mod:`repro.audit.policy` (shared with
    the deep validator); imported lazily to keep package init acyclic."""
    from ..audit.policy import promises_apply

    return promises_apply(
        result.scheduler_info, has_failures=bool(result.failures)
    )


def _fcfs_order_applies(result: SimulationResult) -> bool:
    from ..audit.policy import fcfs_order_applies

    return fcfs_order_applies(result.scheduler_info)


# ----------------------------------------------------------------------
def _check_terminal_states(result: SimulationResult) -> None:
    for job in result.jobs:
        if not job.state.terminal:
            raise AuditError(f"job {job.job_id} ended non-terminal: {job.state}")
        if job.state in (JobState.REJECTED, JobState.CANCELLED):
            if job.start_time is not None or job.assigned_nodes:
                raise AuditError(
                    f"{job.state.value} job {job.job_id} has execution record"
                )
            continue
        if job.start_time is None or job.end_time is None:
            raise AuditError(f"finished job {job.job_id} missing start/end")
        if job.end_time < job.start_time - _EPS:
            raise AuditError(f"job {job.job_id} ends before it starts")
        if job.state is JobState.COMPLETED:
            expected = job.dilated_runtime
            actual = job.end_time - job.start_time
            if abs(actual - expected) > 1e-3:
                raise AuditError(
                    f"job {job.job_id} completed in {actual}, expected "
                    f"dilated runtime {expected}"
                )
        if len(job.assigned_nodes) != job.nodes:
            raise AuditError(
                f"job {job.job_id} held {len(job.assigned_nodes)} nodes, "
                f"requested {job.nodes}"
            )


def _check_node_exclusivity(result: SimulationResult) -> None:
    intervals: Dict[int, List[Tuple[float, float, int]]] = {}
    for job in result.finished:
        for node_id in job.assigned_nodes:
            intervals.setdefault(node_id, []).append(
                (job.start_time, job.end_time, job.job_id)
            )
    for node_id, spans in intervals.items():
        spans.sort()
        for (s1, e1, j1), (s2, e2, j2) in zip(spans, spans[1:]):
            if s2 < e1 - _EPS:
                raise AuditError(
                    f"node {node_id} double-booked: job {j1} [{s1},{e1}) "
                    f"overlaps job {j2} [{s2},{e2})"
                )


def _check_pool_capacity(result: SimulationResult) -> None:
    result.ledger.verify_conservation()
    spec = result.cluster_spec
    capacities: Dict[str, int] = {}
    if spec.pool.global_pool > 0:
        capacities["global"] = spec.pool.global_pool
    if spec.pool.rack_pool > 0:
        for rack_id in range(spec.num_racks):
            capacities[f"rack{rack_id}"] = spec.pool.rack_pool
    seen_pools = {
        pool_id
        for entry in result.ledger
        for pool_id, _ in entry.pool_grants
    }
    unknown = seen_pools - set(capacities)
    if unknown:
        raise AuditError(f"grants against unknown pools {sorted(unknown)}")
    for pool_id, capacity in capacities.items():
        series = result.ledger.pool_occupancy_series(pool_id)
        for time, level in series:
            if level > capacity + _EPS:
                raise AuditError(
                    f"pool {pool_id} over capacity at t={time}: "
                    f"{level} > {capacity}"
                )
            if level < -_EPS:
                raise AuditError(f"pool {pool_id} negative at t={time}: {level}")


def _check_reach_and_split(result: SimulationResult) -> None:
    spec = result.cluster_spec
    per_rack = spec.nodes_per_rack
    for job in result.finished:
        # Split sanity: local + remote = request; local within capacity.
        if job.local_grant_per_node + job.remote_per_node != job.mem_per_node:
            raise AuditError(
                f"job {job.job_id}: split {job.local_grant_per_node}+"
                f"{job.remote_per_node} != request {job.mem_per_node}"
            )
        if job.local_grant_per_node > spec.node.local_mem:
            raise AuditError(
                f"job {job.job_id}: local grant exceeds node capacity"
            )
        total_remote = job.remote_per_node * job.nodes
        granted = sum(job.pool_grants.values())
        if granted != total_remote:
            raise AuditError(
                f"job {job.job_id}: pool grants {granted} != remote demand "
                f"{total_remote}"
            )
        racks_of_job = {node_id // per_rack for node_id in job.assigned_nodes}
        nodes_per_rack_of_job: Dict[int, int] = {}
        for node_id in job.assigned_nodes:
            rack = node_id // per_rack
            nodes_per_rack_of_job[rack] = nodes_per_rack_of_job.get(rack, 0) + 1
        for pool_id, amount in job.pool_grants.items():
            if pool_id == "global":
                continue
            if not pool_id.startswith("rack"):
                raise AuditError(f"job {job.job_id}: unknown pool {pool_id}")
            rack_id = int(pool_id.removeprefix("rack"))
            if rack_id not in racks_of_job:
                raise AuditError(
                    f"job {job.job_id} drew {amount} MiB from {pool_id} but "
                    f"has no node in rack {rack_id}"
                )
            limit = nodes_per_rack_of_job[rack_id] * job.remote_per_node
            if amount > limit:
                raise AuditError(
                    f"job {job.job_id} drew {amount} MiB from {pool_id}, more "
                    f"than its {nodes_per_rack_of_job[rack_id]} nodes in that "
                    f"rack can consume ({limit})"
                )


def _check_metric_identities(result: SimulationResult) -> None:
    for job in result.finished:
        if job.start_time < job.submit_time - _EPS:
            raise AuditError(f"job {job.job_id} started before submission")
        if job.wait_time < -_EPS:
            raise AuditError(f"job {job.job_id} negative wait")
        if job.bounded_slowdown() < 1.0 - _EPS:
            raise AuditError(f"job {job.job_id} bounded slowdown below 1")


def _check_promises(result: SimulationResult) -> None:
    for job_id, promise in result.promises.items():
        job = result.job(job_id)
        if job.state is JobState.REJECTED or job.start_time is None:
            continue
        if job.start_time > promise.promised_start + 1e-3:
            raise AuditError(
                f"backfill promise violated: job {job_id} promised start "
                f"{promise.promised_start} (decided t={promise.decided_at}) "
                f"but started {job.start_time}"
            )


def _check_fcfs_no_overtaking(result: SimulationResult) -> None:
    ran = sorted(
        result.finished, key=lambda job: (job.submit_time, job.job_id)
    )
    for earlier, later in zip(ran, ran[1:]):
        if later.start_time < earlier.start_time - _EPS:
            raise AuditError(
                f"FCFS/no-backfill overtaking: job {later.job_id} "
                f"(submitted {later.submit_time}) started {later.start_time}, "
                f"before job {earlier.job_id} (submitted {earlier.submit_time}, "
                f"started {earlier.start_time})"
            )

"""Job lifecycle transitions.

Centralizing the state machine keeps transition legality in one place:
the engine calls these helpers instead of poking job fields, and every
illegal transition raises immediately rather than corrupting a run.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..sched.base import KillPolicy, StartDecision
from ..workload.job import Job, JobState

__all__ = [
    "kill_bound",
    "start_job",
    "complete_job",
    "kill_job",
    "reject_job",
    "cancel_job",
]


def kill_bound(job: Job, policy: KillPolicy) -> Optional[float]:
    """Maximum runtime the system grants the job, or ``None``.

    Uses the job's *realized* dilation, so it is only meaningful after
    the dilation has been fixed at start.
    """
    if policy is KillPolicy.STRICT:
        return job.walltime
    if policy is KillPolicy.DILATION_AWARE:
        return job.dilated_walltime
    return None


def start_job(job: Job, now: float, decision: StartDecision, dilation: float) -> None:
    """PENDING → RUNNING with the decision's grants recorded."""
    if job.state is not JobState.PENDING:
        raise SimulationError(
            f"job {job.job_id} cannot start from state {job.state.value}"
        )
    if dilation < 0:
        raise SimulationError(f"job {job.job_id}: negative dilation {dilation}")
    job.state = JobState.RUNNING
    job.start_time = now
    job.assigned_nodes = list(decision.node_ids)
    job.local_grant_per_node = decision.split.local
    job.remote_per_node = decision.split.remote
    job.pool_grants = dict(decision.plan)
    job.dilation = dilation


def complete_job(job: Job, now: float) -> None:
    """RUNNING → COMPLETED."""
    if job.state is not JobState.RUNNING:
        raise SimulationError(
            f"job {job.job_id} cannot complete from state {job.state.value}"
        )
    job.state = JobState.COMPLETED
    job.end_time = now


def kill_job(job: Job, now: float, reason: str = "walltime") -> None:
    """RUNNING → KILLED (walltime bound exceeded, or node failure)."""
    if job.state is not JobState.RUNNING:
        raise SimulationError(
            f"job {job.job_id} cannot be killed from state {job.state.value}"
        )
    job.state = JobState.KILLED
    job.end_time = now
    job.kill_reason = reason


def reject_job(job: Job, now: float) -> None:
    """PENDING → REJECTED (cannot ever fit the machine)."""
    if job.state is not JobState.PENDING:
        raise SimulationError(
            f"job {job.job_id} cannot be rejected from state {job.state.value}"
        )
    job.state = JobState.REJECTED
    job.end_time = now


def cancel_job(job: Job, now: float) -> None:
    """PENDING → CANCELLED (withdrawn by its owner while queued).

    Only queued jobs cancel this way; cancelling a *running* job is a
    kill (``kill_job`` with reason ``"cancelled"``) because resources
    were held and the execution record must survive for auditing.
    """
    if job.state is not JobState.PENDING:
        raise SimulationError(
            f"job {job.job_id} cannot be cancelled from state {job.state.value}"
        )
    job.state = JobState.CANCELLED
    job.end_time = now

"""Engine checkpoint/restore: serialize a live online simulation.

A checkpoint captures the *actual* engine state — jobs with their
execution records, the queue and running sets, the event calendar with
its exact ``(time, priority, seq)`` keys, the grant ledger, promises,
and the clock — as one JSON-able document.  Restoring builds a fresh
engine around a fresh cluster and scheduler and re-enters that state
verbatim, so the restored run fires the identical event sequence the
original would have.

What is deliberately *not* serialized: scheduler caches (availability
profiles, reservation plans).  They are rebuilt lazily on the first
pass after restore; the equivalence suites prove cached and
from-scratch passes decide identically, so a cold cache is
decision-transparent.  The one scheduler component that is real state
rather than cache — fair-share usage accounting — is carried through
the queue-policy checkpoint hooks
(:meth:`repro.sched.queue_policies.QueuePolicy.state_dict`).

The snapshot is the service's crash-recovery anchor (restore, then
replay the write-ahead journal suffix) and doubles as the portable
engine-state format for sharded trace replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..cluster.node import NodeState
from ..errors import SimulationError
from ..memdis.ledger import LedgerEntry, MemoryLedger
from ..workload.job import Job, JobState
from .failures import FailureEvent
from .results import Promise

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulation import SchedulerSimulation

__all__ = ["SNAPSHOT_SCHEMA", "checkpoint_engine", "restore_engine"]

SNAPSHOT_SCHEMA = 1

_JOB_FIELDS = (
    "job_id",
    "submit_time",
    "nodes",
    "walltime",
    "runtime",
    "mem_per_node",
    "mem_used_per_node",
    "user",
    "group",
    "tag",
    "checkpoint_interval",
    "restart_of",
    "restart_count",
    "start_time",
    "end_time",
    "assigned_nodes",
    "local_grant_per_node",
    "remote_per_node",
    "dilation",
    "kill_reason",
)


def _job_to_dict(job: Job) -> Dict:
    doc = {name: getattr(job, name) for name in _JOB_FIELDS}
    doc["assigned_nodes"] = list(job.assigned_nodes)
    doc["pool_grants"] = dict(job.pool_grants)
    doc["state"] = job.state.value
    return doc


def _job_from_dict(doc: Dict) -> Job:
    fields = {name: doc[name] for name in _JOB_FIELDS}
    return Job(
        state=JobState(doc["state"]),
        pool_grants=dict(doc["pool_grants"]),
        **fields,
    )


def checkpoint_engine(sim: "SchedulerSimulation") -> Dict:
    """Serialize an online engine to a JSON-able snapshot document.

    Legal between events only — never mid-pass (the service's engine
    thread checkpoints between inbox drains, which satisfies this by
    construction).
    """
    if not sim.online:
        raise SimulationError("checkpoint requires an online engine")
    if sim._txn is not None:  # pragma: no cover - misuse guard
        raise SimulationError("cannot checkpoint mid-pass")
    if not sim.source_exhausted:
        # The snapshot cannot carry an un-drained iterator; sharded
        # replay checkpoints only after a segment's stream has fully
        # entered the calendar (boundaries sit past the segment's last
        # submission, so this holds by construction).
        raise SimulationError(
            "cannot checkpoint while a job source is still streaming"
        )

    events: List[Dict] = []
    for event in sim._sim.pending():
        callback = event.callback
        if callback == sim._on_submit:
            kind, ref = "submit", event.payload.job_id
        elif callback == sim._on_finish:
            kind, ref = "finish", event.payload.job_id
        elif callback == sim._on_kill:
            kind, ref = "kill", event.payload.job_id
        elif callback == sim._on_node_failure:
            failure: FailureEvent = event.payload
            kind = "failure"
            ref = {
                "time": failure.time,
                "node_id": failure.node_id,
                "repair_time": failure.repair_time,
            }
        elif callback == sim._on_node_repair:
            kind, ref = "repair", event.payload
        elif callback == sim._on_schedule:
            kind, ref = "schedule", None
        else:  # pragma: no cover - future-proofing guard
            raise SimulationError(
                f"cannot checkpoint unknown calendar event {callback!r}"
            )
        events.append(
            {
                "time": event.time,
                "priority": event.priority,
                "seq": event.seq,
                "kind": kind,
                "ref": ref,
            }
        )

    down_nodes = [
        node.node_id
        for node in sim.cluster.nodes
        if node.state is NodeState.DOWN
    ]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "clock": sim._sim.clock_state(),
        "jobs": [_job_to_dict(job) for job in sim.jobs],
        "queue": [job.job_id for job in sim._queue],
        "running": [job.job_id for job in sim._running],
        "promises": [
            {
                "job_id": promise.job_id,
                "decided_at": promise.decided_at,
                "promised_start": promise.promised_start,
            }
            for promise in sim._promises.values()
        ],
        "ledger": [
            {
                "time": entry.time,
                "job_id": entry.job_id,
                "kind": entry.kind,
                "local_total": entry.local_total,
                "pool_grants": [list(pair) for pair in entry.pool_grants],
            }
            for entry in sim._ledger.entries
        ],
        "failures": [
            {
                "time": failure.time,
                "node_id": failure.node_id,
                "repair_time": failure.repair_time,
            }
            for failure in sim.failures
        ],
        "events": events,
        "down_nodes": down_nodes,
        "max_job_id": sim._max_job_id,
        "cycles": sim._cycles,
        "terminal_count": sim._terminal_count,
        # Rolling-mode engines evict terminal jobs, so the job list no
        # longer implies these; carried explicitly (absent in pre-trace
        # snapshots, where the job list is authoritative).
        "admitted": sim._admitted,
        "first_submit": sim._first_submit,
        "batch_starts": sim._batch_starts,
        "max_events": sim.max_events,
        "queue_policy": sim.scheduler.queue_policy.state_dict(),
    }


def restore_engine(
    cluster,
    scheduler,
    snapshot: Dict,
    *,
    rolling=None,
    job_source=None,
) -> "SchedulerSimulation":
    """Rebuild a live online engine from a snapshot document.

    ``cluster`` and ``scheduler`` must be *fresh* instances built from
    the same experiment configuration that produced the snapshot (the
    service layer fingerprints the config to enforce this).  Running
    jobs' node and pool grants are re-applied to the cluster, down
    nodes taken down, the ledger and calendar re-entered with their
    exact original keys, and stateful queue-policy accounting
    reloaded.  Scheduler caches start cold, which is
    decision-transparent.

    ``rolling`` re-arms rolling aggregation (sharded replay gives each
    shard its own sink).  ``job_source`` attaches a streaming source
    *after* the calendar is re-entered and the clock restored, so the
    chained submit events take sequence numbers strictly after every
    restored event — the same keys an uninterrupted run would assign.
    """
    from .simulation import SchedulerSimulation  # deferred: import cycle

    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise SimulationError(
            f"snapshot schema {snapshot.get('schema')!r} is not "
            f"{SNAPSHOT_SCHEMA} (incompatible checkpoint)"
        )

    sim = SchedulerSimulation(
        cluster,
        scheduler,
        [],
        max_events=snapshot.get("max_events"),
        batch_starts=snapshot.get("batch_starts", True),
        online=True,
        start_time=float(snapshot["clock"]["now"]),
        rolling=rolling,
    )

    jobs = [_job_from_dict(doc) for doc in snapshot["jobs"]]
    by_id = {job.job_id: job for job in jobs}
    if len(by_id) != len(jobs):
        raise SimulationError("snapshot contains duplicate job ids")
    sim.jobs = jobs
    sim._jobs_by_id = by_id
    sim._queue = [by_id[job_id] for job_id in snapshot["queue"]]
    sim._running = [by_id[job_id] for job_id in snapshot["running"]]
    sim._max_job_id = int(snapshot["max_job_id"])
    sim._cycles = int(snapshot["cycles"])
    sim._terminal_count = int(snapshot["terminal_count"])
    sim._admitted = int(snapshot.get("admitted", len(jobs)))
    first_submit = snapshot.get("first_submit")
    if first_submit is None and jobs:
        first_submit = min(job.submit_time for job in jobs)
    sim._first_submit = first_submit
    sim.failures = [
        FailureEvent(
            time=doc["time"],
            node_id=doc["node_id"],
            repair_time=doc["repair_time"],
        )
        for doc in snapshot["failures"]
    ]
    sim._promises = {
        doc["job_id"]: Promise(
            job_id=doc["job_id"],
            decided_at=doc["decided_at"],
            promised_start=doc["promised_start"],
        )
        for doc in snapshot["promises"]
    }
    sim._ledger = MemoryLedger.from_entries(
        LedgerEntry(
            time=doc["time"],
            job_id=doc["job_id"],
            kind=doc["kind"],
            local_total=doc["local_total"],
            pool_grants=tuple(
                (pool_id, amount) for pool_id, amount in doc["pool_grants"]
            ),
        )
        for doc in snapshot["ledger"]
    )

    # Re-apply live grants before taking nodes down: a down node is
    # never busy, so the two operations cannot collide.
    for job in sim._running:
        cluster.allocate_nodes(
            job.job_id, job.assigned_nodes, job.local_grant_per_node
        )
        cluster.allocate_pool(job.job_id, job.pool_grants)
    for node_id in snapshot["down_nodes"]:
        cluster.take_down(node_id)

    # Calendar: re-enter every live event under its original key so
    # the restored run loop fires the identical total order.
    handlers = {
        "submit": sim._on_submit,
        "finish": sim._on_finish,
        "kill": sim._on_kill,
        "failure": sim._on_node_failure,
        "repair": sim._on_node_repair,
        "schedule": sim._on_schedule,
    }
    sim._pass_requested = False
    for doc in snapshot["events"]:
        kind = doc["kind"]
        ref = doc["ref"]
        if kind in ("submit", "finish", "kill"):
            payload = by_id[ref]
        elif kind == "failure":
            payload = FailureEvent(
                time=ref["time"],
                node_id=ref["node_id"],
                repair_time=ref["repair_time"],
            )
        elif kind == "repair":
            payload = ref
        elif kind == "schedule":
            payload = None
            sim._pass_requested = True
        else:
            raise SimulationError(f"unknown snapshot event kind {kind!r}")
        event = sim._sim.schedule_raw(
            doc["time"], doc["priority"], doc["seq"], handlers[kind], payload
        )
        if kind == "submit":
            sim._submit_events[payload.job_id] = event
        elif kind in ("finish", "kill"):
            sim._end_events[payload.job_id] = event
    sim._sim.restore_clock(snapshot["clock"])

    policy_state = snapshot.get("queue_policy")
    if policy_state is not None:
        scheduler.queue_policy.load_state(policy_state, by_id.get)
    if job_source is not None:
        sim.attach_source(job_source)
    return sim

"""Simulation driver: glues kernel, cluster, workload, and scheduler.

:class:`SchedulerSimulation` owns the event loop; :mod:`~repro.engine.
lifecycle` the job state transitions; :mod:`~repro.engine.audit` the
post-hoc invariant checker; :mod:`~repro.engine.results` the run
record consumed by metrics and analysis.
"""

from .lifecycle import kill_bound, start_job, complete_job, kill_job, reject_job
from .results import SimulationResult, Promise
from .simulation import SchedulerSimulation
from .audit import audit_result
from .failures import FailureEvent, exponential_failure_trace

__all__ = [
    "SchedulerSimulation",
    "SimulationResult",
    "Promise",
    "audit_result",
    "FailureEvent",
    "exponential_failure_trace",
    "kill_bound",
    "start_job",
    "complete_job",
    "kill_job",
    "reject_job",
]

"""Node failure injection.

Larger allocations hit more hardware, so failures interact with
scheduling (big jobs die more; down nodes shrink the machine).  The
engine accepts a *failure trace* — a list of :class:`FailureEvent`
(fail time, node, repair duration) — and applies it during the run:

* at ``time``, the node fails.  If a job owns it, that job is killed
  immediately (``kill_reason="node_failure"``) and all its resources
  are released; the node goes DOWN;
* after ``repair_time``, the node returns to service and a scheduling
  pass runs.

Traces come from :func:`exponential_failure_trace` (per-node
exponential time-to-failure — the standard memoryless model — with
lognormal-ish repair) or from any hand-built list, which is what the
tests use for exact scenarios.

Scheduling interplay: DOWN nodes are invisible to placement (they are
not free) and to availability profiles (not in the base free set);
pending repairs are *not* modeled in reservations — the scheduler is
pessimistic about down capacity, as real schedulers are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams

__all__ = ["FailureEvent", "exponential_failure_trace"]


@dataclass(frozen=True)
class FailureEvent:
    """One node failure: when, which node, how long the repair takes."""

    time: float
    node_id: int
    repair_time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("failure time must be non-negative")
        if self.node_id < 0:
            raise ConfigurationError("node id must be non-negative")
        if self.repair_time <= 0:
            raise ConfigurationError("repair time must be positive")


def exponential_failure_trace(
    num_nodes: int,
    horizon: float,
    mtbf: float,
    mean_repair: float,
    streams: RandomStreams,
) -> List[FailureEvent]:
    """Per-node exponential failures over ``[0, horizon]``.

    Each node fails independently with mean time between failures
    ``mtbf``; repairs are exponential with mean ``mean_repair``.  A
    node cannot fail while down — the next failure clock starts after
    the repair completes.  Deterministic under the stream seed.
    """
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    if mtbf <= 0 or mean_repair <= 0:
        raise ConfigurationError("mtbf and mean_repair must be positive")
    rng = streams.get("failures")
    events: List[FailureEvent] = []
    for node_id in range(num_nodes):
        clock = 0.0
        while True:
            clock += float(rng.exponential(mtbf))
            if clock >= horizon:
                break
            repair = max(60.0, float(rng.exponential(mean_repair)))
            events.append(FailureEvent(clock, node_id, repair))
            clock += repair
    events.sort(key=lambda e: (e.time, e.node_id))
    return events

"""Per-job schedule explanations: *why this start time*.

:func:`explain_schedule` replays a finished
:class:`~repro.engine.results.SimulationResult` chronologically on a
fresh :class:`~repro.cluster.cluster.Cluster` — ends before starts at
each instant, failure windows honored, exactly the engine's event
order — and, at every instant a queried job spent waiting, asks the
*same* feasibility question the scheduler's ``try_start_now`` asks:
are there enough free nodes, does placement accept them, can the
allocator cover the remote demand?  The answers classify each wait:

* the job was **physically blocked** until some instant — the binding
  constraint is ``node-availability`` or ``pool-capacity`` (the same
  taxonomy the service ``advise`` endpoint reports, shared via
  :mod:`repro.sched.base`), and the **bounding breakpoint** is the
  release instant that first made it feasible;
* the job was startable the whole time — the hold was **policy**:
  the start gate when one is configured, otherwise EASY's shadow
  window, conservative's reservation order, or strict queue order
  (:func:`repro.sched.base.policy_hold_kind`).

The ``at_submit`` field is the advise-compatible classification at the
submission instant; the differential suite asserts it agrees with a
live ``advise`` call and with the brute-force oracle.  Explanations
are a read-only reconstruction: run :func:`repro.audit.deep_audit`
first — an invalid schedule cannot be replayed, and this module raises
:class:`~repro.errors.AuditError` when it hits one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..errors import AllocationError, AuditError
from ..memdis.allocator import (
    GlobalPoolAllocator,
    HybridAllocator,
    PoolAllocator,
    RackLocalAllocator,
)
from ..sched.base import (
    BOUND_GATE,
    BOUND_MACHINE,
    BOUND_NODES,
    BOUND_NONE,
    BOUND_POOL,
    policy_hold_kind,
)
from ..sched.placement import PlacementPolicy, placement_for
from ..workload.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..engine.results import SimulationResult

__all__ = ["JobExplanation", "explain_schedule", "explain_job"]

_EPS = 1e-6

# Replay phase order at one instant: releases and failure edges become
# visible before the pass applies its starts (FINISH < KILL < SCHEDULE
# in the engine's event calendar); probes observe the post-pass state.
_PHASE_END, _PHASE_DOWN, _PHASE_UP, _PHASE_START, _PHASE_PROBE = range(5)


@dataclass(frozen=True)
class JobExplanation:
    """Why one job started when it did (or never did)."""

    job_id: int
    state: str
    submit_time: float
    start_time: Optional[float]
    wait: Optional[float]
    #: advise-compatible classification at the submission instant.
    at_submit: Optional[str]
    #: the binding constraint over the whole wait: a physical bound
    #: (node-availability / pool-capacity), a policy hold
    #: (gate / shadow-window / reservation-order / queue-order),
    #: "none", "machine-capacity", or "cancelled".
    binding: str
    #: last instant the job was physically infeasible (None if never).
    blocked_until: Optional[float]
    #: first instant the binding axis became feasible again — the
    #: release that unblocked the job (the start itself when the job
    #: started the moment it fit).
    bounding_breakpoint: Optional[float]
    detail: str
    promised_start: Optional[float] = None
    promise_decided_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "job_id": self.job_id,
            "state": self.state,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "wait": self.wait,
            "at_submit": self.at_submit,
            "binding": self.binding,
            "blocked_until": self.blocked_until,
            "bounding_breakpoint": self.bounding_breakpoint,
            "detail": self.detail,
        }
        if self.promised_start is not None:
            doc["promised_start"] = self.promised_start
            doc["promise_decided_at"] = self.promise_decided_at
        return doc

    def describe(self) -> str:
        """One human-readable paragraph for the CLI."""
        head = f"job {self.job_id} [{self.state}]"
        if self.start_time is None:
            return f"{head}: {self.detail}"
        lines = [
            f"{head}: submitted t={self.submit_time:g}, started "
            f"t={self.start_time:g} (waited {self.wait:g}s)",
            f"  binding constraint: {self.binding}",
        ]
        if self.blocked_until is not None:
            lines.append(
                f"  physically infeasible until t={self.blocked_until:g}; "
                f"unblocked by the release(s) at "
                f"t={self.bounding_breakpoint:g}"
            )
        if self.promised_start is not None:
            lines.append(
                f"  promise: start by t={self.promised_start:g} "
                f"(decided t={self.promise_decided_at:g})"
            )
        lines.append(f"  {self.detail}")
        return "\n".join(lines)


def _allocator_for_spec(result: "SimulationResult") -> PoolAllocator:
    """The natural allocator for the machine — the same resolution
    rule as :meth:`repro.sched.base.Scheduler.resolve_allocator`."""
    pool = result.cluster_spec.pool
    if pool.global_pool > 0 and pool.rack_pool > 0:
        return HybridAllocator()
    if pool.rack_pool > 0:
        return RackLocalAllocator()
    return GlobalPoolAllocator()


def _feasible(
    cluster: Cluster,
    placement: PlacementPolicy,
    allocator: PoolAllocator,
    job: Job,
) -> Tuple[bool, str]:
    """Mirror of ``Scheduler.try_start_now`` minus the gate: could the
    job physically start against the cluster's current state?"""
    free = cluster.free_ids
    if job.nodes > len(free):
        return False, BOUND_NODES
    node_ids = placement.select(
        cluster, free, job.nodes, job.remote_per_node, None
    )
    if node_ids is None:
        return False, BOUND_POOL
    if job.remote_per_node > 0:
        if allocator.plan(cluster, node_ids, job.remote_per_node) is None:
            return False, BOUND_POOL
    return True, BOUND_NONE


def explain_schedule(
    result: "SimulationResult",
    job_ids: Optional[Iterable[int]] = None,
) -> Dict[int, JobExplanation]:
    """Explain every queried job's start time; default: all jobs.

    Cost is O(events x queried-waiting-jobs) feasibility probes — cheap
    for single jobs and small scenarios, deliberate for a full
    trace-scale result.
    """
    jobs = {job.job_id: job for job in result.jobs}
    if job_ids is None:
        queried = set(jobs)
    else:
        queried = set()
        for job_id in job_ids:
            if job_id not in jobs:
                raise KeyError(f"no job {job_id} in this result")
            queried.add(job_id)

    placement = placement_for(
        result.scheduler_info.get("placement", "first_fit")
    )
    allocator = _allocator_for_spec(result)
    cluster = Cluster(result.cluster_spec)

    events: List[Tuple[float, int, Any]] = []
    for job in result.finished:
        if job.start_time is None or job.end_time is None:
            continue
        if job.end_time <= job.start_time + _EPS:
            continue  # degenerate zero-length interval: nothing to replay
        events.append((job.start_time, _PHASE_START, job))
        events.append((job.end_time, _PHASE_END, job))
    for failure in result.failures:
        events.append((failure.time, _PHASE_DOWN, failure.node_id))
        events.append(
            (failure.time + failure.repair_time, _PHASE_UP, failure.node_id)
        )
    # Pseudo-events pin each queried waiter's submit instant onto the
    # probe grid (it need not coincide with any release).
    waiting: Dict[int, Job] = {}
    for job_id in queried:
        job = jobs[job_id]
        if job.start_time is not None and job.start_time > job.submit_time + _EPS:
            events.append((job.submit_time, _PHASE_PROBE, job))
            waiting[job_id] = job
    events.sort(key=lambda event: (event[0], event[1]))

    probes: Dict[int, List[Tuple[float, bool, str]]] = {
        job_id: [] for job_id in waiting
    }
    index = 0
    try:
        while index < len(events):
            time = events[index][0]
            while index < len(events) and events[index][0] == time:
                _, phase, payload = events[index]
                if phase == _PHASE_END:
                    cluster.release_nodes(payload.job_id, payload.assigned_nodes)
                    cluster.release_pool(payload.job_id)
                elif phase == _PHASE_DOWN:
                    cluster.take_down(payload)
                elif phase == _PHASE_UP:
                    cluster.bring_up(payload)
                elif phase == _PHASE_START:
                    cluster.allocate_nodes(
                        payload.job_id,
                        payload.assigned_nodes,
                        payload.local_grant_per_node,
                    )
                    grants = {
                        pool_id: amount
                        for pool_id, amount in payload.pool_grants.items()
                        if amount > 0
                    }
                    if grants:
                        cluster.allocate_pool(payload.job_id, grants)
                    waiting.pop(payload.job_id, None)
                index += 1
            for job_id, job in waiting.items():
                if job.submit_time > time + _EPS or time >= job.start_time - _EPS:
                    continue
                ok, axis = _feasible(cluster, placement, allocator, job)
                probes[job_id].append((time, ok, axis))
    except AllocationError as exc:
        raise AuditError(
            "explain_schedule could not replay the schedule (run deep_audit "
            f"— the record is internally inconsistent): {exc}"
        ) from exc

    return {
        job_id: _classify(result, jobs[job_id], probes.get(job_id, []))
        for job_id in sorted(queried)
    }


def explain_job(result: "SimulationResult", job_id: int) -> JobExplanation:
    """Explain one job (convenience wrapper around the full replay)."""
    return explain_schedule(result, [job_id])[job_id]


def _classify(
    result: "SimulationResult",
    job: Job,
    probes: List[Tuple[float, bool, str]],
) -> JobExplanation:
    info = result.scheduler_info
    promise = result.promises.get(job.job_id)
    promised = promise.promised_start if promise else None
    decided = promise.decided_at if promise else None
    base = dict(
        job_id=job.job_id,
        state=job.state.value,
        submit_time=job.submit_time,
        start_time=job.start_time,
        wait=(
            job.start_time - job.submit_time
            if job.start_time is not None
            else None
        ),
        promised_start=promised,
        promise_decided_at=decided,
    )
    if job.state is JobState.REJECTED:
        return JobExplanation(
            **base,
            at_submit=BOUND_MACHINE,
            binding=BOUND_MACHINE,
            blocked_until=None,
            bounding_breakpoint=None,
            detail="rejected: the request exceeds empty-machine capacity "
            "(nodes, or remote demand beyond total pool reach)",
        )
    if job.state is JobState.CANCELLED:
        return JobExplanation(
            **base,
            at_submit=None,
            binding="cancelled",
            blocked_until=None,
            bounding_breakpoint=None,
            detail="cancelled by its owner before it started",
        )
    if job.start_time is None:  # defensive: lifecycle audit territory
        return JobExplanation(
            **base,
            at_submit=None,
            binding="unknown",
            blocked_until=None,
            bounding_breakpoint=None,
            detail="no execution record to explain",
        )
    if job.start_time <= job.submit_time + _EPS or not probes:
        return JobExplanation(
            **base,
            at_submit=BOUND_NONE,
            binding=BOUND_NONE,
            blocked_until=None,
            bounding_breakpoint=None,
            detail="started the instant it was submitted: free nodes and "
            "pool capacity covered it immediately",
        )

    first = probes[0]
    at_submit = BOUND_NONE if first[1] else first[2]
    blocked = [probe for probe in probes if not probe[1]]
    if blocked:
        last_blocked = blocked[-1]
        breakpoint_ = next(
            (t for t, ok, _ in probes if t > last_blocked[0] and ok),
            job.start_time,
        )
        axis = last_blocked[2]
        what = (
            "enough free nodes"
            if axis == BOUND_NODES
            else "remote pool capacity"
        )
        return JobExplanation(
            **base,
            at_submit=at_submit,
            binding=axis,
            blocked_until=last_blocked[0],
            bounding_breakpoint=breakpoint_,
            detail=f"waited for {what}: infeasible from "
            f"t={last_blocked[0]:g} until the release(s) at "
            f"t={breakpoint_:g} made room",
        )
    if info.get("gate", "always") != "always":
        return JobExplanation(
            **base,
            at_submit=BOUND_GATE if at_submit == BOUND_NONE else at_submit,
            binding=BOUND_GATE,
            blocked_until=None,
            bounding_breakpoint=None,
            detail=f"physically startable for its whole wait; the "
            f"{info.get('gate')!r} start gate (or queue competition) "
            "held it back",
        )
    hold = policy_hold_kind(info.get("backfill", ""))
    promise_note = (
        f" (its reservation promised t={promised:g})"
        if promised is not None
        else ""
    )
    return JobExplanation(
        **base,
        at_submit=at_submit,
        binding=hold,
        blocked_until=None,
        bounding_breakpoint=None,
        detail=f"physically startable for its whole wait; held by the "
        f"{info.get('backfill')} policy's {hold}{promise_note} — starting "
        "earlier would have delayed a higher-priority reservation",
    )

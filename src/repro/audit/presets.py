"""Curated adversarial scenario presets for the deep auditor.

Each preset is a deterministic scenario builder engineered to stress
one failure surface of the scheduler stack — drain storms under node
failures, pool-exhaustion cliffs, same-instant submission collisions,
walltime overruns with killing disabled, cancellations racing
backfill, and a KTH trace slice.  Presets exist to give the deep
validator (:mod:`repro.audit.validator`) adversarial ground to stand
on: every preset must audit clean under every supported backfill
policy, and the CI ``audit-presets`` job re-proves that on every
change.

The registry is data-driven: :data:`PRESETS` maps names to builders,
:func:`run_preset` merges default / quick / caller parameters and
executes the scenario (offline, or through the online engine when the
scenario needs mid-run cancellations), and :func:`run_audit_suite`
sweeps presets x backfills into the machine-readable
``AUDIT_REPORT.json`` document consumed by CI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cluster import Cluster, ClusterSpec
from ..engine import SchedulerSimulation
from ..engine.failures import FailureEvent, exponential_failure_trace
from ..engine.results import SimulationResult
from ..sched.base import build_scheduler
from ..sim.rng import RandomStreams
from ..units import GiB
from ..workload.job import Job
from ..workload.reference import generate_reference_jobs
from .validator import deep_audit

__all__ = [
    "PRESET_NAMES",
    "PRESETS",
    "Preset",
    "PresetRun",
    "preset_params",
    "run_audit_suite",
    "run_preset",
]


@dataclass(frozen=True)
class PresetRun:
    """A fully materialized scenario, ready to execute.

    ``cancels`` forces the online engine (mid-run ``cancel_job``
    calls have no offline equivalent); everything else runs offline.
    """

    cluster: ClusterSpec
    jobs: Sequence[Job]
    scheduler: Mapping[str, object] = field(default_factory=dict)
    failures: Sequence[FailureEvent] = ()
    cancels: Sequence[Tuple[float, int]] = ()  # (time, job_id), any order


@dataclass(frozen=True)
class Preset:
    """Registry entry: builder plus parameter defaults.

    ``quick`` overlays ``defaults`` when the caller asks for the
    CI-sized variant; explicit caller params overlay both.
    """

    name: str
    summary: str
    build: Callable[[Mapping[str, object]], PresetRun]
    defaults: Mapping[str, object]
    quick: Mapping[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _thin(nodes: int, pool_fraction: float = 0.5, reach: str = "global") -> ClusterSpec:
    return ClusterSpec.thin_node(
        num_nodes=nodes,
        local_mem="128GiB",
        fat_local_mem="512GiB",
        pool_fraction=pool_fraction,
        reach=reach,
    )


def _build_drain_storm(p: Mapping[str, object]) -> PresetRun:
    """Node failures mid-run: kills, repairs, and re-scheduling churn.

    The failure trace drains nodes while the queue is loaded, so the
    auditor's downtime / oversubscription sweeps see nodes leaving and
    rejoining under pressure.
    """
    nodes = int(p["nodes"])
    jobs = generate_reference_jobs(
        "W-MIX", int(p["seed"]), num_jobs=int(p["num_jobs"]), cluster_nodes=nodes
    )
    horizon = max(job.submit_time for job in jobs) * 1.5 + 50_000.0
    failures = exponential_failure_trace(
        num_nodes=nodes,
        horizon=horizon,
        mtbf=float(p["mtbf"]),
        mean_repair=float(p["mean_repair"]),
        streams=RandomStreams(int(p["seed"]) + 1),
    )
    return PresetRun(cluster=_thin(nodes), jobs=jobs, failures=failures)


def _build_pool_cliff(p: Mapping[str, object]) -> PresetRun:
    """Remote-heavy jobs sized against a deliberately small pool.

    Demands are fractions of the exact pool capacity, so the schedule
    repeatedly walks up to (and must never cross) the capacity cliff
    while local-only filler keeps nodes busy around it.
    """
    nodes = int(p["nodes"])
    spec = _thin(nodes, pool_fraction=float(p["pool_fraction"]))
    capacity = spec.pool.global_pool
    local = spec.node.local_mem
    rng = random.Random(int(p["seed"]))
    jobs: List[Job] = []
    t = 0.0
    for job_id in range(int(p["num_jobs"])):
        t += rng.expovariate(1.0 / 300.0)
        runtime = rng.uniform(600.0, 7_200.0)
        walltime = runtime * rng.uniform(1.1, 1.8)
        if job_id % 3 != 2:
            # Cliff walker: total remote demand is capacity/k, so a
            # handful of concurrent walkers exhausts the pool exactly.
            width = rng.choice((2, 4))
            share = rng.choice((1, 2, 3, 4))
            remote_per_node = (capacity // share) // width
            mem = local + min(remote_per_node, 384 * GiB)
        else:
            width = rng.randint(1, 4)
            mem = rng.randint(8 * GiB, local)
        jobs.append(
            Job(
                job_id=job_id,
                submit_time=round(t, 3),
                nodes=width,
                walltime=walltime,
                runtime=runtime,
                mem_per_node=mem,
                user=f"user{job_id % 5}",
                tag="cliff" if job_id % 3 != 2 else "filler",
            )
        )
    return PresetRun(cluster=spec, jobs=jobs)


def _build_collision_grid(p: Mapping[str, object]) -> PresetRun:
    """Batches of jobs submitted at *identical* instants.

    Same-instant submission is where event ordering, same-pass
    transactional starts, and ledger same-instant netting all have to
    agree; the grid quantizes every submit onto a coarse lattice to
    maximize those coincidences.
    """
    nodes = int(p["nodes"])
    batch = int(p["batch"])
    interval = float(p["interval"])
    rng = random.Random(int(p["seed"]))
    jobs: List[Job] = []
    for job_id in range(int(p["num_jobs"])):
        runtime = rng.choice((900.0, 1800.0, 3600.0))
        jobs.append(
            Job(
                job_id=job_id,
                submit_time=(job_id // batch) * interval,
                nodes=rng.randint(1, max(1, nodes // 2)),
                walltime=runtime * 1.25,
                runtime=runtime,
                mem_per_node=rng.choice(
                    (32 * GiB, 96 * GiB, 192 * GiB, 384 * GiB)
                ),
                user=f"user{job_id % 4}",
            )
        )
    return PresetRun(cluster=_thin(nodes), jobs=jobs)


def _build_overrun_none(p: Mapping[str, object]) -> PresetRun:
    """Runtimes past walltime with the walltime killer disabled.

    Under ``kill_policy="none"`` overrunning jobs must *complete* (the
    auditor rejects any walltime kill), and every reservation-based
    promise heuristic is off the table — the lifecycle and duration
    identities are what's being stressed.
    """
    nodes = int(p["nodes"])
    jobs = generate_reference_jobs(
        "W-MIX", int(p["seed"]), num_jobs=int(p["num_jobs"]), cluster_nodes=nodes
    )
    rng = random.Random(int(p["seed"]) + 1)
    overrun = float(p["overrun"])
    adjusted: List[Job] = []
    for job in jobs:
        if rng.random() < float(p["fraction"]):
            job = Job(
                job_id=job.job_id,
                submit_time=job.submit_time,
                nodes=job.nodes,
                walltime=job.walltime,
                runtime=job.walltime * overrun,
                mem_per_node=job.mem_per_node,
                mem_used_per_node=job.mem_used_per_node,
                user=job.user,
                group=job.group,
                tag="overrun",
            )
        adjusted.append(job)
    return PresetRun(
        cluster=_thin(nodes),
        jobs=adjusted,
        scheduler={"kill_policy": "none"},
    )


def _build_cancel_backfill(p: Mapping[str, object]) -> PresetRun:
    """Cancellations racing the backfiller, via the online engine.

    A seeded subset of jobs is withdrawn mid-run — some while still
    queued (and possibly holding a backfill reservation), some while
    running (freeing capacity that triggers an immediate pass).
    """
    nodes = int(p["nodes"])
    jobs = generate_reference_jobs(
        "W-MIX", int(p["seed"]), num_jobs=int(p["num_jobs"]), cluster_nodes=nodes
    )
    rng = random.Random(int(p["seed"]) + 2)
    victims = rng.sample(jobs, k=int(len(jobs) * float(p["cancel_fraction"])))
    cancels = tuple(
        (job.submit_time + rng.uniform(0.0, job.walltime), job.job_id)
        for job in victims
    )
    return PresetRun(cluster=_thin(nodes), jobs=jobs, cancels=cancels)


def _build_trace_kth_slice(p: Mapping[str, object]) -> PresetRun:
    """A KTH-statistics trace slice on the paper's 64-node thin config."""
    nodes = int(p["nodes"])
    jobs = generate_reference_jobs(
        "W-KTH", int(p["seed"]), num_jobs=int(p["num_jobs"]), cluster_nodes=nodes
    )
    return PresetRun(cluster=_thin(nodes), jobs=jobs)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
PRESETS: Dict[str, Preset] = {
    preset.name: preset
    for preset in (
        Preset(
            name="drain-storm",
            summary="node failures drain and rejoin under a loaded queue",
            build=_build_drain_storm,
            defaults={
                "nodes": 32,
                "num_jobs": 240,
                "seed": 11,
                "mtbf": 40_000.0,
                "mean_repair": 4_000.0,
            },
            quick={"num_jobs": 80},
        ),
        Preset(
            name="pool-cliff",
            summary="remote-heavy jobs walk the exact pool-capacity cliff",
            build=_build_pool_cliff,
            defaults={
                "nodes": 16,
                "num_jobs": 90,
                "seed": 5,
                "pool_fraction": 0.25,
            },
            quick={"num_jobs": 45},
        ),
        Preset(
            name="collision-grid",
            summary="batched same-instant submissions on a coarse time lattice",
            build=_build_collision_grid,
            defaults={
                "nodes": 16,
                "num_jobs": 120,
                "seed": 7,
                "batch": 8,
                "interval": 900.0,
            },
            quick={"num_jobs": 48},
        ),
        Preset(
            name="overrun-none",
            summary="runtimes past walltime with the walltime killer disabled",
            build=_build_overrun_none,
            defaults={
                "nodes": 16,
                "num_jobs": 100,
                "seed": 13,
                "overrun": 1.5,
                "fraction": 0.4,
            },
            quick={"num_jobs": 40},
        ),
        Preset(
            name="cancel-backfill",
            summary="mid-run cancellations racing the backfiller (online engine)",
            build=_build_cancel_backfill,
            defaults={
                "nodes": 16,
                "num_jobs": 120,
                "seed": 17,
                "cancel_fraction": 0.25,
            },
            quick={"num_jobs": 50},
        ),
        Preset(
            name="trace-kth-slice",
            summary="KTH trace statistics on the paper's 64-node thin config",
            build=_build_trace_kth_slice,
            defaults={"nodes": 64, "num_jobs": 400, "seed": 7},
            quick={"num_jobs": 120},
        ),
    )
}

PRESET_NAMES: Tuple[str, ...] = tuple(PRESETS)


def preset_params(
    name: str, quick: bool = False, params: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The effective parameter set: defaults <- quick <- caller."""
    preset = PRESETS[name]
    merged: Dict[str, object] = dict(preset.defaults)
    if quick:
        merged.update(preset.quick)
    if params:
        unknown = set(params) - set(merged)
        if unknown:
            raise KeyError(
                f"preset {name!r} has no parameters {sorted(unknown)}; "
                f"valid: {sorted(merged)}"
            )
        merged.update(params)
    return merged


def run_preset(
    name: str,
    backfill: str = "easy",
    quick: bool = False,
    params: Optional[Mapping[str, object]] = None,
) -> SimulationResult:
    """Build and execute one preset under the given backfill policy."""
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; valid: {', '.join(PRESET_NAMES)}"
        )
    run = PRESETS[name].build(preset_params(name, quick=quick, params=params))
    kwargs = {**run.scheduler, "backfill": backfill}
    scheduler = build_scheduler(**kwargs)  # type: ignore[arg-type]
    cluster = Cluster(run.cluster)
    if not run.cancels:
        return SchedulerSimulation(
            cluster, scheduler, run.jobs, failures=run.failures
        ).run()
    engine = SchedulerSimulation(
        cluster, scheduler, [], failures=run.failures, online=True
    )
    engine.inject_jobs(run.jobs)
    for time, job_id in sorted(run.cancels):
        engine.advance_to(time)
        engine.cancel_job(job_id)
    engine.drain()
    return engine.online_result()


# ----------------------------------------------------------------------
# suite runner -> AUDIT_REPORT.json
# ----------------------------------------------------------------------
def run_audit_suite(
    names: Optional[Iterable[str]] = None,
    backfills: Sequence[str] = ("easy", "conservative"),
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run presets x backfills through the deep auditor.

    Returns the ``AUDIT_REPORT.json`` document: one cell per
    (preset, backfill) with the full violation list; ``ok`` is the
    conjunction over cells (advisories don't fail a cell).
    """
    selected = tuple(names) if names is not None else PRESET_NAMES
    for name in selected:
        if name not in PRESETS:
            raise KeyError(
                f"unknown preset {name!r}; valid: {', '.join(PRESET_NAMES)}"
            )
    cells: List[Dict[str, object]] = []
    for name in selected:
        for backfill in backfills:
            if progress is not None:
                progress(f"{name} [{backfill}]")
            result = run_preset(name, backfill=backfill, quick=quick)
            report = deep_audit(result)
            cells.append(
                {
                    "preset": name,
                    "summary": PRESETS[name].summary,
                    "backfill": backfill,
                    "quick": quick,
                    "jobs": len(result.jobs),
                    "cycles": result.cycles,
                    "ok": report.ok,
                    "violations": [v.to_dict() for v in report.errors],
                    "advisories": [v.to_dict() for v in report.advisories],
                    "checks": dict(sorted(report.checks.items())),
                }
            )
    return {
        "ok": all(cell["ok"] for cell in cells),
        "presets": list(selected),
        "backfills": list(backfills),
        "quick": quick,
        "cells": cells,
    }

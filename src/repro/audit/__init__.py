"""Deep-audit subsystem: invariant validation, presets, explanations.

This package grows :mod:`repro.engine.audit` (raise-on-first-violation,
used inline by every integration test) into a first-class audit layer:

* :mod:`repro.audit.policy` — the single source of truth for *when*
  conditional invariants apply (promise enforcement, FCFS ordering),
  previously duplicated as caller-side heuristics;
* :mod:`repro.audit.validator` — :func:`deep_audit`, a structured
  validator that recomputes per-instant node and pool occupancy from
  scratch and reports every violation as an :class:`AuditViolation`
  instead of raising on the first;
* :mod:`repro.audit.explain` — per-job "why this start time"
  explanations with the binding constraint and bounding breakpoint;
* :mod:`repro.audit.presets` — the curated adversarial scenario
  library behind ``repro audit`` (imported lazily: it pulls in the
  engine, which itself delegates to :mod:`repro.audit.policy`).
"""

from .explain import JobExplanation, explain_job, explain_schedule
from .policy import fairshare_order_applies, fcfs_order_applies, promises_apply
from .validator import AuditReport, AuditViolation, deep_audit

__all__ = [
    "AuditReport",
    "AuditViolation",
    "deep_audit",
    "explain_job",
    "explain_schedule",
    "JobExplanation",
    "fairshare_order_applies",
    "fcfs_order_applies",
    "promises_apply",
]

"""Structured deep validator: every invariant, every violation.

:func:`deep_audit` is the exhaustive sibling of
:func:`repro.engine.audit.audit_result`.  Where the engine auditor
raises on the first violated invariant (the right shape for inline
test assertions), the deep validator recomputes per-instant node and
pool occupancy *from scratch* — from the job records alone, then
cross-checked against the memory ledger, so neither bookkeeping source
can vouch for itself — and returns an :class:`AuditReport` listing
every :class:`AuditViolation` it found, tagged with the invariant
class the mutation suite asserts against.

Invariant classes (see docs/AUDIT.md for the soundness arguments):

``lifecycle``
    terminal states, execution-record presence/absence, kill-reason
    consistency, assigned-node counts, end >= start.
``node-oversubscription`` / ``node-unknown`` / ``node-downtime``
    per-node interval sweep: at no instant do two jobs hold one node,
    every assigned node exists, and no job runs through a failure's
    down window.
``pool-oversubscription`` / ``pool-unknown``
    per-instant pool occupancy recomputed from job records never
    exceeds capacity or goes negative; every granted pool exists.
``ledger-conservation`` / ``ledger-mismatch``
    every MiB granted is released exactly once, and the ledger's
    occupancy series agrees step-for-step with the one derived from
    the job records.
``split``
    local + remote covers the request, local fits the node, pool
    grants sum to the remote demand and respect rack reach.
``metrics``
    start >= submit, wait >= 0, bounded slowdown >= 1, completed
    duration equals the dilated runtime.
``promise``
    promise records are sane (decided before promised start, after
    submission) and — when :mod:`repro.audit.policy` says they are
    hard guarantees — honored.  Conservative promises surface as
    advisories, not errors.
``order``
    FCFS non-overtaking without backfill; same-user submit-order
    monotonicity under fairshare without backfill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import AllocationError, AuditError
from ..workload.job import JobState
from .policy import (
    conservative_promises_advisory,
    fairshare_order_applies,
    fcfs_order_applies,
    promises_apply,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..engine.results import SimulationResult

__all__ = ["AuditViolation", "AuditReport", "deep_audit"]

_EPS = 1e-6
_DURATION_TOL = 1e-3
_VALID_KILL_REASONS = ("walltime", "node_failure", "cancelled")


@dataclass(frozen=True)
class AuditViolation:
    """One violated invariant, with enough context to localize it."""

    invariant: str
    message: str
    severity: str = "error"  # "error" | "advisory"
    job_id: Optional[int] = None
    node_id: Optional[int] = None
    pool_id: Optional[str] = None
    time: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "invariant": self.invariant,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("job_id", "node_id", "pool_id", "time"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass
class AuditReport:
    """Everything :func:`deep_audit` found, machine-readable."""

    violations: List[AuditViolation] = field(default_factory=list)
    #: invariant class -> number of atomic facts checked (coverage
    #: evidence: a clean report with zero checks proves nothing).
    checks: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[AuditViolation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def advisories(self) -> List[AuditViolation]:
        return [v for v in self.violations if v.severity == "advisory"]

    @property
    def ok(self) -> bool:
        """True when no error-severity violation was found."""
        return not self.errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.errors],
            "advisories": [v.to_dict() for v in self.advisories],
            "checks": dict(sorted(self.checks.items())),
        }

    def raise_if_failed(self) -> None:
        """Bridge to the raise-style contract of the engine auditor."""
        errors = self.errors
        if not errors:
            return
        shown = "; ".join(str(v) for v in errors[:10])
        more = f" (+{len(errors) - 10} more)" if len(errors) > 10 else ""
        raise AuditError(f"{len(errors)} audit violation(s): {shown}{more}")

    # -- internal ------------------------------------------------------
    def _add(self, violation: AuditViolation) -> None:
        self.violations.append(violation)

    def _count(self, invariant: str, n: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + n


def deep_audit(
    result: "SimulationResult", strict_promises: Optional[bool] = None
) -> AuditReport:
    """Validate every invariant of ``result``; never raises.

    ``strict_promises=None`` (the default) consults
    :mod:`repro.audit.policy`: promise honoring is checked as an error
    under EASY's hard-guarantee conditions and as an advisory under
    conservative's.  ``False`` skips promise honoring entirely;
    ``True`` forces the error-severity check regardless of policy (the
    caller asserts the conditions hold).
    """
    report = AuditReport()
    _check_lifecycle(result, report)
    _check_nodes(result, report)
    _check_pools(result, report)
    _check_ledger(result, report)
    _check_split(result, report)
    _check_metrics(result, report)
    _check_promises(result, report, strict_promises)
    _check_order(result, report)
    return report


# ----------------------------------------------------------------------
def _check_lifecycle(result: "SimulationResult", report: AuditReport) -> None:
    kill_policy = result.scheduler_info.get("kill")
    for job in result.jobs:
        report._count("lifecycle")
        if not job.state.terminal:
            report._add(AuditViolation(
                "lifecycle", f"job {job.job_id} ended non-terminal: {job.state}",
                job_id=job.job_id,
            ))
            continue
        if job.state in (JobState.REJECTED, JobState.CANCELLED):
            if job.start_time is not None or job.assigned_nodes:
                report._add(AuditViolation(
                    "lifecycle",
                    f"{job.state.value} job {job.job_id} has an execution "
                    "record (resurrected?)",
                    job_id=job.job_id,
                ))
            continue
        if job.start_time is None or job.end_time is None:
            report._add(AuditViolation(
                "lifecycle", f"finished job {job.job_id} missing start/end",
                job_id=job.job_id,
            ))
            continue
        if job.end_time < job.start_time - _EPS:
            report._add(AuditViolation(
                "lifecycle",
                f"job {job.job_id} ends at {job.end_time} before its start "
                f"{job.start_time}",
                job_id=job.job_id, time=job.end_time,
            ))
        if len(job.assigned_nodes) != job.nodes:
            report._add(AuditViolation(
                "lifecycle",
                f"job {job.job_id} held {len(job.assigned_nodes)} nodes, "
                f"requested {job.nodes}",
                job_id=job.job_id,
            ))
        if job.state is JobState.KILLED:
            if job.kill_reason not in _VALID_KILL_REASONS:
                report._add(AuditViolation(
                    "lifecycle",
                    f"killed job {job.job_id} has invalid kill reason "
                    f"{job.kill_reason!r}",
                    job_id=job.job_id,
                ))
            elif job.kill_reason == "walltime" and kill_policy == "none":
                report._add(AuditViolation(
                    "lifecycle",
                    f"job {job.job_id} walltime-killed under kill policy "
                    "'none' (overruns must run to completion)",
                    job_id=job.job_id,
                ))
            elif job.kill_reason == "node_failure" and not result.failures:
                report._add(AuditViolation(
                    "lifecycle",
                    f"job {job.job_id} killed by node failure but the run "
                    "has no failure trace",
                    job_id=job.job_id,
                ))
        elif job.kill_reason:
            report._add(AuditViolation(
                "lifecycle",
                f"{job.state.value} job {job.job_id} carries kill reason "
                f"{job.kill_reason!r}",
                job_id=job.job_id,
            ))


def _check_nodes(result: "SimulationResult", report: AuditReport) -> None:
    num_nodes = result.cluster_spec.num_nodes
    # Per-node event sweep, recomputed from the job records alone:
    # +1 at each start, -1 at each end, releases applied before
    # same-instant grants (the engine's FINISH-before-SCHEDULE order).
    events: Dict[int, List[Tuple[float, int, int]]] = {}
    for job in result.finished:
        if job.start_time is None or job.end_time is None:
            continue  # reported by lifecycle
        for node_id in job.assigned_nodes:
            report._count("node-unknown")
            if not 0 <= node_id < num_nodes:
                report._add(AuditViolation(
                    "node-unknown",
                    f"job {job.job_id} assigned to nonexistent node {node_id} "
                    f"(machine has {num_nodes})",
                    job_id=job.job_id, node_id=node_id,
                ))
                continue
            events.setdefault(node_id, []).append(
                (job.start_time, +1, job.job_id)
            )
            events.setdefault(node_id, []).append(
                (job.end_time, -1, job.job_id)
            )
    for node_id, node_events in sorted(events.items()):
        node_events.sort(key=lambda e: (e[0], e[1]))
        holders: set = set()
        for time, delta, job_id in node_events:
            report._count("node-oversubscription")
            if delta < 0:
                holders.discard(job_id)
                continue
            if holders:
                other = sorted(holders)[0]
                report._add(AuditViolation(
                    "node-oversubscription",
                    f"node {node_id} double-booked at t={time}: job {job_id} "
                    f"starts while job {other} still holds it",
                    job_id=job_id, node_id=node_id, time=time,
                ))
            holders.add(job_id)

    for failure in result.failures:
        down_start = failure.time
        down_end = failure.time + failure.repair_time
        for job in result.finished:
            if job.start_time is None or job.end_time is None:
                continue
            if failure.node_id not in job.assigned_nodes:
                continue
            report._count("node-downtime")
            # The failure's victim ends exactly at the failure instant;
            # anything extending beyond it ran on a down node.
            if (
                job.start_time < down_end - _EPS
                and job.end_time > down_start + _EPS
            ):
                report._add(AuditViolation(
                    "node-downtime",
                    f"job {job.job_id} ran [{job.start_time},{job.end_time}) "
                    f"on node {failure.node_id} through its down window "
                    f"[{down_start},{down_end})",
                    job_id=job.job_id, node_id=failure.node_id,
                    time=down_start,
                ))


def _pool_capacities(result: "SimulationResult") -> Dict[str, int]:
    spec = result.cluster_spec
    capacities: Dict[str, int] = {}
    if spec.pool.global_pool > 0:
        capacities["global"] = spec.pool.global_pool
    if spec.pool.rack_pool > 0:
        for rack_id in range(spec.num_racks):
            capacities[f"rack{rack_id}"] = spec.pool.rack_pool
    return capacities


def _job_pool_series(
    result: "SimulationResult", pool_id: str
) -> List[Tuple[float, int]]:
    """Occupancy step series for one pool derived from job records
    alone — same same-instant netting as the ledger's series, so the
    two are directly comparable."""
    deltas: Dict[float, int] = {}
    for job in result.finished:
        if job.start_time is None or job.end_time is None:
            continue
        amount = job.pool_grants.get(pool_id, 0)
        if amount == 0:
            continue
        deltas[job.start_time] = deltas.get(job.start_time, 0) + amount
        deltas[job.end_time] = deltas.get(job.end_time, 0) - amount
    series: List[Tuple[float, int]] = []
    level = 0
    for time in sorted(deltas):
        level += deltas[time]
        series.append((time, level))
    return series


def _canonical_steps(series: List[Tuple[float, int]]) -> List[Tuple[float, int]]:
    """Drop points that do not change the level: two series describe
    the same step function iff their canonical forms are equal."""
    steps: List[Tuple[float, int]] = []
    level = 0
    for time, new_level in series:
        if new_level != level:
            steps.append((time, new_level))
            level = new_level
    return steps


def _check_pools(result: "SimulationResult", report: AuditReport) -> None:
    capacities = _pool_capacities(result)
    seen_pools = {
        pool_id
        for job in result.finished
        for pool_id in job.pool_grants
        if job.pool_grants.get(pool_id, 0) != 0
    }
    for pool_id in sorted(seen_pools - set(capacities)):
        report._add(AuditViolation(
            "pool-unknown",
            f"grants against nonexistent pool {pool_id!r}",
            pool_id=pool_id,
        ))
    report._count("pool-unknown", max(1, len(seen_pools)))
    for pool_id, capacity in sorted(capacities.items()):
        for time, level in _job_pool_series(result, pool_id):
            report._count("pool-oversubscription")
            if level > capacity + _EPS:
                report._add(AuditViolation(
                    "pool-oversubscription",
                    f"pool {pool_id} over capacity at t={time}: "
                    f"{level} > {capacity} MiB",
                    pool_id=pool_id, time=time,
                ))
            if level < -_EPS:
                report._add(AuditViolation(
                    "pool-oversubscription",
                    f"pool {pool_id} occupancy negative at t={time}: {level}",
                    pool_id=pool_id, time=time,
                ))


def _check_ledger(result: "SimulationResult", report: AuditReport) -> None:
    if result.rolling is not None:
        return  # rolling-aggregation runs disable the ledger by design
    report._count("ledger-conservation")
    try:
        result.ledger.verify_conservation()
    except AllocationError as exc:
        report._add(AuditViolation("ledger-conservation", str(exc)))
    capacities = _pool_capacities(result)
    ledger_pools = {
        pool_id
        for entry in result.ledger
        for pool_id, _ in entry.pool_grants
    }
    job_pools = {
        pool_id
        for job in result.finished
        for pool_id in job.pool_grants
        if job.pool_grants.get(pool_id, 0) != 0
    }
    for pool_id in sorted(ledger_pools | job_pools | set(capacities)):
        report._count("ledger-mismatch")
        from_ledger = _canonical_steps(
            result.ledger.pool_occupancy_series(pool_id)
        )
        from_jobs = _canonical_steps(_job_pool_series(result, pool_id))
        if from_ledger != from_jobs:
            divergence = next(
                (
                    (a, b)
                    for a, b in zip(from_ledger, from_jobs)
                    if a != b
                ),
                (
                    from_ledger[len(from_jobs):len(from_jobs) + 1] or None,
                    from_jobs[len(from_ledger):len(from_ledger) + 1] or None,
                ),
            )
            report._add(AuditViolation(
                "ledger-mismatch",
                f"pool {pool_id}: ledger occupancy diverges from the "
                f"job-record occupancy (first divergence: ledger="
                f"{divergence[0]}, jobs={divergence[1]})",
                pool_id=pool_id,
            ))


def _check_split(result: "SimulationResult", report: AuditReport) -> None:
    spec = result.cluster_spec
    per_rack = spec.nodes_per_rack
    for job in result.finished:
        report._count("split")
        if job.local_grant_per_node + job.remote_per_node != job.mem_per_node:
            report._add(AuditViolation(
                "split",
                f"job {job.job_id}: split {job.local_grant_per_node}+"
                f"{job.remote_per_node} != request {job.mem_per_node}",
                job_id=job.job_id,
            ))
        if job.local_grant_per_node > spec.node.local_mem:
            report._add(AuditViolation(
                "split",
                f"job {job.job_id}: local grant {job.local_grant_per_node} "
                f"exceeds node capacity {spec.node.local_mem}",
                job_id=job.job_id,
            ))
        total_remote = job.remote_per_node * job.nodes
        granted = sum(job.pool_grants.values())
        if granted != total_remote:
            report._add(AuditViolation(
                "split",
                f"job {job.job_id}: pool grants {granted} != remote demand "
                f"{total_remote}",
                job_id=job.job_id,
            ))
        nodes_per_rack_of_job: Dict[int, int] = {}
        for node_id in job.assigned_nodes:
            rack = node_id // per_rack
            nodes_per_rack_of_job[rack] = nodes_per_rack_of_job.get(rack, 0) + 1
        for pool_id, amount in job.pool_grants.items():
            if pool_id == "global" or not pool_id.startswith("rack"):
                continue  # unknown pools are pool-unknown's business
            try:
                rack_id = int(pool_id[len("rack"):])
            except ValueError:
                continue
            if rack_id not in nodes_per_rack_of_job:
                report._add(AuditViolation(
                    "split",
                    f"job {job.job_id} drew {amount} MiB from {pool_id} but "
                    f"has no node in rack {rack_id}",
                    job_id=job.job_id, pool_id=pool_id,
                ))
                continue
            limit = nodes_per_rack_of_job[rack_id] * job.remote_per_node
            if amount > limit:
                report._add(AuditViolation(
                    "split",
                    f"job {job.job_id} drew {amount} MiB from {pool_id}, "
                    f"more than its {nodes_per_rack_of_job[rack_id]} nodes "
                    f"in that rack can consume ({limit})",
                    job_id=job.job_id, pool_id=pool_id,
                ))


def _check_metrics(result: "SimulationResult", report: AuditReport) -> None:
    for job in result.finished:
        if job.start_time is None or job.end_time is None:
            continue
        report._count("metrics")
        if job.start_time < job.submit_time - _EPS:
            report._add(AuditViolation(
                "metrics",
                f"job {job.job_id} started at {job.start_time}, before its "
                f"submission at {job.submit_time}",
                job_id=job.job_id, time=job.start_time,
            ))
        if job.wait_time < -_EPS:
            report._add(AuditViolation(
                "metrics", f"job {job.job_id} has negative wait",
                job_id=job.job_id,
            ))
        if job.bounded_slowdown() < 1.0 - _EPS:
            report._add(AuditViolation(
                "metrics", f"job {job.job_id} bounded slowdown below 1",
                job_id=job.job_id,
            ))
        if job.state is JobState.COMPLETED:
            expected = job.dilated_runtime
            actual = job.end_time - job.start_time
            if abs(actual - expected) > _DURATION_TOL:
                report._add(AuditViolation(
                    "metrics",
                    f"job {job.job_id} completed in {actual}, expected "
                    f"dilated runtime {expected}",
                    job_id=job.job_id,
                ))


def _check_promises(
    result: "SimulationResult",
    report: AuditReport,
    strict_promises: Optional[bool],
) -> None:
    info = result.scheduler_info
    has_failures = bool(result.failures)
    for job_id, promise in sorted(result.promises.items()):
        report._count("promise")
        if promise.promised_start < promise.decided_at - _DURATION_TOL:
            report._add(AuditViolation(
                "promise",
                f"promise for job {job_id} is in the past: promised start "
                f"{promise.promised_start} < decided at {promise.decided_at}",
                job_id=job_id, time=promise.decided_at,
            ))
        try:
            job = result.job(job_id)
        except KeyError:
            report._add(AuditViolation(
                "promise", f"promise for unknown job {job_id}", job_id=job_id,
            ))
            continue
        if promise.decided_at < job.submit_time - _DURATION_TOL:
            report._add(AuditViolation(
                "promise",
                f"promise for job {job_id} decided at {promise.decided_at}, "
                f"before its submission at {job.submit_time}",
                job_id=job_id, time=promise.decided_at,
            ))
    if strict_promises is False:
        return
    if strict_promises is True or promises_apply(info, has_failures=has_failures):
        severity = "error"
    elif conservative_promises_advisory(info, has_failures=has_failures):
        severity = "advisory"
    else:
        return
    for job_id, promise in sorted(result.promises.items()):
        try:
            job = result.job(job_id)
        except KeyError:
            continue  # already reported above
        if job.state is JobState.REJECTED or job.start_time is None:
            continue
        report._count("promise")
        if job.start_time > promise.promised_start + _DURATION_TOL:
            report._add(AuditViolation(
                "promise",
                f"backfill promise violated: job {job_id} promised start "
                f"{promise.promised_start} (decided t={promise.decided_at}) "
                f"but started {job.start_time}",
                severity=severity, job_id=job_id, time=job.start_time,
            ))


def _check_order(result: "SimulationResult", report: AuditReport) -> None:
    info = result.scheduler_info
    if fcfs_order_applies(info):
        ran = sorted(
            result.finished, key=lambda job: (job.submit_time, job.job_id)
        )
        for earlier, later in zip(ran, ran[1:]):
            report._count("order")
            if later.start_time < earlier.start_time - _EPS:
                report._add(AuditViolation(
                    "order",
                    f"FCFS/no-backfill overtaking: job {later.job_id} "
                    f"(submitted {later.submit_time}) started "
                    f"{later.start_time}, before job {earlier.job_id} "
                    f"(submitted {earlier.submit_time}, started "
                    f"{earlier.start_time})",
                    job_id=later.job_id, time=later.start_time,
                ))
    if fairshare_order_applies(info, has_failures=bool(result.failures)):
        by_user: Dict[str, List] = {}
        for job in result.finished:
            by_user.setdefault(job.user, []).append(job)
        for user, jobs in sorted(by_user.items()):
            jobs.sort(key=lambda job: (job.submit_time, job.job_id))
            for earlier, later in zip(jobs, jobs[1:]):
                report._count("order")
                if later.start_time < earlier.start_time - _EPS:
                    report._add(AuditViolation(
                        "order",
                        f"fairshare monotonicity: user {user}'s job "
                        f"{later.job_id} (submitted {later.submit_time}) "
                        f"started {later.start_time}, overtaking sibling "
                        f"{earlier.job_id} (submitted {earlier.submit_time}, "
                        f"started {earlier.start_time})",
                        job_id=later.job_id, time=later.start_time,
                    ))

"""When do conditional audit invariants apply?

Several invariants are only sound for particular policy stacks — a
promise is a hard guarantee under EASY backfill but advisory under
recompute-style conservative, FCFS non-overtaking only holds without
backfill, and so on.  The predicates here are the single source of
truth for those applicability rules; :mod:`repro.engine.audit`, the
deep validator, and the test suites all consult them instead of
re-deriving the conditions inline (they used to be caller-side
heuristics, duplicated and drifting).

Every predicate takes the ``scheduler_info`` mapping produced by
:meth:`repro.sched.base.Scheduler.describe` — plain strings, so the
policy layer stays import-free and usable from anywhere.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "promises_apply",
    "conservative_promises_advisory",
    "fcfs_order_applies",
    "fairshare_order_applies",
]


def promises_apply(
    scheduler_info: Mapping[str, str], *, has_failures: bool = False
) -> bool:
    """Promises are hard guarantees only for EASY backfill under FCFS
    order (later arrivals cannot overtake), bounded runtimes (estimates
    are upper bounds), memory-aware reservations (a memory-blind shadow
    is exactly the promise the paper shows being broken), and no start
    gate (a gate may deliberately hold a job past its promised start).

    Conservative backfill here is *recompute-style* — the reservation
    schedule is rebuilt every cycle, and greedy earliest-start
    schedules are not monotone under early completions (a
    higher-priority job shifting earlier can legitimately push a
    lower-priority reservation later), so its promises are advisory:
    see :func:`conservative_promises_advisory`.

    A node failure can legally delay a promised start (the shadow was
    computed on capacity that then died), hence ``has_failures``.
    """
    return (
        scheduler_info.get("backfill") == "easy"
        and scheduler_info.get("queue") == "fcfs"
        and scheduler_info.get("kill") != "none"
        and scheduler_info.get("memory_aware") != "false"
        and scheduler_info.get("gate") == "always"
        and not has_failures
    )


def conservative_promises_advisory(
    scheduler_info: Mapping[str, str], *, has_failures: bool = False
) -> bool:
    """Conservative promises under the otherwise-strict conditions.

    The deep validator still *checks* them — a conservative reservation
    overshooting its promise is worth surfacing — but reports the
    result as an advisory, not an error, because the recompute-style
    schedule may legitimately move a reservation later (see
    :func:`promises_apply`).
    """
    return (
        scheduler_info.get("backfill") == "conservative"
        and scheduler_info.get("queue") == "fcfs"
        and scheduler_info.get("kill") != "none"
        and scheduler_info.get("memory_aware") != "false"
        and scheduler_info.get("gate") == "always"
        and not has_failures
    )


def fcfs_order_applies(scheduler_info: Mapping[str, str]) -> bool:
    """Strict FCFS non-overtaking holds only without backfill (any
    backfill exists precisely to overtake) and without a gate (a gate
    holds individual jobs out of order)."""
    return (
        scheduler_info.get("backfill") == "none"
        and scheduler_info.get("queue") == "fcfs"
        and scheduler_info.get("gate") == "always"
    )


def fairshare_order_applies(
    scheduler_info: Mapping[str, str], *, has_failures: bool = False
) -> bool:
    """Same-user submit-order monotonicity under fairshare queueing.

    Sound only without backfill: the no-backfill scan stops at the
    first blocked job, and two jobs of one user always appear in
    submit order within a pass (equal usage at equal instants ties to
    submit time), so the later one can never start first.  With
    backfill the later, smaller job may legitimately overtake its
    sibling.
    """
    return (
        scheduler_info.get("queue") == "fairshare"
        and scheduler_info.get("backfill") == "none"
        and scheduler_info.get("gate") == "always"
        and not has_failures
    )

"""Running experiments: single arms, matrices, and replications.

The benches and examples all funnel through :func:`run_config`, which
enforces the hygiene that keeps comparisons honest:

* every arm receives a **fresh copy** of the trace (jobs are stateful);
* every run is **audited** before its numbers are reported (disable
  only for deliberately broken arms, e.g. memory-blind EASY);
* summaries carry an explicit label and a common memory-class
  reference so cross-configuration tables are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..engine.audit import audit_result
from ..engine.results import SimulationResult
from ..engine.simulation import SchedulerSimulation
from ..metrics.summary import ResultSummary, summarize
from ..sched.base import Scheduler, build_scheduler
from ..sim.rng import RandomStreams
from ..workload.filters import reset_jobs
from ..workload.job import Job

__all__ = ["run_config", "run_replications", "ExperimentArm", "run_arms"]


def run_config(
    cluster_spec: ClusterSpec,
    jobs: Sequence[Job],
    scheduler: Optional[Scheduler] = None,
    label: str = "",
    audit: bool = True,
    sample_interval: Optional[float] = None,
    class_local_mem: Optional[int] = None,
    **build_kwargs,
) -> Tuple[SimulationResult, ResultSummary]:
    """Run one (cluster, workload, scheduler) arm and summarize it.

    ``scheduler`` may be given directly; otherwise one is built from
    ``build_kwargs`` via :func:`repro.sched.base.build_scheduler`.
    """
    if scheduler is None:
        scheduler = build_scheduler(**build_kwargs)
    elif build_kwargs:
        raise ValueError("pass either a scheduler or build kwargs, not both")
    cluster = Cluster(cluster_spec)
    sim = SchedulerSimulation(
        cluster, scheduler, reset_jobs(jobs), sample_interval=sample_interval
    )
    result = sim.run()
    if audit:
        audit_result(result)
    summary = summarize(
        result,
        label=label or cluster_spec.name,
        class_local_mem=class_local_mem,
    )
    return result, summary


@dataclass
class ExperimentArm:
    """A labelled configuration in a comparison matrix."""

    label: str
    cluster_spec: ClusterSpec
    scheduler_factory: Callable[[], Scheduler]
    audit: bool = True


def run_arms(
    arms: Iterable[ExperimentArm],
    jobs: Sequence[Job],
    class_local_mem: Optional[int] = None,
    sample_interval: Optional[float] = None,
) -> List[ResultSummary]:
    """Run every arm on fresh copies of the same trace."""
    summaries: List[ResultSummary] = []
    for arm in arms:
        _, summary = run_config(
            arm.cluster_spec,
            jobs,
            scheduler=arm.scheduler_factory(),
            label=arm.label,
            audit=arm.audit,
            class_local_mem=class_local_mem,
            sample_interval=sample_interval,
        )
        summaries.append(summary)
    return summaries


def run_replications(
    make_jobs: Callable[[RandomStreams], List[Job]],
    run_one: Callable[[List[Job]], ResultSummary],
    seeds: Sequence[int],
) -> List[ResultSummary]:
    """Replicate an experiment across seeds.

    ``make_jobs`` generates a workload from a seed-specific stream set;
    ``run_one`` runs an arm on it.  Returns per-seed summaries; combine
    with :func:`repro.analysis.stats.mean_ci` for intervals.
    """
    summaries: List[ResultSummary] = []
    for seed in seeds:
        jobs = make_jobs(RandomStreams(seed))
        summaries.append(run_one(jobs))
    return summaries

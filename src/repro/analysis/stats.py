"""Statistical helpers: confidence intervals for replicated runs."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["mean_ci", "bootstrap_ci"]

# Two-sided 95% t critical values for small samples (df 1..30); falls
# back to the normal 1.96 beyond.  Hard-coding avoids a scipy runtime
# dependency in the core library (scipy remains dev-only).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def mean_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and 95% t-interval half-width.

    Returns ``(mean, half_width)``; half-width is 0 for n < 2.
    """
    array = np.asarray(values, dtype=float)
    n = array.size
    if n == 0:
        return 0.0, 0.0
    mean = float(np.mean(array))
    if n < 2:
        return mean, 0.0
    sem = float(np.std(array, ddof=1)) / math.sqrt(n)
    t = _T95[n - 2] if n - 2 < len(_T95) else 1.96
    return mean, t * sem


def bootstrap_ci(
    values: Sequence[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile bootstrap 95% CI of the mean: (mean, lo, hi)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0, 0.0, 0.0
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, array.size, size=(n_resamples, array.size))
    means = array[idx].mean(axis=1)
    return (
        float(array.mean()),
        float(np.percentile(means, 2.5)),
        float(np.percentile(means, 97.5)),
    )

"""Experiment harness: runs, sweeps, replication, and comparisons."""

from .experiments import run_config, run_replications, ExperimentArm, run_arms
from .compare import relative_change, crossover_point, compare_table
from .stats import mean_ci, bootstrap_ci

__all__ = [
    "run_config",
    "run_replications",
    "ExperimentArm",
    "run_arms",
    "relative_change",
    "crossover_point",
    "compare_table",
    "mean_ci",
    "bootstrap_ci",
]

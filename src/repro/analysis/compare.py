"""Comparing arms: improvements, crossovers, and matrix tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..metrics.report import ascii_table
from ..metrics.summary import ResultSummary

__all__ = ["relative_change", "crossover_point", "compare_table"]


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline; 0 when the baseline is 0.

    Negative values mean the arm improved on the baseline for
    lower-is-better metrics (wait, slowdown).
    """
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


def crossover_point(
    x_values: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> Optional[float]:
    """First x where series A stops beating series B (A >= B).

    Linear interpolation between sweep points; ``None`` when A wins
    everywhere (or the sweep starts with A already losing, in which
    case the first x is returned).  Used by F6 to locate the penalty
    level at which disaggregation stops paying.
    """
    if len(x_values) != len(series_a) or len(x_values) != len(series_b):
        raise ValueError("mismatched sweep lengths")
    prev_x: Optional[float] = None
    prev_gap: Optional[float] = None
    for x, a, b in zip(x_values, series_a, series_b):
        gap = a - b
        if gap >= 0:
            if prev_gap is None or prev_x is None or gap == 0:
                return float(x)
            # Interpolate the zero crossing of the gap.
            frac = -prev_gap / (gap - prev_gap)
            return float(prev_x + frac * (x - prev_x))
        prev_x, prev_gap = float(x), gap
    return None


def compare_table(
    summaries: Sequence[ResultSummary],
    metrics: Sequence[str] = (
        "wait_mean",
        "bsld_mean",
        "node_util",
        "pool_util",
        "killed",
    ),
    baseline_label: Optional[str] = None,
) -> str:
    """Arms × metrics table, optionally with %-vs-baseline columns."""
    rows: List[List[object]] = []
    baseline: Optional[Dict[str, object]] = None
    if baseline_label is not None:
        for summary in summaries:
            if summary.label == baseline_label:
                baseline = summary.row()
                break
        if baseline is None:
            raise ValueError(f"baseline {baseline_label!r} not among summaries")
    headers = ["config"] + list(metrics)
    if baseline is not None:
        headers += [f"{m}_vs_base" for m in ("wait_mean", "bsld_mean")]
    for summary in summaries:
        row_data = summary.row()
        row: List[object] = [summary.label]
        row += [row_data.get(metric, "") for metric in metrics]
        if baseline is not None:
            for metric in ("wait_mean", "bsld_mean"):
                change = relative_change(
                    float(baseline.get(metric, 0.0)),
                    float(row_data.get(metric, 0.0)),
                )
                row.append(f"{change:+.1%}")
        rows.append(row)
    return ascii_table(headers, rows)

"""Unit helpers: memory sizes in MiB and durations in seconds.

All internal quantities in the library are plain numbers with fixed
units — memory in **MiB** (integer), time in **seconds** (float).  This
module is the single place where human-friendly strings like ``"512GiB"``
or ``"36h"`` are converted to those internal units, so configuration
files and CLI flags stay readable without spreading parsing logic
around.

The binary prefixes follow IEC: 1 GiB = 1024 MiB.  Decimal suffixes
("GB") are accepted and treated as their IEC counterparts because
workload traces are loose about the distinction and a 7% discrepancy is
immaterial to scheduling behaviour; the normalization is documented
here so it is a deliberate choice rather than an accident.
"""

from __future__ import annotations

import re

from .errors import UnitError

__all__ = [
    "MiB",
    "GiB",
    "TiB",
    "parse_mem",
    "format_mem",
    "parse_duration",
    "format_duration",
    "MINUTE",
    "HOUR",
    "DAY",
]

MiB = 1
GiB = 1024 * MiB
TiB = 1024 * GiB

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

_MEM_SUFFIXES = {
    "": MiB,  # bare numbers are MiB
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}

_DUR_SUFFIXES = {
    "": 1.0,  # bare numbers are seconds
    "s": 1.0,
    "sec": 1.0,
    "m": MINUTE,
    "min": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "d": DAY,
    "day": DAY,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_mem(value: int | float | str) -> int:
    """Parse a memory quantity into whole MiB.

    Numbers pass through as MiB.  Strings accept the suffixes
    ``M/MB/MiB``, ``G/GB/GiB``, ``T/TB/TiB`` (case-insensitive).

    >>> parse_mem("4GiB")
    4096
    >>> parse_mem(512)
    512
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise UnitError(f"memory size must be non-negative, got {value!r}")
        return int(round(value))
    match = _QUANTITY_RE.match(value)
    if not match:
        raise UnitError(f"cannot parse memory size {value!r}")
    number, suffix = match.groups()
    factor = _MEM_SUFFIXES.get(suffix.lower())
    if factor is None:
        raise UnitError(f"unknown memory suffix {suffix!r} in {value!r}")
    return int(round(float(number) * factor))


def format_mem(mib: float) -> str:
    """Render a MiB quantity with the largest clean binary suffix.

    >>> format_mem(4096)
    '4.0GiB'
    """
    mib = float(mib)
    if abs(mib) >= TiB:
        return f"{mib / TiB:.1f}TiB"
    if abs(mib) >= GiB:
        return f"{mib / GiB:.1f}GiB"
    return f"{mib:.0f}MiB"


def parse_duration(value: int | float | str) -> float:
    """Parse a duration into seconds.

    Numbers pass through as seconds.  Strings accept ``s``, ``m``/``min``,
    ``h``/``hr``, ``d`` suffixes and the ``HH:MM:SS`` clock form used by
    batch systems.

    >>> parse_duration("2h")
    7200.0
    >>> parse_duration("01:30:00")
    5400.0
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise UnitError(f"duration must be non-negative, got {value!r}")
        return float(value)
    text = value.strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) not in (2, 3) or not all(p.isdigit() for p in parts):
            raise UnitError(f"cannot parse clock duration {value!r}")
        parts = [int(p) for p in parts]
        if len(parts) == 2:
            hours, minutes, seconds = 0, parts[0], parts[1]
        else:
            hours, minutes, seconds = parts
        return hours * HOUR + minutes * MINUTE + float(seconds)
    match = _QUANTITY_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse duration {value!r}")
    number, suffix = match.groups()
    factor = _DUR_SUFFIXES.get(suffix.lower())
    if factor is None:
        raise UnitError(f"unknown duration suffix {suffix!r} in {value!r}")
    return float(number) * factor


def format_duration(seconds: float) -> str:
    """Render seconds as a compact human-readable duration.

    >>> format_duration(5400)
    '1h30m'
    """
    seconds = float(seconds)
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        minutes, secs = divmod(round(seconds), 60)
        return f"{minutes:.0f}m{secs:02.0f}s" if secs else f"{minutes:.0f}m"
    if seconds < DAY:
        hours, rem = divmod(round(seconds), 3600)
        minutes = rem // 60
        return f"{hours:.0f}h{minutes:02.0f}m" if minutes else f"{hours:.0f}h"
    days, rem = divmod(round(seconds), 86400)
    hours = rem // 3600
    return f"{days:.0f}d{hours:02.0f}h" if hours else f"{days:.0f}d"

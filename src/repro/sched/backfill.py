"""Backfill strategies: none, EASY, conservative.

All three walk the queue in policy order and start jobs through the
context callback (so the cluster mutates as the pass proceeds).  They
differ in what happens when a job cannot start:

* **none** — the queue head blocks everything behind it (pure FCFS
  dispatch, the 1990s baseline that motivates backfilling);
* **EASY** — the head gets a *shadow* reservation at its earliest
  feasible time; later jobs may start now iff they cannot push that
  shadow back.  Our shadow accounts for pool memory as well as nodes
  (``memory_aware=True``); with ``memory_aware=False`` the reservation
  covers nodes only, reproducing a classic scheduler that treats
  memory as free — the pathology the paper quantifies;
* **conservative** — every queued job (up to ``depth``) gets a
  reservation; a job may start now only if doing so respects all
  reservations ahead of it.

EASY's no-delay check is implemented by *hypothesis testing*: overlay
the candidate as a trial reservation on the cycle's shared sweep and
recompute the head's earliest start.  That is more expensive than the
textbook "extra nodes" arithmetic but remains exact in the presence
of the memory dimension and placement identity, where the textbook
shortcut is not.  The shared profile tracks mid-pass starts through
:meth:`AvailabilityProfile.apply_start`, so no candidate ever pays
for a profile rebuild — and the trial itself is a pure overlay on the
pass's :class:`~repro.sched.profile.SweepCursor` (no
add-query-remove round-trip on the reservation index).

Every scan of a pass — EASY's shadow and trials, conservative's
per-job reservation scans and replay probes — goes through the pass
transaction's shared sweep cursor (``ctx.transaction.sweep``), so the
release/reservation timeline is walked once per pass instead of once
per queued job.  Conservative backfill goes one step further: its
reservation plan is a **persistent, diffed structure** — teardown
retains the standing reservations (and the cursor's materialized
states) instead of clearing them, and the next pass patches only the
entries a perturbation can reach (see
:class:`ConservativeBackfill` for the replay doors and their
soundness arguments; ``docs/ARCHITECTURE.md`` for the full map).

Queue ordering is computed **once per pass**: every policy key is a
pure function of ``(job, now)`` and ``now`` is fixed for the pass, so
the policy order of the not-yet-started jobs is the initial order with
started jobs removed — re-sorting after every start (the old behavior)
produced byte-identical decisions at O(n log n) per started job.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..memdis.allocator import GlobalPoolAllocator
from ..memdis.split import MemorySplit
from ..workload.job import Job
from .base import Scheduler, SchedulerContext, StartDecision
from .profile import AvailabilityProfile, Reservation

__all__ = [
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "ConservativeBackfill",
    "backfill_for",
]

_EPS = 1e-6


class BackfillStrategy(abc.ABC):
    """One scheduling cycle's queue-walking logic."""

    name: str = "abstract"

    #: Cross-cycle profile cache: ``(cluster, version, profile)`` or
    #: None.  Valid exactly when the cluster is untouched since the
    #: stamp and the profile rebases to the new instant.  Strategies
    #: that maintain one (EASY, conservative) assign an instance
    #: attribute; the class default keeps cache-less strategies inert.
    _profile_cache: Optional[tuple] = None

    @abc.abstractmethod
    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        ...

    # ------------------------------------------------------------------
    def on_release(
        self,
        sched: Scheduler,
        cluster,
        job: Job,
        now: float,
        version_before: int,
    ) -> Optional[float]:
        """Fold a job completion into the cached profile, in place.

        Called by the engine immediately after the cluster released the
        job's nodes and grants (``version_before`` is the cluster
        version just before those mutations).  When the cache was
        valid at that stamp, :meth:`AvailabilityProfile.apply_release`
        patches the profile to the post-completion state — bit-
        equivalent to a fresh rebuild — and the cache is re-stamped, so
        the next pass skips the rebuild that completions used to
        force.  Any mismatch simply drops the cache (the next pass
        rebuilds, the pre-folding behavior).

        Returns the folded release's estimated-end time on success
        (``None`` otherwise) — the *fold horizon* subclasses with a
        reservation plan cache use: profile evaluation at breakpoints
        at or beyond that time is unchanged by the fold.
        """
        cache = self._profile_cache
        if cache is None:
            return None
        c_cluster, c_version, c_profile = cache
        if c_cluster is not cluster or c_version != version_before:
            return None
        est_end = job.start_time + sched.duration_of_running(job)
        if c_profile.apply_release(job.assigned_nodes, job.pool_grants, est_end):
            self._profile_cache = (cluster, cluster.version, c_profile)
            return est_end
        self._profile_cache = None
        return None

    def _cycle_profile(
        self, ctx: SchedulerContext, sched: Scheduler
    ) -> AvailabilityProfile:
        """This cycle's availability profile, reusing the cached one
        when the cluster is provably unchanged since its stamp."""
        cluster = ctx.cluster
        cache = self._profile_cache
        if cache is not None:
            c_cluster, c_version, c_profile = cache
            if (
                c_cluster is cluster
                and c_version == cluster.version
                and c_profile.rebase(ctx.now)
            ):
                return c_profile
        profile = sched.build_profile(ctx)
        self._profile_cache = (cluster, cluster.version, profile)
        return profile

    # ------------------------------------------------------------------
    @staticmethod
    def _start_in_order(
        ctx: SchedulerContext, sched: Scheduler
    ) -> Tuple[List[StartDecision], List[Job]]:
        """Start queue-order jobs while the next one fits; stop at the
        first blocked job.  Shared phase 1 of every strategy.

        Returns ``(started, remaining)`` where ``remaining`` is the
        rest of the policy order — queue keys are fixed for the pass,
        so the leftover of one sort *is* the policy order of the
        survivors and callers never re-sort.
        """
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started, []
        ordered = sched.queue_policy.order(pending, ctx.now)
        cluster = ctx.cluster
        index = 0
        while index < len(ordered):
            job = ordered[index]
            if job.nodes > cluster.free_node_count:
                break  # try_start_now would fail the same check
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                break
            ctx.start_job(decision)
            started.append(decision)
            index += 1
        return started, ordered[index:]

    @staticmethod
    def _fold_started(
        profile: AvailabilityProfile, sched: Scheduler, decision: StartDecision
    ) -> None:
        """Track a mid-pass start on the shared profile (no rebuild)."""
        job = decision.job
        profile.apply_start(
            decision.node_ids,
            decision.plan,
            job.start_time + sched.duration_of_running(job),
        )

    @staticmethod
    def _queue_head(ctx: SchedulerContext, sched: Scheduler) -> Optional[Job]:
        """The policy-order head without sorting the whole queue.

        ``min`` returns the first minimal element, exactly what a
        stable full sort would put at index 0.  Only valid for
        stateless policies (no ``order`` bookkeeping is triggered).
        """
        pending = ctx.pending()
        if not pending:
            return None
        key = sched.queue_policy.key
        now = ctx.now
        return min(pending, key=lambda job: key(job, now))


class NoBackfill(BackfillStrategy):
    """Head-of-line blocking dispatch."""

    name = "none"

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        if ctx.cluster.free_node_count == 0 and sched.queue_policy.stateless:
            return []  # every try_start_now would fail its node check
        started, _ = self._start_in_order(ctx, sched)
        return started


class _ShadowPlan:
    """The cached head shadow plus its fold-perturbation ledger.

    The EASY analogue of the conservative plan ledger
    (:class:`_ReservationPlan`), for the one number EASY retains
    across passes: the head's shadow.  ``m_bound`` is the shadow
    scan's per-node perturbation bound — the largest achievable
    free-node count at any breakpoint the scan rejected below the
    shadow, demand-sentinel-poisoned by pool-capacity rejections —
    and ``p_bound`` the pool-level analogue (the count-only maximum,
    kept only when pool rejections occurred, ``None`` otherwise).
    ``fold_nodes`` / ``fold_pool`` accumulate the nodes and pool MiB
    completion folds returned since the scan; ``mutations`` is
    re-stamped on every fold the shadow survives, so the hit check in
    :meth:`EasyBackfill._shadow_of` stays a plain equality.
    """

    __slots__ = (
        "profile", "mutations", "head_id", "split", "dur", "shadow",
        "now", "need", "m_bound", "p_bound", "fold_nodes", "fold_pool",
    )

    def __init__(
        self, profile, mutations, head_id, split, dur, shadow, now,
        need, m_bound, p_bound,
    ) -> None:
        self.profile = profile
        self.mutations = mutations
        self.head_id = head_id
        self.split = split
        self.dur = dur
        self.shadow = shadow
        self.now = now
        self.need = need
        self.m_bound = m_bound
        self.p_bound = p_bound
        self.fold_nodes = 0
        self.fold_pool = 0


class EasyBackfill(BackfillStrategy):
    """EASY backfilling with a memory-aware shadow reservation.

    ``depth`` caps how many queued candidates are examined per cycle
    (production schedulers do the same to bound cycle latency).
    """

    name = "easy"

    def __init__(self, depth: int = 128, memory_aware: bool = True) -> None:
        if depth < 1:
            raise ConfigurationError("backfill depth must be >= 1")
        self.depth = depth
        self.memory_aware = memory_aware
        # Cross-cycle caches.  The profile cache is (cluster, version,
        # profile): valid exactly when the cluster is untouched since
        # the stamp and the profile rebases to the new instant — a
        # mid-pass ``apply_start`` fold is bit-equivalent to a rebuild,
        # so the cache is re-stamped after a pass's last fold.  The
        # shadow cache layers on top (see :class:`_ShadowPlan`), keyed
        # by the profile object, its mutation count, and the head job;
        # completion folds age it through ``on_release`` instead of
        # unconditionally invalidating it.
        self._profile_cache: Optional[tuple] = None
        self._shadow_cache: Optional[_ShadowPlan] = None
        #: Shadow-cache counters (exposed for tests and audits):
        #: ``reused`` counts hits, ``recompute`` full head scans,
        #: ``fold_survived`` completion folds the cached shadow
        #: provably survived, ``fold_dropped`` folds that voided it.
        self.shadow_stats = {
            "reused": 0, "recompute": 0,
            "fold_survived": 0, "fold_dropped": 0,
        }

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        if ctx.cluster.free_node_count == 0 and sched.queue_policy.stateless:
            # Saturated machine: nothing can start, so the pass can
            # only matter through the head's promise — record it once.
            head = self._queue_head(ctx, sched)
            if head is not None and not ctx.has_promise(head.job_id):
                self._shadow_of(ctx, sched, head)
            return []
        started, remaining = self._start_in_order(ctx, sched)
        if not remaining:
            return started
        head, rest = remaining[0], remaining[1 : 1 + self.depth]
        allocator = sched.resolve_allocator(ctx.cluster)

        # The shadow is computed lazily: nothing between here and the
        # first feasible candidate mutates cluster state, so deferring
        # it is observable only through its cost.  On a busy machine
        # most cycles have a blocked head, an already-recorded promise,
        # and no startable candidate — those cycles now skip the
        # profile build and head scan entirely.
        profile: Optional[AvailabilityProfile] = None
        head_split = None
        head_dur = 0.0
        shadow: Optional[float] = None
        shadow_known = False

        def compute_shadow() -> None:
            nonlocal profile, head_split, head_dur, shadow, shadow_known
            profile, head_split, head_dur, shadow = self._shadow_of(
                ctx, sched, head
            )
            shadow_known = True

        if not ctx.has_promise(head.job_id):
            compute_shadow()

        free_count = ctx.cluster.free_node_count
        for job in rest:
            if job.nodes > free_count:
                continue  # try_start_now would fail the same check
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                continue
            if not shadow_known:
                compute_shadow()
            dur = sched.est_duration(job, ctx.cluster, split=decision.split)
            if shadow is None or ctx.now + dur <= shadow + _EPS:
                # Finishes before the shadow: cannot delay the head.
                ctx.start_job(decision)
                started.append(decision)
                self._fold_started(profile, sched, decision)
                free_count = ctx.cluster.free_node_count
                continue
            # Long candidate: start it hypothetically and see whether
            # the head could still make its shadow time.  The trial is
            # a pure overlay on the pass's shared sweep; apply_start
            # has kept the profile equivalent to a fresh rebuild.
            trial = Reservation(
                job_id=job.job_id,
                start=ctx.now,
                end=ctx.now + dur,
                node_ids=decision.node_ids,
                pool_grants=tuple(sorted(decision.plan.items())),
            )
            # Bounded scan: only "can the head still start by the
            # shadow?" matters, so stop at the shadow instead of
            # walking the whole timeline on a rejection.
            head_retry = ctx.transaction.sweep(profile).earliest_start(
                head,
                head_dur,
                head_split.remote,
                sched.placement,
                allocator,
                memory_aware=self.memory_aware,
                not_after=shadow + _EPS,
                trial=trial,
            )
            if head_retry is not None and head_retry.start <= shadow + _EPS:
                ctx.start_job(decision)
                started.append(decision)
                self._fold_started(profile, sched, decision)
                free_count = ctx.cluster.free_node_count
        if profile is not None:
            # Folds kept the profile bit-equivalent to a fresh build at
            # the now-current cluster state; re-stamp so the next pass
            # can reuse it even though this pass mutated the cluster.
            self._profile_cache = (ctx.cluster, ctx.cluster.version, profile)
        return started

    def on_release(
        self,
        sched: Scheduler,
        cluster,
        job: Job,
        now: float,
        version_before: int,
    ) -> Optional[float]:
        folded_end = super().on_release(sched, cluster, job, now, version_before)
        plan = self._shadow_cache
        if plan is None:
            return folded_end
        if folded_end is None:
            # The fold failed or there was no profile cache: the next
            # pass rebuilds the profile, so the shadow cannot hit on
            # its identity stamp anyway.  Drop it eagerly.
            self._shadow_cache = None
            return folded_end
        # The shadow stays coherent only if it was stamped against the
        # state just before this fold (the fold bumped the mutation
        # count by one) on the very profile the cache holds.
        profile = plan.profile
        if (
            self._profile_cache is None
            or self._profile_cache[2] is not profile
            or plan.mutations != profile.mutation_count - 1
        ):
            self._shadow_cache = None
            return folded_end
        if self._shadow_survives(sched, cluster, job, folded_end, plan, profile):
            plan.mutations = profile.mutation_count
            plan.fold_nodes += len(job.assigned_nodes)
            plan.fold_pool += sum(job.pool_grants.values())
            self.shadow_stats["fold_survived"] += 1
        else:
            self._shadow_cache = None
            self.shadow_stats["fold_dropped"] += 1
        return folded_end

    @staticmethod
    def _shadow_survives(
        sched: Scheduler,
        cluster,
        job: Job,
        folded_end: float,
        plan: _ShadowPlan,
        profile: AvailabilityProfile,
    ) -> bool:
        """Whether the cached shadow provably equals a fresh head scan
        after folding this completion.

        A release fold moves the folded entry's nodes and grants from
        a future breakpoint into base availability: states strictly
        before ``folded_end`` gain exactly those resources, states at
        or beyond it are bit-identical, and no breakpoint ever
        *appears*.  So only the scan's rejected prefix can flip:

        * ``shadow is None`` — the head did not fit even the empty
          machine, and folds do not change machine composition.
        * The **per-node door**: every rejected breakpoint had at most
          ``m_bound`` achievable free nodes (sentinel-poisoned to the
          head's demand by pool rejections), and completion folds have
          freed ``fold_nodes`` more since; while their sum stays under
          the demand, every rejection stands.
        * The **pool door**, for pool-rejecting scans (mirroring the
          conservative plan's): sound only when the allocator's
          verdict is node-identity-independent, a pool verdict can
          flip only if pool availability rose — so zero pool MiB may
          have folded — and count-limited rejections fall back to the
          count-only bound ``p_bound``.

        Separately, a fold at the shadow instant itself may remove the
        very breakpoint the scan accepted.  The instant stays feasible
        (its state is unchanged), but a fresh scan only visits
        breakpoints and would answer a different one — the shadow
        survives a coincident fold only if another release still
        breaks there.
        """
        shadow = plan.shadow
        if shadow is None:
            return True
        folded_nodes = plan.fold_nodes + len(job.assigned_nodes)
        folded_pool = plan.fold_pool + sum(job.pool_grants.values())
        if plan.m_bound + folded_nodes < plan.need:
            pass
        elif (
            plan.p_bound is not None
            and not folded_pool
            and plan.p_bound + folded_nodes < plan.need
            and type(sched.resolve_allocator(cluster)) is GlobalPoolAllocator
        ):
            pass
        else:
            return False
        if folded_end == shadow and not profile.has_release_at(shadow):
            return False
        return True

    def _shadow_of(
        self, ctx: SchedulerContext, sched: Scheduler, head: Job
    ) -> Tuple[AvailabilityProfile, "MemorySplit", float, Optional[float]]:
        """The cycle profile plus the head's shadow, cached across
        cycles.  Returns (profile, split, duration, shadow); shadow is
        None when the head cannot fit even an empty machine.

        Cache validity argument: if the cluster version is unchanged,
        no start/finish/failure/pool mutation happened, so base
        availability and the running set are identical; availability is
        constant between the old and new instant (the first release
        lies beyond it, checked by ``rebase``), so the head stays
        infeasible up to its cached shadow — a fresh scan would return
        the same reservation start.  A shadow equal to the compute
        instant (possible under a gate veto) is never reused, because
        a fresh scan would move it to the new instant; the same check
        against the *current* instant guards shadows aged across
        completion folds (``on_release``), which keep the cache alive
        while the fold ledger proves a fresh scan unchanged.
        """
        profile = self._cycle_profile(ctx, sched)
        plan = self._shadow_cache
        if plan is not None:
            if (
                plan.profile is profile
                and plan.mutations == profile.mutation_count
                and plan.head_id == head.job_id
                and (
                    plan.shadow is None
                    or (plan.shadow > plan.now and plan.shadow > ctx.now)
                )
            ):
                self.shadow_stats["reused"] += 1
                return profile, plan.split, plan.dur, plan.shadow
        cluster = ctx.cluster
        allocator = sched.resolve_allocator(cluster)
        head_split = sched.split_for(head, cluster)
        head_dur = sched.est_duration(head, cluster, split=head_split)
        sweep = ctx.transaction.sweep(profile)
        head_res = sweep.earliest_start(
            head,
            head_dur,
            head_split.remote,
            sched.placement,
            allocator,
            memory_aware=self.memory_aware,
        )
        shadow: Optional[float] = None
        if head_res is not None:
            shadow = head_res.start
            ctx.record_promise(head.job_id, shadow)
        # Pool-level bound: the count-only maximum, kept only when a
        # pool-capacity rejection occurred (its sentinel poisons
        # ``m_bound``); mirrors the conservative entry bounds.
        p_bound: Optional[int] = None
        if sweep.last_scan_pool_rejects:
            p_bound = sweep.last_scan_count_reject
        self.shadow_stats["recompute"] += 1
        self._shadow_cache = _ShadowPlan(
            profile, profile.mutation_count, head.job_id,
            head_split, head_dur, shadow, ctx.now,
            head.nodes, sweep.last_scan_max_reject, p_bound,
        )
        return profile, head_split, head_dur, shadow


class _ReservationPlan:
    """The retained cross-pass reservation plan plus its perturbation
    ledger.  One instance is rebuilt at every conservative pass
    teardown; ``on_release`` mutates it in place as completions fold.

    ``entries`` is the previous pass's processed window as
    ``(job, reservation | None, duration, remote, m_bound, p_bound)``
    tuples — ``m_bound`` is the per-node perturbation bound (largest
    achievable free-node count at any rejected breakpoint below the
    reservation's start, demand-sentinel-poisoned by pool rejections),
    ``p_bound`` the pool-level analogue (the count-only maximum, kept
    only when pool-capacity rejections occurred; ``None`` otherwise or
    when poisoned).  The ledger fields age those bounds:

    * ``horizon`` — the largest release time perturbed since the
      entries were derived (completion folds, superseded or planted
      reservations, pass-local starts): evaluation at breakpoints at
      or beyond it is untouched, so entries starting strictly after it
      replay behind a probe bounded at the horizon;
    * ``fold_nodes`` — nodes freed below the horizon by completion
      folds; while ``m_bound + fold_nodes`` (plus pass-local
      divergence nodes) stays under a job's demand, no breakpoint
      below its cached start can have become feasible;
    * ``fold_pool`` — pool MiB released below the horizon by
      completion folds; any nonzero value shuts the pool-level door
      (pool-capacity rejections may have flipped);
    * ``retained`` — whether the profile still physically holds the
      entries' reservations (the persistent plan): set at teardown,
      consumed by the next pass's retained fast path.
    """

    __slots__ = (
        "profile", "mutations", "horizon", "entries",
        "fold_nodes", "fold_pool", "retained",
    )

    def __init__(
        self,
        profile: AvailabilityProfile,
        mutations: int,
        horizon: float,
        entries: List[tuple],
        retained: bool,
    ) -> None:
        self.profile = profile
        self.mutations = mutations
        self.horizon = horizon
        self.entries = entries
        self.fold_nodes = 0
        self.fold_pool = 0
        self.retained = retained


class ConservativeBackfill(BackfillStrategy):
    """Reservation for everyone (up to ``depth``).

    The pass rebuilds the reservation schedule from scratch in queue
    order each cycle: every job gets the earliest start compatible
    with the reservations of all jobs ahead of it, and starts *now*
    exactly when that earliest start is the current instant.  Jobs
    started mid-pass are folded back in as reservations so later queue
    entries see them.  Conservative backfill is always memory-aware
    here; the memory-blind ablation is specific to EASY (T3).

    That is the *semantic* contract.  Operationally the pass runs
    against three persistent layers, each provably decision-invisible
    (the differential suites pin bit-identical schedules via the
    golden digests in ``tests/golden/``):

    **Layer 1 — the profile cache.**  The availability profile is not
    rebuilt per cycle: pass-local starts are folded in via
    ``apply_start`` (with realized dilations, exactly what a fresh
    build would see), completions via ``on_release`` →
    ``apply_release``, and the clock advances via ``rebase`` — so the
    next cycle reuses the profile object through the shared cache.

    **Layer 2 — the persistent reservation plan.**  Teardown does
    *not* clear the standing reservations: they — and the pass-shared
    :class:`~repro.sched.profile.SweepCursor`'s materialized
    breakpoint states — survive into the next pass.  A pass that
    starts from a provably unchanged profile diffs the queue against
    the retained plan instead of re-deriving it:

    * while the prefix replays (same job, same duration, reservation
      start beyond the probe cap, anchor infeasible), the standing
      reservation is simply *validated in place* — no
      ``add_reservation`` index inserts, no cursor re-patching, no
      promise recomputation; the replayed majority of a
      submission-triggered cycle costs one O(1) anchor count compare
      per entry;
    * the first divergence (queue reorder, duration drift, a job that
      can now start, a blown probe) *spills* the not-yet-validated
      suffix (``truncate_reservations``) — a fresh scan for entry *p*
      must see exactly the reservations of entries ahead of it — and
      the stock loop takes over from that position, re-adding as it
      goes;
    * the retained fast path is armed only when the probe cap sits at
      *now* and no retained reservation is due at or before it
      (otherwise reservations are cleared up front and the pass runs
      stock — the pre-retention behavior).

    **Layer 3 — the replay bounds.**  With the plan retained, each
    entry still needs proof that no breakpoint below its cached start
    became feasible since its scan:

    * the **probe door**: a bounded ``earliest_start(..., not_after=
      cap)`` probe re-evaluates the (usually empty) perturbed prefix —
      exact by construction, it is the full scan truncated;
    * the **per-node door**: when completion folds blow the time cap
      far out (early-finish skew), an entry whose scan rejected every
      earlier breakpoint on *node counts* resumes at its cached start
      while ``m_bound + freed nodes`` stays under its demand — folds
      only add those nodes, everything else the replay permits only
      removes availability;
    * the **pool door** (the pool-level perturbation bound): entries
      whose scans rejected some breakpoints on *pool capacity* are
      excluded from the per-node door (placement identity can flip
      under any free-set change), but when the allocator's verdict is
      node-identity-independent — a ``GlobalPoolAllocator``, whose
      plan is a pure function of the global pool level and the node
      count — a pool-capacity rejection can only flip if pool
      availability *rose* below the horizon.  So such an entry resumes
      at its cached start when the count-only bound (``p_bound``)
      holds **and** zero pool MiB was released below the horizon
      (completion folds of pool-holding jobs, superseded reservations
      carrying grants); reservations planted meanwhile only *consume*
      pool, and node-only folds leave every pool level bit-identical.

    Every scan of the pass runs through the transaction's shared
    :class:`~repro.sched.profile.SweepCursor`; in a fully-replayed
    pass the cursor's materialized states are never rebuilt at all.
    """

    name = "conservative"

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise ConfigurationError("reservation depth must be >= 1")
        self.depth = depth
        self._profile_cache = None
        #: The retained cross-pass plan (see :class:`_ReservationPlan`).
        self._plan: Optional[_ReservationPlan] = None
        #: Replay-path counters (exposed for tests and audits).
        #: ``per_node`` / ``pool`` count uses of the respective
        #: perturbation bound (as a scan-free probe proof or as a
        #: resume-at-cached-start floor); ``probe`` counts replays
        #: validated by the anchor count or a real bounded probe;
        #: ``recompute`` counts full scans.  ``retained`` additionally
        #: counts replays validated *in place* on the persistent plan
        #: (no ``add_reservation``) — it overlaps the door counters.
        self.replay_stats = {
            "retained": 0, "probe": 0, "per_node": 0, "pool": 0,
            "recompute": 0,
        }

    def on_release(
        self,
        sched: Scheduler,
        cluster,
        job: Job,
        now: float,
        version_before: int,
    ) -> Optional[float]:
        folded_end = super().on_release(sched, cluster, job, now, version_before)
        plan = self._plan
        if folded_end is not None and plan is not None:
            profile = plan.profile
            # The plan stays coherent only if it was stamped against
            # the state just before this fold (the fold bumped the
            # mutation count by one); anything else is already stale
            # and will fail the replay check on its own.
            if (
                self._profile_cache is not None
                and self._profile_cache[2] is profile
                and plan.mutations == profile.mutation_count - 1
            ):
                plan.mutations = profile.mutation_count
                if folded_end > plan.horizon:
                    plan.horizon = folded_end
                plan.fold_nodes += len(job.assigned_nodes)
                plan.fold_pool += sum(job.pool_grants.values())
        return folded_end

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        """One conservative pass: diff the queue window against the
        retained plan, validate or re-derive each entry, start what
        can start now, and retain the resulting plan for the next
        pass.  Decision-identical to rebuilding the reservation
        schedule from scratch (the differential suites enforce it).
        """
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started
        now = ctx.now
        ordered = sched.queue_policy.order(pending, now)
        allocator = sched.resolve_allocator(ctx.cluster)
        profile = self._cycle_profile(ctx, sched)
        window = ordered[: self.depth]
        entries: List[tuple] = []
        replay_stats = self.replay_stats
        # Largest breakpoint this pass's own starts can perturb: a
        # start is claimed as a reservation ending at the *estimated*
        # end during the pass and folded as a release at the
        # *realized* end afterwards; beyond the later of the two, both
        # representations evaluate identically, so the plan survives
        # the pass behind that horizon.
        pass_horizon = float("-inf")

        plan = self._plan
        cached_entries: Optional[list] = None
        cap = now
        fold_nodes = 0
        fold_pool = 0
        if (
            plan is not None
            and plan.profile is profile
            and plan.mutations == profile.mutation_count
        ):
            cached_entries = plan.entries
            if plan.horizon > cap:
                cap = plan.horizon
            fold_nodes = plan.fold_nodes
            fold_pool = plan.fold_pool
        tracking = cached_entries is not None

        # The retained fast path: the previous pass left its standing
        # reservations — and the cursor's materialized states — in the
        # profile.  While the plan is provably unchanged and no
        # retained reservation is due at or before *now*, the prefix
        # walk below validates each standing reservation in place
        # instead of re-adding it: zero reservation-index work and
        # zero cursor re-materialization for the replayed majority.
        # The cap may sit beyond *now* (completion folds re-stamp the
        # plan while raising the horizon): in-place validation then
        # rests on the scan-free bound proofs alone — the anchor-count
        # shortcut is separately guarded by ``cap <= now`` — and the
        # first entry needing a real probe or scan spills.  A plan
        # that is stale or already due spills everything up front and
        # the pass runs stock (the pre-retention behavior,
        # bit-identical).
        live = False
        if profile.reservation_count:
            first_due = profile.first_reservation_start()
            live = (
                tracking
                and plan.retained
                and first_due is not None
                and first_due > now + _EPS
            )
            if not live:
                profile.clear_reservations()
        retained = 0  # standing reservations validated so far (prefix)

        # The pass's one merged availability sweep: every scan below —
        # replay probes, per-node/pool resumes, and full scans alike —
        # runs through this cursor, sharing the materialized
        # breakpoint states across all queued jobs (and, on the
        # retained fast path, across passes).
        sweep = ctx.transaction.sweep(profile)

        def spill() -> None:
            """Drop the not-yet-validated retained suffix.

            A fresh scan or probe for entry *i* must see exactly the
            reservations of entries ahead of it — the retained claims
            of entries at or after *i* would under-count availability.
            The validated prefix (insertion indices ``0..retained-1``)
            stands exactly as the stock pass would have rebuilt it.
            """
            nonlocal live, sweep
            if live:
                live = False
                profile.truncate_reservations(retained)
                sweep = ctx.transaction.sweep(profile)

        # Resume points: while the queue prefix and the profile are
        # provably unchanged, each cached reservation is exact iff a
        # fresh scan would reject every breakpoint before its start —
        # breakpoints at or beyond the fold horizon were rejected by
        # the pass that derived the entry, and the ones below it (plus
        # the new *now*) are re-evaluated by a bounded probe through
        # the very same scan code.  A recompute that reproduces the
        # cached entry exactly leaves the pass state where the cache
        # assumed it, so replay resumes behind it.
        #
        # The per-node bound is the second replay door: since the
        # entries were derived, availability below a cached start can
        # only have *risen* through a bounded set of node releases —
        # completion folds (``fold_nodes`` nodes freed early) and
        # in-pass result divergences (the superseded reservation's
        # claims leave the timeline; everything else the replay
        # permits only removes availability).  An entry whose original
        # scan rejected every breakpoint before its start with at most
        # ``m_bound`` achievable free nodes therefore still has no
        # start below it while ``m_bound`` plus those releases stays
        # under the job's node demand — so the fresh scan can resume
        # *at* the cached start instead of walking the whole prefix,
        # however far out the fold time horizon sits.
        #
        # The pool-level bound is the third door, for entries the
        # per-node sentinel excludes (their scans rejected some
        # breakpoints on pool capacity).  Sound only when the
        # allocator's verdict is node-identity-independent — the
        # global allocator's plan is a pure function of the global
        # pool level and the node count, so placement identity drift
        # under freed nodes cannot flip it.  A pool-capacity rejection
        # then flips only if pool availability rose below the horizon:
        # completion folds carrying grants and superseded reservations
        # carrying grants are the only such sources the replay
        # permits (``fold_pool`` / ``c_pool``); node-only folds leave
        # every pool level bit-identical, and reservations planted
        # meanwhile only consume pool.  Count-limited rejections are
        # still covered by the count-only bound ``p_bound``.
        c_extra = 0  # pass-local node releases from divergences
        c_pool = 0   # pass-local pool MiB released by divergences
        start_ends: dict = {}  # job_id -> in-pass claim end, per start
        claims: List[Reservation] = []  # in-pass claims, removed at teardown
        pool_door = type(allocator) is GlobalPoolAllocator

        # On a pool-unmetered machine, pool pressure is identically
        # zero, so a job's duration estimate is a pure function of its
        # request shape: a cached entry's duration is byte-identical
        # to a fresh estimate by construction, and the revalidation
        # below can reuse it without recomputing.
        unmetered = not ctx.cluster.has_metered_pools

        for index, job in enumerate(window):
            split = sched.split_for(job, ctx.cluster)
            entry = None
            if tracking:
                if index < len(cached_entries):
                    entry = cached_entries[index]
                    if entry[0] is not job:
                        # Queue order diverged: positions no longer
                        # correspond, so the remaining cached claims
                        # cannot be bounded — stop consulting them.
                        tracking = False
                        entry = None
                else:
                    tracking = False
            if entry is not None and unmetered:
                dur = entry[2]
            else:
                dur = sched.est_duration(job, ctx.cluster, split=split)
            # Durations are pressure-dependent on metered machines, so
            # a cached entry is only usable while the job's estimate
            # is byte-identical to a fresh one.
            res_after: Optional[float] = None
            m_floor = 0
            p_floor: Optional[int] = None
            if entry is not None and entry[2] == dur:
                cached_res = entry[1]
                if cached_res is None:
                    # Static verdict (cannot fit the machine at all);
                    # replaying it skips the scan the stock loop would
                    # burn re-deriving None.
                    entries.append(entry)
                    continue
                if cached_res.start > cap + _EPS:
                    if live and (
                        retained >= profile.reservation_count
                        or profile.reservation_at(retained) is not cached_res
                    ):  # pragma: no cover - defensive; invariant-kept
                        spill()
                    # The probe's whole range [now, cap] lies strictly
                    # below the cached start, so the perturbation
                    # bounds that justify resuming *at* the start also
                    # prove the probe's verdict without running it:
                    # every breakpoint in the range was rejected by
                    # the deriving scan, and since then availability
                    # rose by at most ``fold_nodes + c_extra`` nodes
                    # (per-node proof) and — under the pool door —
                    # zero pool MiB (pool proof).  Failing both, a
                    # probe capped at *now* still has one candidate —
                    # the anchor — so a free-node count below the
                    # demand decides it with one compare.  (On the
                    # retained fast path no reservation is active at
                    # the anchor, so that count is identical with or
                    # without the standing suffix.)  Only when every
                    # scan-free proof fails does the real bounded
                    # probe run — against the validated prefix alone.
                    door = "probe"
                    if (
                        entry[4] is not None
                        and entry[4] + fold_nodes + c_extra < job.nodes
                    ):
                        probe = None
                        door = "per_node"
                    elif (
                        pool_door
                        and entry[5] is not None
                        and not fold_pool
                        and not c_pool
                        and entry[5] + fold_nodes + c_extra < job.nodes
                    ):
                        probe = None
                        door = "pool"
                    elif cap <= now and sweep.count_at_anchor() < job.nodes:
                        probe = None
                    else:
                        spill()
                        probe = sweep.earliest_start(
                            job, dur, split.remote, sched.placement,
                            allocator, not_after=cap,
                        )
                    if probe is None:
                        if live:
                            # Already standing at exactly this
                            # insertion position: validate in place.
                            retained += 1
                            replay_stats["retained"] += 1
                        else:
                            profile.add_reservation(cached_res)
                        replay_stats[door] += 1
                        ctx.record_promise(job.job_id, cached_res.start)
                        # Age the bounds by every release accrued
                        # since the entry was derived; pool releases
                        # void the (binary) pool-level premise.
                        m_bound = entry[4]
                        if m_bound is not None:
                            m_bound = m_bound + fold_nodes + c_extra
                        p_bound = entry[5]
                        if p_bound is not None:
                            if fold_pool or c_pool:
                                p_bound = None
                            else:
                                p_bound = p_bound + fold_nodes + c_extra
                        entries.append(
                            (job, cached_res, dur, entry[3], m_bound, p_bound)
                        )
                        continue
                    # Startable at or before the cap: fall through to
                    # the fresh scan (which will find that start).
                elif cached_res.start > now + _EPS:
                    if (
                        entry[4] is not None
                        and entry[4] + fold_nodes + c_extra < job.nodes
                    ):
                        # Per-node bound holds: no breakpoint below
                        # the cached start can satisfy the job even
                        # with every early-freed node, so the fresh
                        # scan may resume at the cached start —
                        # bit-identical to a full scan, minus its
                        # rejected prefix.
                        res_after = cached_res.start
                        m_floor = entry[4] + fold_nodes + c_extra
                        replay_stats["per_node"] += 1
                    elif (
                        pool_door
                        and entry[4] is not None
                        and entry[5] is not None
                        and not fold_pool
                        and not c_pool
                        and entry[5] + fold_nodes + c_extra < job.nodes
                    ):
                        # Pool-level bound holds: every count-limited
                        # rejection below the cached start stays
                        # count-limited, and every pool-capacity
                        # rejection stays capacity-limited because no
                        # pool MiB returned below the horizon.
                        res_after = cached_res.start
                        m_floor = entry[4] + fold_nodes + c_extra
                        p_floor = entry[5] + fold_nodes + c_extra
                        replay_stats["pool"] += 1
            if res_after is None:
                replay_stats["recompute"] += 1
            spill()
            res = sweep.earliest_start(
                job, dur, split.remote, sched.placement, allocator,
                after=res_after,
            )
            max_reject = sweep.last_scan_max_reject
            if max_reject < m_floor:
                max_reject = m_floor
            # Pool-level bound for the new entry: the count-only
            # maximum over the scanned segment and the resumed
            # prefix, kept only when a pool-capacity rejection
            # occurred in either.
            if sweep.last_scan_pool_rejects or p_floor is not None:
                p_bound = sweep.last_scan_count_reject
                prefix_floor = p_floor if p_floor is not None else m_floor
                if p_bound < prefix_floor:
                    p_bound = prefix_floor
            else:
                p_bound = None
            if entry is None or entry[2] != dur or res != entry[1]:
                # This position diverged from the cached plan.  The
                # divergence perturbs evaluation only below the later
                # of the two reservations' ends, so later cached
                # entries stay usable behind an escalated probe cap;
                # for the perturbation bounds it acts like a fold
                # freeing the superseded reservation's nodes and
                # grants (the replacement only adds claims).
                if entry is not None and entry[1] is not None:
                    old_res = entry[1]
                    if old_res.end > cap:
                        cap = old_res.end
                    c_extra += len(old_res.node_ids)
                    for _pool_id, amount in old_res.pool_grants:
                        c_pool += amount
                if res is not None and res.end > cap:
                    cap = res.end
            entries.append((job, res, dur, split.remote, max_reject, p_bound))
            if res is None:
                continue  # cannot run even empty; engine rejects at submit
            if res.start <= now + _EPS:
                decision = StartDecision(
                    job=job,
                    node_ids=res.node_ids,
                    plan=res.plan,
                    split=split,
                )
                if sched.gate.permit(ctx, sched, decision):
                    ctx.start_job(decision)
                    started.append(decision)
                    start_ends[job.job_id] = now + dur
                    entries.pop()  # started jobs leave the queue
                    if now + dur > pass_horizon:
                        pass_horizon = now + dur
                    if now + dur > cap:
                        cap = now + dur  # the claim below perturbs to here
                    claim = Reservation(
                        job.job_id,
                        now,
                        now + dur,
                        res.node_ids,
                        res.pool_grants,
                    )
                    claims.append(claim)
                    profile.add_reservation(claim)
                    continue
                # Gate said wait: fall through to reserving its slot so
                # lower-priority jobs cannot squat on it.
            profile.add_reservation(res)
            if res.start > now + _EPS:
                ctx.record_promise(job.job_id, res.start)

        if live and retained < profile.reservation_count:  # pragma: no cover
            # Defensive: the window ended with cached entries
            # unvisited (a pending set can only shrink through starts,
            # which spill first) — their claims were never validated.
            profile.truncate_reservations(retained)

        # Teardown: the release sweep underneath is durable, and so —
        # now — are the standing reservations: they are *retained* for
        # the next pass's fast path instead of cleared and re-derived.
        # Only the in-pass claims of started jobs leave (each is
        # replaced by an ``apply_start`` fold at the realized
        # dilation, exactly what a fresh build would see), restoring
        # the "fresh build at current cluster state plus the standing
        # plan" invariant the caches rest on.
        m_poison = False
        for claim in claims:
            profile.remove_reservation(claim)
        for decision in started:
            job = decision.job
            est_end = job.start_time + sched.duration_of_running(job)
            profile.apply_start(decision.node_ids, decision.plan, est_end)
            if est_end > pass_horizon:
                pass_horizon = est_end
            if est_end < start_ends[job.job_id]:
                # The realized fold ends before the in-pass claim did
                # (pressure drift on a metered machine): availability
                # *rose* in between, which the perturbation bounds
                # cannot see — the time cap covers it, the counters do
                # not.  Void them; the probe path is unaffected.
                m_poison = True
        if m_poison:
            entries = [
                (entry[0], entry[1], entry[2], entry[3], None, None)
                for entry in entries
            ]
        self._profile_cache = (ctx.cluster, ctx.cluster.version, profile)
        self._plan = _ReservationPlan(
            profile, profile.mutation_count, pass_horizon, entries,
            retained=True,
        )
        return started


def backfill_for(name: str, memory_aware: bool = True, depth: Optional[int] = None):
    """Strategy factory used by :func:`repro.sched.base.build_scheduler`."""
    name = name.lower()
    if name in ("none", "nobackfill", "fcfs"):
        return NoBackfill()
    if name == "easy":
        return EasyBackfill(depth=depth or 128, memory_aware=memory_aware)
    if name in ("conservative", "cons"):
        return ConservativeBackfill(depth=depth or 64)
    raise ConfigurationError(
        f"unknown backfill strategy {name!r}; choose none/easy/conservative"
    )

"""Backfill strategies: none, EASY, conservative.

All three walk the queue in policy order and start jobs through the
context callback (so the cluster mutates as the pass proceeds).  They
differ in what happens when a job cannot start:

* **none** — the queue head blocks everything behind it (pure FCFS
  dispatch, the 1990s baseline that motivates backfilling);
* **EASY** — the head gets a *shadow* reservation at its earliest
  feasible time; later jobs may start now iff they cannot push that
  shadow back.  Our shadow accounts for pool memory as well as nodes
  (``memory_aware=True``); with ``memory_aware=False`` the reservation
  covers nodes only, reproducing a classic scheduler that treats
  memory as free — the pathology the paper quantifies;
* **conservative** — every queued job (up to ``depth``) gets a
  reservation; a job may start now only if doing so respects all
  reservations ahead of it.

EASY's no-delay check is implemented by *hypothesis testing*: add the
candidate as a reservation on a fresh profile and recompute the head's
earliest start.  That is more expensive than the textbook "extra
nodes" arithmetic but remains exact in the presence of the memory
dimension and placement identity, where the textbook shortcut is not.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..errors import ConfigurationError
from ..workload.job import Job, JobState
from .base import Scheduler, SchedulerContext, StartDecision
from .profile import Reservation

__all__ = [
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "ConservativeBackfill",
    "backfill_for",
]

_EPS = 1e-6


class BackfillStrategy(abc.ABC):
    """One scheduling cycle's queue-walking logic."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        ...

    # ------------------------------------------------------------------
    @staticmethod
    def _start_in_order(
        ctx: SchedulerContext, sched: Scheduler
    ) -> List[StartDecision]:
        """Start queue-order jobs while the next one fits; stop at the
        first blocked job.  Shared phase 1 of every strategy."""
        started: List[StartDecision] = []
        while True:
            pending = ctx.pending()
            if not pending:
                return started
            ordered = sched.queue_policy.order(pending, ctx.now)
            decision = sched.try_start_now(ctx, ordered[0])
            if decision is None:
                return started
            ctx.start_job(decision)
            started.append(decision)


class NoBackfill(BackfillStrategy):
    """Head-of-line blocking dispatch."""

    name = "none"

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        return self._start_in_order(ctx, sched)


class EasyBackfill(BackfillStrategy):
    """EASY backfilling with a memory-aware shadow reservation.

    ``depth`` caps how many queued candidates are examined per cycle
    (production schedulers do the same to bound cycle latency).
    """

    name = "easy"

    def __init__(self, depth: int = 128, memory_aware: bool = True) -> None:
        if depth < 1:
            raise ConfigurationError("backfill depth must be >= 1")
        self.depth = depth
        self.memory_aware = memory_aware

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        started = self._start_in_order(ctx, sched)
        pending = ctx.pending()
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        head, rest = ordered[0], ordered[1 : 1 + self.depth]
        allocator = sched.resolve_allocator(ctx.cluster)

        head_split = sched.split_for(head, ctx.cluster)
        head_dur = sched.est_duration(head, ctx.cluster)
        profile = sched.build_profile(ctx)
        head_res = profile.earliest_start(
            head,
            head_dur,
            head_split.remote,
            sched.placement,
            allocator,
            memory_aware=self.memory_aware,
        )
        shadow: Optional[float] = None
        if head_res is not None:
            shadow = head_res.start
            ctx.record_promise(head.job_id, shadow)

        for job in rest:
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                continue
            dur = sched.est_duration(job, ctx.cluster)
            if shadow is None or ctx.now + dur <= shadow + _EPS:
                # Finishes before the shadow: cannot delay the head.
                ctx.start_job(decision)
                started.append(decision)
                continue
            # Long candidate: start it hypothetically and see whether
            # the head could still make its shadow time.
            trial = sched.build_profile(ctx)
            trial.add_reservation(
                Reservation(
                    job_id=job.job_id,
                    start=ctx.now,
                    end=ctx.now + dur,
                    node_ids=decision.node_ids,
                    pool_grants=tuple(sorted(decision.plan.items())),
                )
            )
            head_retry = trial.earliest_start(
                head,
                head_dur,
                head_split.remote,
                sched.placement,
                allocator,
                memory_aware=self.memory_aware,
            )
            if head_retry is not None and head_retry.start <= shadow + _EPS:
                ctx.start_job(decision)
                started.append(decision)
        return started


class ConservativeBackfill(BackfillStrategy):
    """Reservation for everyone (up to ``depth``).

    The pass rebuilds the reservation schedule from scratch in queue
    order each cycle: every job gets the earliest start compatible
    with the reservations of all jobs ahead of it, and starts *now*
    exactly when that earliest start is the current instant.  Jobs
    started mid-pass are folded back in as reservations so later queue
    entries see them.  Conservative backfill is always memory-aware
    here; the memory-blind ablation is specific to EASY (T3).
    """

    name = "conservative"

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise ConfigurationError("reservation depth must be >= 1")
        self.depth = depth

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        allocator = sched.resolve_allocator(ctx.cluster)
        profile = sched.build_profile(ctx)

        for job in ordered[: self.depth]:
            split = sched.split_for(job, ctx.cluster)
            dur = sched.est_duration(job, ctx.cluster)
            res = profile.earliest_start(
                job, dur, split.remote, sched.placement, allocator
            )
            if res is None:
                continue  # cannot run even empty; engine rejects at submit
            if res.start <= ctx.now + _EPS:
                decision = StartDecision(
                    job=job,
                    node_ids=res.node_ids,
                    plan=res.plan,
                    split=split,
                )
                if sched.gate.permit(ctx, sched, decision):
                    ctx.start_job(decision)
                    started.append(decision)
                    profile.add_reservation(
                        Reservation(
                            job.job_id,
                            ctx.now,
                            ctx.now + dur,
                            res.node_ids,
                            res.pool_grants,
                        )
                    )
                    continue
                # Gate said wait: fall through to reserving its slot so
                # lower-priority jobs cannot squat on it.
            profile.add_reservation(res)
            if res.start > ctx.now + _EPS:
                ctx.record_promise(job.job_id, res.start)
        return started


def backfill_for(name: str, memory_aware: bool = True, depth: Optional[int] = None):
    """Strategy factory used by :func:`repro.sched.base.build_scheduler`."""
    name = name.lower()
    if name in ("none", "nobackfill", "fcfs"):
        return NoBackfill()
    if name == "easy":
        return EasyBackfill(depth=depth or 128, memory_aware=memory_aware)
    if name in ("conservative", "cons"):
        return ConservativeBackfill(depth=depth or 64)
    raise ConfigurationError(
        f"unknown backfill strategy {name!r}; choose none/easy/conservative"
    )

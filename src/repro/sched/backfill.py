"""Backfill strategies: none, EASY, conservative.

All three walk the queue in policy order and start jobs through the
context callback (so the cluster mutates as the pass proceeds).  They
differ in what happens when a job cannot start:

* **none** — the queue head blocks everything behind it (pure FCFS
  dispatch, the 1990s baseline that motivates backfilling);
* **EASY** — the head gets a *shadow* reservation at its earliest
  feasible time; later jobs may start now iff they cannot push that
  shadow back.  Our shadow accounts for pool memory as well as nodes
  (``memory_aware=True``); with ``memory_aware=False`` the reservation
  covers nodes only, reproducing a classic scheduler that treats
  memory as free — the pathology the paper quantifies;
* **conservative** — every queued job (up to ``depth``) gets a
  reservation; a job may start now only if doing so respects all
  reservations ahead of it.

EASY's no-delay check is implemented by *hypothesis testing*: add the
candidate as a trial reservation on the cycle's shared availability
profile and recompute the head's earliest start.  That is more
expensive than the textbook "extra nodes" arithmetic but remains exact
in the presence of the memory dimension and placement identity, where
the textbook shortcut is not.  The shared profile tracks mid-pass
starts through :meth:`AvailabilityProfile.apply_start`, so no
candidate ever pays for a profile rebuild — the trial is a pure
add-query-remove.

Queue ordering is computed **once per pass**: every policy key is a
pure function of ``(job, now)`` and ``now`` is fixed for the pass, so
the policy order of the not-yet-started jobs is the initial order with
started jobs removed — re-sorting after every start (the old behavior)
produced byte-identical decisions at O(n log n) per started job.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..memdis.split import MemorySplit
from ..workload.job import Job
from .base import Scheduler, SchedulerContext, StartDecision
from .profile import AvailabilityProfile, Reservation

__all__ = [
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "ConservativeBackfill",
    "backfill_for",
]

_EPS = 1e-6


class BackfillStrategy(abc.ABC):
    """One scheduling cycle's queue-walking logic."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        ...

    # ------------------------------------------------------------------
    @staticmethod
    def _start_in_order(
        ctx: SchedulerContext, sched: Scheduler
    ) -> Tuple[List[StartDecision], List[Job]]:
        """Start queue-order jobs while the next one fits; stop at the
        first blocked job.  Shared phase 1 of every strategy.

        Returns ``(started, remaining)`` where ``remaining`` is the
        rest of the policy order — queue keys are fixed for the pass,
        so the leftover of one sort *is* the policy order of the
        survivors and callers never re-sort.
        """
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started, []
        ordered = sched.queue_policy.order(pending, ctx.now)
        cluster = ctx.cluster
        index = 0
        while index < len(ordered):
            job = ordered[index]
            if job.nodes > cluster.free_node_count:
                break  # try_start_now would fail the same check
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                break
            ctx.start_job(decision)
            started.append(decision)
            index += 1
        return started, ordered[index:]

    @staticmethod
    def _fold_started(
        profile: AvailabilityProfile, sched: Scheduler, decision: StartDecision
    ) -> None:
        """Track a mid-pass start on the shared profile (no rebuild)."""
        job = decision.job
        profile.apply_start(
            decision.node_ids,
            decision.plan,
            job.start_time + sched.duration_of_running(job),
        )

    @staticmethod
    def _queue_head(ctx: SchedulerContext, sched: Scheduler) -> Optional[Job]:
        """The policy-order head without sorting the whole queue.

        ``min`` returns the first minimal element, exactly what a
        stable full sort would put at index 0.  Only valid for
        stateless policies (no ``order`` bookkeeping is triggered).
        """
        pending = ctx.pending()
        if not pending:
            return None
        key = sched.queue_policy.key
        now = ctx.now
        return min(pending, key=lambda job: key(job, now))


class NoBackfill(BackfillStrategy):
    """Head-of-line blocking dispatch."""

    name = "none"

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        if ctx.cluster.free_node_count == 0 and sched.queue_policy.stateless:
            return []  # every try_start_now would fail its node check
        started, _ = self._start_in_order(ctx, sched)
        return started


class EasyBackfill(BackfillStrategy):
    """EASY backfilling with a memory-aware shadow reservation.

    ``depth`` caps how many queued candidates are examined per cycle
    (production schedulers do the same to bound cycle latency).
    """

    name = "easy"

    def __init__(self, depth: int = 128, memory_aware: bool = True) -> None:
        if depth < 1:
            raise ConfigurationError("backfill depth must be >= 1")
        self.depth = depth
        self.memory_aware = memory_aware
        # Cross-cycle caches.  The profile cache is (cluster, version,
        # profile): valid exactly when the cluster is untouched since
        # the stamp and the profile rebases to the new instant — a
        # mid-pass ``apply_start`` fold is bit-equivalent to a rebuild,
        # so the cache is re-stamped after a pass's last fold.  The
        # shadow cache layers on top, keyed by the profile object, its
        # mutation count, and the head job.
        self._profile_cache: Optional[tuple] = None
        self._shadow_cache: Optional[tuple] = None

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        if ctx.cluster.free_node_count == 0 and sched.queue_policy.stateless:
            # Saturated machine: nothing can start, so the pass can
            # only matter through the head's promise — record it once.
            head = self._queue_head(ctx, sched)
            if head is not None and not ctx.has_promise(head.job_id):
                self._shadow_of(ctx, sched, head)
            return []
        started, remaining = self._start_in_order(ctx, sched)
        if not remaining:
            return started
        head, rest = remaining[0], remaining[1 : 1 + self.depth]
        allocator = sched.resolve_allocator(ctx.cluster)

        # The shadow is computed lazily: nothing between here and the
        # first feasible candidate mutates cluster state, so deferring
        # it is observable only through its cost.  On a busy machine
        # most cycles have a blocked head, an already-recorded promise,
        # and no startable candidate — those cycles now skip the
        # profile build and head scan entirely.
        profile: Optional[AvailabilityProfile] = None
        head_split = None
        head_dur = 0.0
        shadow: Optional[float] = None
        shadow_known = False

        def compute_shadow() -> None:
            nonlocal profile, head_split, head_dur, shadow, shadow_known
            profile, head_split, head_dur, shadow = self._shadow_of(
                ctx, sched, head
            )
            shadow_known = True

        if not ctx.has_promise(head.job_id):
            compute_shadow()

        free_count = ctx.cluster.free_node_count
        for job in rest:
            if job.nodes > free_count:
                continue  # try_start_now would fail the same check
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                continue
            if not shadow_known:
                compute_shadow()
            dur = sched.est_duration(job, ctx.cluster, split=decision.split)
            if shadow is None or ctx.now + dur <= shadow + _EPS:
                # Finishes before the shadow: cannot delay the head.
                ctx.start_job(decision)
                started.append(decision)
                self._fold_started(profile, sched, decision)
                free_count = ctx.cluster.free_node_count
                continue
            # Long candidate: start it hypothetically and see whether
            # the head could still make its shadow time.  The trial is
            # an add-query-remove on the shared profile; apply_start
            # has kept it equivalent to a fresh rebuild.
            trial = Reservation(
                job_id=job.job_id,
                start=ctx.now,
                end=ctx.now + dur,
                node_ids=decision.node_ids,
                pool_grants=tuple(sorted(decision.plan.items())),
            )
            profile.add_reservation(trial)
            # Bounded scan: only "can the head still start by the
            # shadow?" matters, so stop at the shadow instead of
            # walking the whole timeline on a rejection.
            head_retry = profile.earliest_start(
                head,
                head_dur,
                head_split.remote,
                sched.placement,
                allocator,
                memory_aware=self.memory_aware,
                not_after=shadow + _EPS,
            )
            profile.remove_reservation(trial)
            if head_retry is not None and head_retry.start <= shadow + _EPS:
                ctx.start_job(decision)
                started.append(decision)
                self._fold_started(profile, sched, decision)
                free_count = ctx.cluster.free_node_count
        if profile is not None:
            # Folds kept the profile bit-equivalent to a fresh build at
            # the now-current cluster state; re-stamp so the next pass
            # can reuse it even though this pass mutated the cluster.
            self._profile_cache = (ctx.cluster, ctx.cluster.version, profile)
        return started

    def _shadow_of(
        self, ctx: SchedulerContext, sched: Scheduler, head: Job
    ) -> Tuple[AvailabilityProfile, "MemorySplit", float, Optional[float]]:
        """The cycle profile plus the head's shadow, cached across
        cycles.  Returns (profile, split, duration, shadow); shadow is
        None when the head cannot fit even an empty machine.

        Cache validity argument: if the cluster version is unchanged,
        no start/finish/failure/pool mutation happened, so base
        availability and the running set are identical; availability is
        constant between the old and new instant (the first release
        lies beyond it, checked by ``rebase``), so the head stays
        infeasible up to its cached shadow — a fresh scan would return
        the same reservation start.  A shadow equal to the compute
        instant (possible under a gate veto) is never reused, because
        a fresh scan would move it to the new instant.
        """
        profile = self._cycle_profile(ctx, sched)
        cache = self._shadow_cache
        if cache is not None:
            (c_profile, c_mutations, c_head_id, c_split,
             c_dur, c_shadow, c_now) = cache
            if (
                c_profile is profile
                and c_mutations == profile.mutation_count
                and c_head_id == head.job_id
                and (c_shadow is None or c_shadow > c_now)
            ):
                return profile, c_split, c_dur, c_shadow
        cluster = ctx.cluster
        allocator = sched.resolve_allocator(cluster)
        head_split = sched.split_for(head, cluster)
        head_dur = sched.est_duration(head, cluster, split=head_split)
        head_res = profile.earliest_start(
            head,
            head_dur,
            head_split.remote,
            sched.placement,
            allocator,
            memory_aware=self.memory_aware,
        )
        shadow: Optional[float] = None
        if head_res is not None:
            shadow = head_res.start
            ctx.record_promise(head.job_id, shadow)
        self._shadow_cache = (
            profile, profile.mutation_count, head.job_id,
            head_split, head_dur, shadow, ctx.now,
        )
        return profile, head_split, head_dur, shadow

    def _cycle_profile(
        self, ctx: SchedulerContext, sched: Scheduler
    ) -> AvailabilityProfile:
        """This cycle's availability profile, reusing the cached one
        when the cluster is provably unchanged since its stamp."""
        cluster = ctx.cluster
        cache = self._profile_cache
        if cache is not None:
            c_cluster, c_version, c_profile = cache
            if (
                c_cluster is cluster
                and c_version == cluster.version
                and c_profile.rebase(ctx.now)
            ):
                return c_profile
        profile = sched.build_profile(ctx)
        self._profile_cache = (cluster, cluster.version, profile)
        return profile


class ConservativeBackfill(BackfillStrategy):
    """Reservation for everyone (up to ``depth``).

    The pass rebuilds the reservation schedule from scratch in queue
    order each cycle: every job gets the earliest start compatible
    with the reservations of all jobs ahead of it, and starts *now*
    exactly when that earliest start is the current instant.  Jobs
    started mid-pass are folded back in as reservations so later queue
    entries see them.  Conservative backfill is always memory-aware
    here; the memory-blind ablation is specific to EASY (T3).
    """

    name = "conservative"

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise ConfigurationError("reservation depth must be >= 1")
        self.depth = depth

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        allocator = sched.resolve_allocator(ctx.cluster)
        profile = sched.build_profile(ctx)

        for job in ordered[: self.depth]:
            split = sched.split_for(job, ctx.cluster)
            dur = sched.est_duration(job, ctx.cluster, split=split)
            res = profile.earliest_start(
                job, dur, split.remote, sched.placement, allocator
            )
            if res is None:
                continue  # cannot run even empty; engine rejects at submit
            if res.start <= ctx.now + _EPS:
                decision = StartDecision(
                    job=job,
                    node_ids=res.node_ids,
                    plan=res.plan,
                    split=split,
                )
                if sched.gate.permit(ctx, sched, decision):
                    ctx.start_job(decision)
                    started.append(decision)
                    profile.add_reservation(
                        Reservation(
                            job.job_id,
                            ctx.now,
                            ctx.now + dur,
                            res.node_ids,
                            res.pool_grants,
                        )
                    )
                    continue
                # Gate said wait: fall through to reserving its slot so
                # lower-priority jobs cannot squat on it.
            profile.add_reservation(res)
            if res.start > ctx.now + _EPS:
                ctx.record_promise(job.job_id, res.start)
        return started


def backfill_for(name: str, memory_aware: bool = True, depth: Optional[int] = None):
    """Strategy factory used by :func:`repro.sched.base.build_scheduler`."""
    name = name.lower()
    if name in ("none", "nobackfill", "fcfs"):
        return NoBackfill()
    if name == "easy":
        return EasyBackfill(depth=depth or 128, memory_aware=memory_aware)
    if name in ("conservative", "cons"):
        return ConservativeBackfill(depth=depth or 64)
    raise ConfigurationError(
        f"unknown backfill strategy {name!r}; choose none/easy/conservative"
    )

"""Scheduling framework: queue policies, backfill, placement, memory-awareness.

The stack, bottom to top:

* :mod:`~repro.sched.queue_policies` — who is next in line;
* :mod:`~repro.sched.profile` — when resources (nodes *and* pool
  memory) become available in the future, including reservations;
* :mod:`~repro.sched.placement` — which concrete nodes a job gets;
* :mod:`~repro.sched.backfill` — no-backfill / EASY / conservative
  strategies producing start decisions;
* :mod:`~repro.sched.memaware` — wait-vs-dilate gating policies;
* :mod:`~repro.sched.base` — the :class:`Scheduler` facade gluing the
  pieces, consumed by :class:`repro.engine.SchedulerSimulation`.
"""

from .base import Scheduler, SchedulerContext, StartDecision, build_scheduler
from .queue_policies import (
    QueuePolicy,
    FCFSPolicy,
    SJFPolicy,
    LJFPolicy,
    WFPPolicy,
    UNICEFPolicy,
    DominantSharePolicy,
    queue_policy_for,
)
from .fairshare import FairSharePolicy, UsageTracker
from .profile import AvailabilityProfile, Reservation
from .placement import (
    PlacementPolicy,
    FirstFitPlacement,
    RackPackPlacement,
    MinRemotePlacement,
    SpreadPlacement,
    placement_for,
)
from .backfill import (
    BackfillStrategy,
    NoBackfill,
    EasyBackfill,
    ConservativeBackfill,
    backfill_for,
)
from .memaware import (
    StartGate,
    AlwaysStart,
    PressureGate,
    AdaptiveGate,
    gate_for,
)

__all__ = [
    "Scheduler",
    "SchedulerContext",
    "StartDecision",
    "build_scheduler",
    "QueuePolicy",
    "FCFSPolicy",
    "SJFPolicy",
    "LJFPolicy",
    "WFPPolicy",
    "UNICEFPolicy",
    "DominantSharePolicy",
    "FairSharePolicy",
    "UsageTracker",
    "queue_policy_for",
    "AvailabilityProfile",
    "Reservation",
    "PlacementPolicy",
    "FirstFitPlacement",
    "RackPackPlacement",
    "MinRemotePlacement",
    "SpreadPlacement",
    "placement_for",
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "ConservativeBackfill",
    "backfill_for",
    "StartGate",
    "AlwaysStart",
    "PressureGate",
    "AdaptiveGate",
    "gate_for",
]

"""Queue ordering policies.

A queue policy assigns each waiting job a sort key at scheduling time;
lower keys run first.  Dynamic policies (WFP, UNICEF) rescore every
cycle because their priorities grow with waiting time — that is the
point of them: they trade raw FCFS fairness for starvation resistance
and large-job favoritism, as run at leadership facilities.

All keys end with ``(submit_time, job_id)`` so ordering is total and
deterministic regardless of policy.

**Pass-stability contract:** a key may depend only on ``(job, now)``
and on policy state that does not change while a scheduling pass runs
(job starts mutate cluster state, never queue keys; usage accounting
in fair-share settles only on job *termination*, which cannot happen
mid-pass).  The backfill strategies rely on this to sort the queue
once per pass and walk the leftover instead of re-sorting after every
start — any new policy whose key would shift mid-pass breaks that
optimization and must not be added without revisiting
``BackfillStrategy._start_in_order``.
"""

from __future__ import annotations

import abc
import math
from operator import attrgetter
from typing import List, Sequence

from ..errors import ConfigurationError
from ..workload.job import Job

__all__ = [
    "QueuePolicy",
    "FCFSPolicy",
    "SJFPolicy",
    "LJFPolicy",
    "WFPPolicy",
    "UNICEFPolicy",
    "queue_policy_for",
]


class QueuePolicy(abc.ABC):
    """Totally orders the waiting queue at a scheduling instant."""

    name: str = "abstract"

    #: True when :meth:`order` is a pure function — no bookkeeping side
    #: effects.  Strategies use this to skip ordering entirely on
    #: cycles that provably cannot start anything; a policy that keeps
    #: state in ``order`` (fair-share usage settlement) must set it to
    #: False so it still observes every cycle.
    stateless: bool = True

    #: Optional C-level sort key (an ``attrgetter``) that must induce
    #: the same total order as :meth:`key` — set it on policies whose
    #: key ignores ``now`` to skip the per-job Python callback.
    _sort_key = None

    @abc.abstractmethod
    def key(self, job: Job, now: float) -> tuple:
        """Sort key; lower runs first."""

    def order(self, queue: Sequence[Job], now: float) -> List[Job]:
        if len(queue) <= 1:
            return list(queue)
        fast_key = self._sort_key
        if fast_key is not None:
            return sorted(queue, key=fast_key)
        key = self.key
        return sorted(queue, key=lambda job: key(job, now))

    # ------------------------------------------------------------------
    # checkpoint hooks (engine snapshot/restore)
    # ------------------------------------------------------------------
    def state_dict(self):
        """JSON-able policy state for a checkpoint, or ``None``.

        Stateless policies carry nothing — a fresh instance orders
        identically.  A stateful policy (fair-share) must override
        both hooks so a restored engine reproduces the exact ordering
        keys the original would have used.
        """
        return None

    def load_state(self, state, resolve) -> None:
        """Restore :meth:`state_dict` output.  ``resolve`` maps a job
        id to the restored :class:`Job` object (policies that watch
        live job objects need the restored identities, not copies)."""
        if state is not None:  # pragma: no cover - misuse guard
            raise ConfigurationError(
                f"queue policy {self.name!r} cannot load checkpoint state"
            )


class FCFSPolicy(QueuePolicy):
    """First-come-first-served — the production default."""

    name = "fcfs"
    _sort_key = attrgetter("submit_time", "job_id")  # C-level fast path

    def key(self, job: Job, now: float) -> tuple:
        return (job.submit_time, job.job_id)


class SJFPolicy(QueuePolicy):
    """Shortest (estimated) job first — throughput-friendly, starves
    long jobs without backfill reservations."""

    name = "sjf"
    _sort_key = attrgetter("walltime", "submit_time", "job_id")

    def key(self, job: Job, now: float) -> tuple:
        return (job.walltime, job.submit_time, job.job_id)


class LJFPolicy(QueuePolicy):
    """Largest job first (by node count) — capability-machine policy."""

    name = "ljf"

    def key(self, job: Job, now: float) -> tuple:
        return (-job.nodes, job.submit_time, job.job_id)


class WFPPolicy(QueuePolicy):
    """ALCF's WFP utility: ``(wait / walltime)^3 × nodes``, descending.

    Old jobs and big jobs float to the front; the cubic makes waiting
    dominate once a job has queued a few multiples of its walltime.
    """

    name = "wfp"

    def __init__(self, exponent: float = 3.0) -> None:
        if exponent <= 0:
            raise ConfigurationError("WFP exponent must be positive")
        self.exponent = exponent

    def key(self, job: Job, now: float) -> tuple:
        wait = max(0.0, now - job.submit_time)
        score = (wait / job.walltime) ** self.exponent * job.nodes
        return (-score, job.submit_time, job.job_id)


class UNICEFPolicy(QueuePolicy):
    """UNICEF utility: ``wait / (log2(nodes) × walltime)``, descending.

    Favors small short jobs — the interactive-throughput counterpart
    to WFP (both from the ALCF scheduling literature).
    """

    name = "unicef"

    def key(self, job: Job, now: float) -> tuple:
        wait = max(0.0, now - job.submit_time)
        denom = max(1.0, math.log2(max(2, job.nodes))) * job.walltime
        return (-(wait / denom), job.submit_time, job.job_id)


class DominantSharePolicy(QueuePolicy):
    """DRF-inspired ordering: smallest dominant resource share first.

    A job's dominant share is the larger of its node share and its
    total-memory share of the machine.  Serving small-dominant-share
    jobs first is the scheduling-order analogue of Dominant Resource
    Fairness: no resource dimension lets a job class starve the other.
    Pass the actual machine capacities; the defaults match the
    evaluation's canonical 64-node / 32 TiB machine.
    """

    name = "dominant"

    def __init__(
        self,
        total_nodes: int = 64,
        total_mem: int = 32 * 1024 * 1024,  # MiB (32 TiB)
    ) -> None:
        if total_nodes <= 0 or total_mem <= 0:
            raise ConfigurationError("machine capacities must be positive")
        self.total_nodes = total_nodes
        self.total_mem = total_mem

    def key(self, job: Job, now: float) -> tuple:
        node_share = job.nodes / self.total_nodes
        mem_share = job.total_mem / self.total_mem
        return (max(node_share, mem_share), job.submit_time, job.job_id)


_POLICIES = {
    "fcfs": FCFSPolicy,
    "sjf": SJFPolicy,
    "ljf": LJFPolicy,
    "wfp": WFPPolicy,
    "unicef": UNICEFPolicy,
    "dominant": DominantSharePolicy,
}


def queue_policy_for(name: str) -> QueuePolicy:
    name = name.lower()
    if name == "fairshare":
        from .fairshare import FairSharePolicy  # deferred: avoids cycle

        return FairSharePolicy()
    cls = _POLICIES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown queue policy {name!r}; choose from "
            f"{sorted(_POLICIES) + ['fairshare']}"
        )
    return cls()

"""Future resource availability: the reservation timeline.

Backfilling needs to answer: *when, at the earliest, can this job get
its nodes **and** its pool memory, and on which nodes?*  The
:class:`AvailabilityProfile` answers it by replaying the future as
currently known:

* each running job returns its nodes and pool grants at its estimated
  end (walltime-bound, dilation-adjusted by the caller);
* each **reservation** (a promised future start) removes resources
  over its ``[start, end)`` window.

The profile is exact at node granularity — reservations hold concrete
node ids, not just counts — because rack-local pools make placement
identity matter: 16 free nodes spread over 4 racks cannot use a single
rack's pool the way 16 nodes in one rack can.

Implementation: a sorted release timeline with a cumulative sweep —
free-node set, pool levels, and released-node counts per breakpoint —
materialized lazily as queries reach deeper into the future and cached
thereafter.  Queries bisect into the cached sweep instead of replaying
all releases (the old implementation rescanned every release and
reservation per query, making ``earliest_start`` quadratic in the
running set).  Incremental mutation never invalidates the cache:

* :meth:`add_reservation` / :meth:`remove_reservation` are O(log n)
  locate + insert into sorted boundary arrays — the release sweep is
  untouched because reservations are layered on top of it at query
  time.  Reservations additionally live in a **interval index**: two
  sorted event timelines (one by start, one by end) that
  :meth:`earliest_start` walks *incrementally* while scanning
  breakpoints, maintaining the active reservation set and a claimed-
  node counter as resume state.  A scan therefore touches each
  reservation O(1) times instead of rescanning the whole list at
  every breakpoint — the fix for conservative backfill's
  O(depth²)-ish cycles, where ``depth`` reservations stand at once;
* :meth:`apply_start` folds a job started *mid-pass* into the profile
  by patching the affected prefix of the cached sweep in place —
  bit-for-bit equivalent to rebuilding from the post-start cluster,
  which is what EASY's hypothesis test previously did per candidate;
* :meth:`apply_release` is the inverse fold for a job *completion*:
  the job's release entry leaves the timeline and its resources join
  the base availability, again patching only the affected sweep
  prefix.  Strategies use it to keep a cached profile valid across
  job completions — previously the dominant rebuild trigger.

On top of the incremental index sits the **pass-shared sweep cursor**
(:class:`SweepCursor`, via :meth:`AvailabilityProfile.sweep_cursor`):
one scheduling pass runs many ``earliest_start`` scans against the
same profile, all anchored at the same instant, and every scan used to
rebuild the same sweep state (free-set copies, release folding,
reservation activation) from scratch.  The cursor materializes the
per-breakpoint availability states **once** — lazily, as deep as the
deepest scan reaches — and keeps them exact across
``add_reservation`` by patching the affected prefix in place, so a
pass walks the merged release/reservation timeline once instead of
once per queued job.  Since the reservation layer became persistent
(the conservative strategy retains its plan across passes), the
cursor's lifetime is no longer bounded by the pass either:

* ``rebase`` re-anchors a live cursor in place
  (:meth:`SweepCursor._rebase`) — materialized states are pure
  functions of their instant, so advancing the clock only retires the
  grid prefix at or before the new anchor;
* ``apply_start`` and ``apply_release`` are grid-local edits, so the
  cursor absorbs both folds in place (:meth:`SweepCursor._on_apply_start`
  / :meth:`SweepCursor._on_apply_release`): materialized states before
  the folded release time gain or lose exactly the folded node set
  (minus still-active reservation claims, for a release), states at or
  beyond it only shift their release-timeline index, and the folded
  time enters or leaves the breakpoint grid;
* ``remove_reservation`` and a reservation-dropping
  ``truncate_reservations`` recompute only the materialized states the
  dropped claims could touch (:meth:`SweepCursor._on_remove`) and
  retire grid times that stop being breakpoints;
* only ``clear_reservations`` — the stock pass's bulk teardown, which
  the retained-plan fast path avoids — still drops the cursor; the
  next scan rebuilds lazily.

All query results are bitwise identical to the brute-force oracle
(``tests/_oracles.py``); the equivalence suite enforces this on
randomized workloads, and end-to-end schedules are pinned by the
golden digests in ``tests/golden/``.

Overrun clamp: a running job whose estimate has already expired (only
possible under the ``none`` kill policy) is treated as ending shortly
after *now*; the classic "expected to end any moment" convention.
"""

from __future__ import annotations

import os

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from itertools import accumulate
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

try:  # the vectorized kernel is optional; the scalar path is complete
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

from ..workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..memdis.allocator import PoolAllocator
    from .placement import PlacementPolicy

__all__ = [
    "Reservation", "AvailabilityProfile", "SweepCursor",
    "get_kernel", "set_kernel", "set_scan_observer",
]

_OVERRUN_GRACE = 1.0  # seconds: expected end for already-overrun jobs
_EPS = 1e-9

#: Sweep-kernel selection: ``numpy`` vectorizes the cursor's
#: rejection walks over the materialized breakpoint grid, ``scalar``
#: is the pure-Python reference the differential suites anchor on,
#: and ``auto`` (the default) engages the vectorized walks only on
#: grids of at least :data:`_VEC_FLOOR` breakpoints.  All modes
#: produce bit-identical decisions and scan statistics; the flag
#: exists so a kernel regression fails a cheap parity run loudly
#: instead of leaking through a perf gate.  Selection is sampled per
#: cursor at construction (one cursor never mixes kernels mid-life).
_KERNELS = ("auto", "numpy", "scalar")

#: Grid-size floor for the ``auto`` kernel.  Vectorizing a rejection
#: walk trades a per-element Python loop (~0.3 µs/breakpoint once
#: materialized) for a handful of fixed-overhead array operations
#: (~30 µs per scan).  Re-measured on the trace-scale bench
#: (``trace_scan_kernel``: saturated 1024-node machine, near-machine-
#: width shadow scans walking the full grid): below the floor the
#: scalar walk always wins; between ~100 and ~400 breakpoints the two
#: are within host noise of each other; from ~450 up the vector walk
#: wins 1.5–2.2× and the gap widens with grid size.  The reference
#: 10k-job W-MIX simulations never exceed ~60-breakpoint grids
#: (measured p99 under 50), so ``auto`` runs them entirely on the
#: scalar walk — the vector paths are a *scale* layer for paper-grid
#: clusters with hundreds of concurrent releases, not a win at every
#: size.  ``numpy`` (forced) ignores the floor so parity suites
#: exercise the vector code on deliberately tiny grids.
_VEC_FLOOR = 96


def _default_kernel() -> str:
    name = os.environ.get("REPRO_PROFILE_KERNEL", "")
    if name:
        if name not in _KERNELS:
            raise ValueError(
                f"REPRO_PROFILE_KERNEL={name!r}: expected one of {_KERNELS}"
            )
        if name == "numpy" and _np is None:
            raise ValueError("REPRO_PROFILE_KERNEL=numpy but numpy is missing")
        if name == "auto" and _np is None:
            return "scalar"
        return name
    return "auto" if _np is not None else "scalar"


_KERNEL = _default_kernel()

#: Optional per-scan observer (see :func:`set_scan_observer`).  ``None``
#: in normal operation — the cursor's hot path pays one identity check.
_SCAN_OBSERVER: Optional[Callable[[int], None]] = None


def set_scan_observer(
    observer: Optional[Callable[[int], None]],
) -> Optional[Callable[[int], None]]:
    """Install a callback receiving every cursor scan's grid size.

    The perf harness uses this to report breakpoint-grid percentiles —
    the quantity that decides whether the ``auto`` kernel's vector
    paths engage (:data:`_VEC_FLOOR`) — without instrumenting the
    scheduler.  Pass ``None`` to uninstall; returns the previous
    observer so callers can restore it.  The observer must not mutate
    scheduler state.
    """
    global _SCAN_OBSERVER
    previous = _SCAN_OBSERVER
    _SCAN_OBSERVER = observer
    return previous


def get_kernel() -> str:
    """The sweep-kernel new cursors will use
    (``auto`` | ``numpy`` | ``scalar``)."""
    return _KERNEL


def set_kernel(name: str) -> str:
    """Select the sweep kernel for cursors built from here on; returns
    the previous selection (so tests can restore it).  ``numpy``
    forces the vector paths on every grid; ``auto`` floor-gates them
    (:data:`_VEC_FLOOR`); ``scalar`` disables them."""
    global _KERNEL
    if name not in _KERNELS:
        raise ValueError(f"unknown kernel {name!r}: expected one of {_KERNELS}")
    if name == "numpy" and _np is None:
        raise ValueError("numpy kernel requested but numpy is missing")
    if name == "auto" and _np is None:
        name = "scalar"
    previous = _KERNEL
    _KERNEL = name
    return previous


def _release_time(release: tuple) -> float:
    return release[0]


def _event_order(event: tuple) -> tuple:
    """Window-event sort key: time, then the reference tie order
    (reservation events in insertion order, start before end, then
    releases in timeline order).  The grants payload (index 4) never
    participates in comparisons."""
    return event[:4]


@dataclass(frozen=True, slots=True)
class Reservation:
    """A promised window of resources for one job."""

    job_id: int
    start: float
    end: float
    node_ids: Tuple[int, ...]
    pool_grants: Tuple[Tuple[str, int], ...]  # sorted (pool_id, MiB)

    @property
    def plan(self) -> Dict[str, int]:
        return dict(self.pool_grants)


class AvailabilityProfile:
    """Timeline of free nodes and free pool capacity.

    Built from a snapshot of the cluster plus the running set; callers
    then add (and remove) reservations.  All queries are pure — the
    profile never touches live cluster state.  :meth:`apply_start` is
    the one mutator, used when a scheduling pass starts a job and wants
    the profile to track the new cluster state without a rebuild.
    """

    def __init__(
        self,
        cluster: "Cluster",
        running: Iterable[Job],
        now: float,
        duration_of: Callable[[Job], float],
    ) -> None:
        """``duration_of(job)`` is the *total* estimated occupancy of a
        running job (e.g. its dilated walltime); the profile derives
        the remaining time from ``job.start_time``."""
        self._cluster = cluster
        self._now = now
        self._base_free: FrozenSet[int] = cluster.free_ids
        self._base_pool_free: Dict[str, int] = {
            pool.pool_id: pool.free for pool in cluster.all_pools()
        }
        # Node lists and grant dicts are referenced, not copied: both
        # are written once at job start and never mutated afterwards,
        # and the profile is ephemeral (one scheduling pass).
        releases: List[Tuple[float, Iterable[int], Dict[str, int]]] = []
        #: Any release clamped by the overrun convention?  A clamped
        #: time is a function of *this* build's ``now``, so such a
        #: profile can never be rebased to a different instant (a
        #: fresh build there would clamp differently).
        self._has_clamped_release = False
        for job in running:
            if job.start_time is None:
                continue
            est_end = job.start_time + duration_of(job)
            if est_end <= now:
                est_end = now + _OVERRUN_GRACE
                self._has_clamped_release = True
            releases.append((est_end, job.assigned_nodes, job.pool_grants))
        releases.sort(key=_release_time)  # stable: running order ties

        # The raw timeline plus a *lazily* materialized cumulative
        # sweep: most cycles only probe the first few breakpoints, so
        # cumulative states are built on demand and cached.
        self._releases = releases  # sorted (time, node_ids, grants)
        self._rel_times: List[float] = [item[0] for item in releases]
        self._rel_cum_count: List[int] = list(
            accumulate(len(item[1]) for item in releases)
        )
        self._rel_cum_free: List[FrozenSet[int]] = []  # lazy prefix
        self._rel_cum_pool: List[Dict[str, int]] = []  # lazy prefix
        # Subsequence of releases that return pool memory (window scans).
        self._grant_times: List[float] = [
            item[0] for item in releases if item[2]
        ]
        self._grant_maps: List[Dict[str, int]] = [
            item[2] for item in releases if item[2]
        ]

        self._reservations: List[Reservation] = []
        self._res_bounds: List[float] = []  # sorted starts+ends (duplicates ok)
        # Interval index: the same reservations in two sorted event
        # timelines, plus each reservation's current position in the
        # insertion-order list (the tie-order key the pool sweep uses).
        self._res_start_times: List[float] = []
        self._res_start_refs: List[Reservation] = []
        self._res_end_times: List[float] = []
        self._res_end_refs: List[Reservation] = []
        self._res_index: Dict[int, int] = {}  # id(res) -> index
        #: Bumped by :meth:`apply_start` / :meth:`apply_release`;
        #: external caches key derived results (e.g. a head shadow)
        #: on it.
        self.mutation_count = 0
        #: Pass-shared sweep cursor (see :class:`SweepCursor`); built
        #: lazily, dropped by any mutation it cannot track in place.
        self._cursor: Optional["SweepCursor"] = None

    def _ensure_swept(self, k: int) -> None:
        """Materialize cumulative sweep entries up to index ``k``."""
        cum_free = self._rel_cum_free
        cum_pool = self._rel_cum_pool
        i = len(cum_free)
        if i > k:
            return
        releases = self._releases
        cur_free = cum_free[i - 1] if i else self._base_free
        prev_pool = cum_pool[i - 1] if i else self._base_pool_free
        while i <= k:
            _, node_ids, grants = releases[i]
            cur_free = cur_free.union(node_ids)
            prev_pool = dict(prev_pool)
            if grants:
                for pool_id, amount in grants.items():
                    prev_pool[pool_id] = prev_pool.get(pool_id, 0) + amount
            cum_free.append(cur_free)
            cum_pool.append(prev_pool)
            i += 1

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def reservations(self) -> List[Reservation]:
        """A copy of the standing reservations in insertion order."""
        return list(self._reservations)

    @property
    def reservation_count(self) -> int:
        """Number of standing reservations (O(1))."""
        return len(self._reservations)

    def reservation_at(self, index: int) -> Reservation:
        """The standing reservation with insertion index ``index``.

        Insertion indices are dense and stable under removal (later
        reservations shift down) — the retained-plan walk uses this to
        identity-check each validated position.
        """
        return self._reservations[index]

    def has_release_at(self, time: float) -> bool:
        """Whether some release entry breaks exactly at ``time`` (O(log n)).

        Fold-ledger support: a completion fold at a cached scan's
        accepted breakpoint may remove that instant from the grid
        entirely — a fresh scan then answers a *different* breakpoint
        even though the instant itself stays feasible.  Callers aging
        such a cache must confirm the instant still breaks here.
        """
        i = bisect_left(self._rel_times, time)
        return i < len(self._rel_times) and self._rel_times[i] == time

    def first_reservation_start(self) -> Optional[float]:
        """Earliest standing reservation start, or None (O(1)).

        The retained-plan "nothing due yet" precondition: while every
        standing reservation starts strictly after the pass instant,
        none claims nodes at the anchor, so anchor-count probes are
        identical with or without the standing suffix.
        """
        starts = self._res_start_times
        return starts[0] if starts else None

    def sweep_cursor(self) -> "SweepCursor":
        """The shared resumable sweep over this profile.

        Created on first use and kept exact across every incremental
        mutation: ``add_reservation`` patches claims in,
        ``apply_start`` / ``apply_release`` fold release-timeline
        edits through the materialized states, ``remove_reservation``
        and a reservation-dropping ``truncate_reservations``
        recompute only the touched window, and ``rebase`` re-anchors
        the grid — so one cursor can span many passes and survive
        completion folds in between.  Only ``clear_reservations``
        drops it.  All cursor queries are bit-identical to the
        corresponding profile queries — the cursor is pure
        acceleration.
        """
        cursor = self._cursor
        if cursor is None:
            cursor = self._cursor = SweepCursor(self)
        return cursor

    def rebase(self, now: float) -> bool:
        """Advance the profile clock to a later instant, in place.

        Valid — i.e., afterwards the profile is bit-identical to a
        fresh build at ``now`` **plus the same reservations re-added in
        the same insertion order** — only when nothing happened in
        between: no cluster mutation, no release at or before the new
        instant (a fresh build would clamp an overrun), and no release
        already clamped at build time (a clamped time embeds the old
        ``now``; a fresh build at the new instant would clamp to a
        different time).  The profile checks the conditions it can see
        and returns False (leaving itself untouched) when they fail;
        the *cluster unchanged* part is the caller's contract (version
        counters).

        Standing reservations survive the rebase untouched — this is
        what lets conservative backfill keep its reservation plan (and
        the cursor's materialized states) alive across passes.  A
        reservation whose window has partly or wholly expired stays
        inert through the activity tests; whether a retained plan is
        still *usable* at the new instant (no reservation due at or
        before it) is the retaining strategy's decision, not the
        profile's.  A live sweep cursor is re-anchored in place
        (:meth:`SweepCursor._rebase`) instead of dropped: the per-
        breakpoint states are pure functions of their instant, so only
        grid times at or before the new anchor leave.
        """
        if now < self._now:
            return False
        if self._has_clamped_release:
            return False
        if self._rel_times and self._rel_times[0] <= now:
            return False
        if now != self._now:
            self._now = now
            if self._cursor is not None:
                self._cursor._rebase(now)
        return True

    def add_reservation(self, reservation: Reservation) -> Reservation:
        """Register a promised window (O(log n) index inserts).

        Insertion order is semantic: the pool sweep's tie order at
        equal instants follows it, so two profiles holding equal
        reservations in different orders can answer window queries
        differently.  The replay machinery therefore always rebuilds
        or retains reservations in queue-walk order.  A live sweep
        cursor is patched in place, never dropped.
        """
        self._res_index[id(reservation)] = len(self._reservations)
        self._reservations.append(reservation)
        insort(self._res_bounds, reservation.start)
        insort(self._res_bounds, reservation.end)
        pos = bisect_right(self._res_start_times, reservation.start)
        self._res_start_times.insert(pos, reservation.start)
        self._res_start_refs.insert(pos, reservation)
        pos = bisect_right(self._res_end_times, reservation.end)
        self._res_end_times.insert(pos, reservation.end)
        self._res_end_refs.insert(pos, reservation)
        if self._cursor is not None:
            self._cursor._on_add(reservation)
        return reservation

    def remove_reservation(self, reservation: Reservation) -> None:
        """Withdraw one reservation; later insertion indices shift
        down.  Raises ``ValueError`` when it is not registered.  A
        live sweep cursor is patched in place: the claims folded into
        its materialized states are recomputed over the withdrawn
        window only."""
        # Identity-first: the common case removes the exact object just
        # added (a pass's own claim), skipping field-wise dataclass
        # equality.  Equal reservations are interchangeable for every
        # query, so falling back to equality preserves the original
        # semantics.
        reservations = self._reservations
        for index, existing in enumerate(reservations):
            if existing is reservation:
                break
        else:
            index = reservations.index(reservation)  # ValueError as before
        actual = reservations[index]
        del reservations[index]
        res_index = self._res_index
        del res_index[id(actual)]
        for later in reservations[index:]:
            res_index[id(later)] -= 1
        for bound in (actual.start, actual.end):
            del self._res_bounds[bisect_left(self._res_bounds, bound)]
        pos = bisect_left(self._res_start_times, actual.start)
        while self._res_start_refs[pos] is not actual:
            pos += 1
        del self._res_start_times[pos]
        del self._res_start_refs[pos]
        pos = bisect_left(self._res_end_times, actual.end)
        while self._res_end_refs[pos] is not actual:
            pos += 1
        del self._res_end_times[pos]
        del self._res_end_refs[pos]
        if self._cursor is not None:
            self._cursor._on_remove((actual,))

    def clear_reservations(self) -> None:
        """Drop every reservation at once (pass teardown).

        Equivalent to ``remove_reservation`` over the whole list but
        O(count): conservative backfill lays down ``depth``
        reservations per pass and discards them all before caching the
        profile for the next cycle.
        """
        if not self._reservations:
            return
        self._reservations.clear()
        self._res_index.clear()
        self._res_bounds.clear()
        self._res_start_times.clear()
        self._res_start_refs.clear()
        self._res_end_times.clear()
        self._res_end_refs.clear()
        self._cursor = None

    def truncate_reservations(self, keep: int) -> None:
        """Drop every reservation with insertion index >= ``keep``.

        The spill primitive of the retained reservation plan: when a
        pass diverges from the plan at queue position *p*, the
        validated prefix (reservations ``0..keep-1``) stands exactly as
        the pass would have rebuilt it, while the not-yet-validated
        suffix must leave before any fresh scan runs (a scan for entry
        *p* must see only the reservations of entries ahead of it).
        ``_reservations`` is maintained in insertion-index order, so
        the suffix is precisely the tail of the list.

        A no-op when nothing needs dropping (the common "every entry
        replayed" pass).  Otherwise a live cursor is patched in place:
        the materialized states inside the dropped claims' windows are
        recomputed and grid times that stop being breakpoints leave.
        """
        reservations = self._reservations
        if keep >= len(reservations):
            return
        if keep <= 0:
            self.clear_reservations()
            return
        res_index = self._res_index
        bounds = self._res_bounds
        dropped: List[Reservation] = []
        while len(reservations) > keep:
            res = reservations.pop()
            dropped.append(res)
            del res_index[id(res)]
            for bound in (res.start, res.end):
                del bounds[bisect_left(bounds, bound)]
            pos = bisect_left(self._res_start_times, res.start)
            while self._res_start_refs[pos] is not res:
                pos += 1
            del self._res_start_times[pos]
            del self._res_start_refs[pos]
            pos = bisect_left(self._res_end_times, res.end)
            while self._res_end_refs[pos] is not res:
                pos += 1
            del self._res_end_times[pos]
            del self._res_end_refs[pos]
        if self._cursor is not None:
            self._cursor._on_remove(dropped)

    # ------------------------------------------------------------------
    def apply_start(
        self,
        node_ids: Iterable[int],
        pool_grants: Dict[str, int],
        est_end: float,
    ) -> None:
        """Fold a job started at *now* into the profile, in place.

        Equivalent to rebuilding the profile from the post-start
        cluster state: the nodes and grants leave the base availability
        and come back as a release at ``est_end``.  The cached sweep is
        patched, not rebuilt — entries strictly after the insertion
        point are unchanged (the subtraction and the new release cancel
        exactly), so only the prefix is rewritten.
        """
        if est_end <= self._now:
            est_end = self._now + _OVERRUN_GRACE
            self._has_clamped_release = True
        node_ids = tuple(node_ids)  # materialize once: consumed twice below
        node_set = frozenset(node_ids)
        grants = dict(pool_grants)
        pos = bisect_right(self._rel_times, est_end)
        swept = len(self._rel_cum_free)
        # Patch the materialized prefix: those states lose the nodes
        # and grants (the job holds them until est_end).  Entries at or
        # after the insertion point are untouched — the subtraction and
        # the new release cancel exactly — and unmaterialized entries
        # need nothing: the lazy sweep will see the updated raw arrays.
        for i in range(min(pos, swept)):
            self._rel_cum_free[i] = self._rel_cum_free[i] - node_set
            if grants:
                pool_entry = self._rel_cum_pool[i]
                for pool_id, amount in grants.items():
                    pool_entry[pool_id] = pool_entry.get(pool_id, 0) - amount
        if pos <= swept:
            # State *at* the new release equals the pre-patch state
            # after the releases preceding it (resources were free).
            # A patched prefix entry must be un-patched to recover it;
            # the base (pos == 0) has not been shrunk yet.
            if pos:
                entry_free = self._rel_cum_free[pos - 1].union(node_set)
                entry_pool = dict(self._rel_cum_pool[pos - 1])
                for pool_id, amount in grants.items():
                    entry_pool[pool_id] = entry_pool.get(pool_id, 0) + amount
            else:
                entry_free = self._base_free
                entry_pool = dict(self._base_pool_free)
            self._rel_cum_free.insert(pos, entry_free)
            self._rel_cum_pool.insert(pos, entry_pool)
        self._base_free = self._base_free - node_set
        for pool_id, amount in grants.items():
            self._base_pool_free[pool_id] = (
                self._base_pool_free.get(pool_id, 0) - amount
            )
        self._rel_times.insert(pos, est_end)
        self._releases.insert(pos, (est_end, node_ids, grants))
        released = self._rel_cum_count[pos - 1] if pos else 0
        self._rel_cum_count.insert(pos, released + len(node_set))
        for i in range(pos + 1, len(self._rel_cum_count)):
            self._rel_cum_count[i] += len(node_set)
        if grants:
            gpos = bisect_right(self._grant_times, est_end)
            self._grant_times.insert(gpos, est_end)
            self._grant_maps.insert(gpos, grants)
        self.mutation_count += 1
        if self._cursor is not None:
            self._cursor._on_apply_start(node_set, est_end)

    def apply_release(
        self,
        node_ids: Iterable[int],
        pool_grants: Dict[str, int],
        est_end: float,
    ) -> bool:
        """Fold a job *completion* into the profile, in place.

        The exact inverse of :meth:`apply_start`: the job's release
        entry (located by its estimated end plus node set) leaves the
        timeline, and its nodes and grants join the base availability.
        Materialized sweep entries strictly before the removed entry
        gain the resources; entries after it are untouched (they
        already included the release).  Equivalent to rebuilding the
        profile from the post-completion cluster state.

        Returns False — leaving the profile untouched — when the fold
        cannot be represented: a clamped (overrun) release embeds the
        build instant, and a missing entry means the caller's view of
        the running set has diverged from the profile's.
        """
        if self._has_clamped_release:
            return False
        node_tuple = tuple(node_ids)
        grants = dict(pool_grants)
        rel_times = self._rel_times
        pos = bisect_left(rel_times, est_end)
        total = len(rel_times)
        while pos < total and rel_times[pos] == est_end:
            _, entry_nodes, entry_grants = self._releases[pos]
            if (
                entry_nodes is node_ids or tuple(entry_nodes) == node_tuple
            ) and entry_grants == grants:
                break
            pos += 1
        else:
            return False
        entry_grants = self._releases[pos][2]
        node_set = frozenset(node_tuple)
        if self._rel_cum_free:
            # Unlike apply_start (mid-pass, hot sweep), releases land
            # between passes: dropping the materialized sweep is
            # cheaper than rewriting a long prefix of frozensets, and
            # the lazy sweep rebuilds on demand from the updated raw
            # timeline.
            self._rel_cum_free.clear()
            self._rel_cum_pool.clear()
        self._base_free = self._base_free | node_set
        for pool_id, amount in grants.items():
            self._base_pool_free[pool_id] = (
                self._base_pool_free.get(pool_id, 0) + amount
            )
        del rel_times[pos]
        del self._releases[pos]
        count = len(node_set)
        cum = self._rel_cum_count
        del cum[pos]
        for i in range(pos, len(cum)):
            cum[i] -= count
        if entry_grants:
            gpos = bisect_left(self._grant_times, est_end)
            while self._grant_maps[gpos] is not entry_grants:
                gpos += 1
            del self._grant_times[gpos]
            del self._grant_maps[gpos]
        self.mutation_count += 1
        if self._cursor is not None:
            self._cursor._on_apply_release(node_set, est_end)
        return True

    # ------------------------------------------------------------------
    def breakpoints(
        self, after: Optional[float] = None, not_after: Optional[float] = None
    ) -> List[float]:
        """Times at which availability can change, ascending.

        Candidate start instants for any job: *now* (or ``after``) plus
        every future release/reservation boundary.  ``not_after``
        truncates the list to boundaries at or before that time (plus
        the start instant) — callers that stop scanning there anyway
        skip the set/sort work for the excluded tail.
        """
        start = self._now if after is None else max(after, self._now)
        rel = self._rel_times
        bounds = self._res_bounds
        lo = bisect_right(rel, start)
        blo = bisect_right(bounds, start)
        hi = len(rel) if not_after is None else bisect_right(rel, not_after)
        bhi = len(bounds) if not_after is None else bisect_right(bounds, not_after)
        # Two-pointer merge with dedup of the (already sorted) release
        # and reservation-boundary tails — same list sorted(set(...))
        # would produce, without hashing every float.
        out = [start]
        last = start
        i, j = lo, blo
        while i < hi and j < bhi:
            a, b = rel[i], bounds[j]
            if a <= b:
                if a != last:
                    out.append(a)
                    last = a
                i += 1
            else:
                if b != last:
                    out.append(b)
                    last = b
                j += 1
        while i < hi:
            a = rel[i]
            if a != last:
                out.append(a)
                last = a
            i += 1
        while j < bhi:
            b = bounds[j]
            if b != last:
                out.append(b)
                last = b
            j += 1
        return out

    # ------------------------------------------------------------------
    def _nodes_at(self, time: float) -> FrozenSet[int]:
        """Free node set at instant ``time`` (cached-sweep bisect)."""
        k = bisect_right(self._rel_times, time + _EPS)
        if k:
            self._ensure_swept(k - 1)
            base = self._rel_cum_free[k - 1]
        else:
            base = self._base_free
        if not self._reservations:
            return base
        free: Optional[set] = None
        for res in self._reservations:
            if res.start <= time + _EPS and time < res.end - _EPS:
                if free is None:
                    free = set(base)
                free.difference_update(res.node_ids)
        return base if free is None else frozenset(free)

    def _pool_at(self, time: float) -> Dict[str, int]:
        """Free pool MiB at instant ``time`` (always a fresh dict)."""
        k = bisect_right(self._rel_times, time + _EPS)
        if k:
            self._ensure_swept(k - 1)
            pool = dict(self._rel_cum_pool[k - 1])
        else:
            pool = dict(self._base_pool_free)
        for res in self._reservations:
            if res.start <= time + _EPS and time < res.end - _EPS:
                for pool_id, amount in res.pool_grants:
                    pool[pool_id] = pool.get(pool_id, 0) - amount
        return pool

    def free_at(self, time: float) -> Tuple[FrozenSet[int], Dict[str, int]]:
        """Free node set and pool free MiB at instant ``time``."""
        return self._nodes_at(time), self._pool_at(time)

    # ------------------------------------------------------------------
    def _window_nodes(self, start: float, end: float) -> FrozenSet[int]:
        """Nodes free *throughout* ``[start, end)``: free at ``start``
        minus any node claimed by a reservation beginning inside the
        window (releases only add)."""
        free = self._nodes_at(start)
        if self._reservations:
            claimed: Optional[set] = None
            for res in self._reservations:
                if start + _EPS < res.start < end - _EPS:
                    if claimed is None:
                        claimed = set()
                    claimed.update(res.node_ids)
            if claimed:
                free = frozenset(free - claimed)
        return free

    @staticmethod
    def _apply_pool_events(
        pool: Dict[str, int], pool_min: Dict[str, int], events: List[tuple]
    ) -> None:
        """Sweep window events over the level series starting at
        ``pool``, folding the running per-pool minimum into
        ``pool_min`` in place.

        Event order at equal times replicates the reference
        implementation exactly (reservation events in insertion order,
        start before end, then releases in timeline order) — the
        running minimum is order-sensitive within an instant.  This is
        the single home of that tie-order contract; both window_free
        and earliest_start route through it.
        """
        events.sort(key=_event_order)
        level = dict(pool)
        for _, _, _, _, grants, sign in events:
            pairs = (
                grants.items() if isinstance(grants, dict) else dict(grants).items()
            )
            for pool_id, amount in pairs:
                level[pool_id] = level.get(pool_id, 0) + sign * amount
                if level[pool_id] < pool_min.get(pool_id, 0):
                    pool_min[pool_id] = level[pool_id]

    def _window_pool_min(self, start: float, end: float) -> Dict[str, int]:
        """Per-pool minimum free capacity over ``[start, end)``: a
        reservation starting mid-window dips availability, so the
        level series inside the window is swept tracking the minimum.
        """
        pool = self._pool_at(start)
        pool_min = dict(pool)
        if not self._reservations:
            return pool_min
        events: List[tuple] = []
        for j, res in enumerate(self._reservations):
            if start + _EPS < res.start < end - _EPS:
                events.append((res.start, 0, j, 0, res.pool_grants, -1))
            if start + _EPS < res.end < end - _EPS:
                events.append((res.end, 0, j, 1, res.pool_grants, +1))
        lo = bisect_right(self._grant_times, start + _EPS)
        hi = bisect_left(self._grant_times, end - _EPS)
        for k in range(lo, hi):
            events.append(
                (self._grant_times[k], 1, k, 0, self._grant_maps[k], +1)
            )
        if events:
            self._apply_pool_events(pool, pool_min, events)
        return pool_min

    def window_free(
        self, start: float, duration: float
    ) -> Tuple[FrozenSet[int], Dict[str, int]]:
        """Nodes free *throughout* ``[start, start+duration)`` and the
        per-pool minimum free capacity over the window."""
        end = start + duration
        return self._window_nodes(start, end), self._window_pool_min(start, end)

    # ------------------------------------------------------------------
    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
        not_after: Optional[float] = None,
    ) -> Optional[Reservation]:
        """Earliest reservation satisfying nodes (and, when
        ``memory_aware``, pool memory) for the job's whole window.

        Without ``not_after``, returns ``None`` only when the job
        cannot run even on an empty machine (too many nodes, or remote
        demand exceeding total pool reach) — callers treat that as
        "reject".  With ``not_after``, the scan stops once breakpoints
        exceed that bound and returns ``None`` — for callers that only
        need "can it start by T?" (EASY's no-delay check), which makes
        a negative answer cost a handful of breakpoints instead of a
        walk to the end of the timeline.

        The scan walks the breakpoint sweep in time order.  Two
        prunings keep it cheap without changing any answer: the
        released-node prefix sum bounds the free count from above (so
        hopeless breakpoints are skipped without materializing a set —
        release node sets are disjoint on a real cluster, and an
        overcount can only *fail* to prune), and the pool minimum (the
        expensive half of a window query) is only computed once the
        node-count check passes.

        Reservations are consumed through the interval index: the scan
        keeps the *active* reservation set (and a claimed-node
        counter) as resume state, advancing two pointers over the
        start- and end-sorted event timelines as ``t`` grows, and
        locates window-crossing events by bisect.  Each standing
        reservation is therefore touched O(1) times per scan instead
        of once per breakpoint — with ``depth`` standing reservations
        (conservative backfill) that is the difference between
        O(B + R) and O(B·R) per queued job.
        """
        nodes_needed = job.nodes
        rel_times = self._rel_times
        cum_count = self._rel_cum_count
        base_count = len(self._base_free)
        reservations = self._reservations
        releases = self._releases
        grant_times = self._grant_times
        grant_maps = self._grant_maps
        res_index = self._res_index
        start_times = self._res_start_times
        start_refs = self._res_start_refs
        end_times = self._res_end_times
        end_refs = self._res_end_refs
        num_res = len(reservations)
        # Sweep resume state, all updated incrementally as t advances:
        # the reservations active at the current t (by identity), how
        # many active claims cover each node, the released-so-far node
        # set (``avail``), and ``cur`` — available minus claimed, the
        # candidate free set maintained in place so an evaluated
        # breakpoint costs O(changes) instead of O(cluster).
        si = ei = hi_s = 0
        active: Dict[int, Reservation] = {}
        claimed: Dict[int, int] = {}
        avail: Optional[set] = None
        cur: Optional[set] = None
        last_k = 0
        # Window-start claims: reservations whose start falls inside
        # the *current* candidate window (t, t+duration).  Both window
        # edges move right as t grows, so the member set is maintained
        # by two more monotone pointers (``si`` doubles as the left
        # edge), and ``overlap`` — how many claimed-for-the-window
        # nodes are in ``cur`` — is kept exact at every mutation of
        # either side, making the rejection test O(1) per breakpoint.
        ws_claim: Dict[int, int] = {}
        overlap = 0
        # Tighten the count bound for EASY's trial shape: a single
        # reservation that is active from `now` past the scan cap and
        # whose nodes are base-free subtracts exactly its node count
        # from every window in the scan (base and releases are
        # disjoint, so the arithmetic is exact, and an upper bound can
        # only fail to prune — never prune a feasible breakpoint).
        tighten = 0
        if len(reservations) == 1 and not_after is not None:
            only = reservations[0]
            trial_nodes = frozenset(only.node_ids)
            if (
                only.start <= self._now + _EPS
                and only.end - _EPS > not_after
                and self._base_free.issuperset(trial_nodes)
            ):
                tighten = len(trial_nodes)
        for t in self.breakpoints(after=after, not_after=not_after):
            if not_after is not None and t > not_after:
                return None  # only the start instant can exceed the cap
            t_eps = t + _EPS
            k = bisect_right(rel_times, t_eps)
            if base_count + (cum_count[k - 1] if k else 0) - tighten < nodes_needed:
                continue
            end = t + duration
            end_eps = end - _EPS
            # Catch the sweep state up to t: fold releases into the
            # available set, then activate/retire reservations and
            # slide the window-start range.  The candidate free set
            # ``cur`` and the ``overlap`` counter track every change
            # in place.
            if cur is None:
                avail = set(self._base_free)
                cur = set(avail)
            while last_k < k:
                for node_id in releases[last_k][1]:
                    avail.add(node_id)
                    if node_id not in claimed and node_id not in cur:
                        cur.add(node_id)
                        if node_id in ws_claim:
                            overlap += 1
                last_k += 1
            if num_res:
                while si < num_res and start_times[si] <= t_eps:
                    res = start_refs[si]
                    if si < hi_s:
                        # Leaving the window-start range (it may also
                        # be activating, handled just below).
                        for node_id in res.node_ids:
                            left = ws_claim[node_id] - 1
                            if left:
                                ws_claim[node_id] = left
                            else:
                                del ws_claim[node_id]
                                if node_id in cur:
                                    overlap -= 1
                    si += 1
                    # Same activity test as the one-shot queries; a
                    # reservation already over by its own start never
                    # enters the active set.
                    if t < res.end - _EPS:
                        active[id(res)] = res
                        for node_id in res.node_ids:
                            held = claimed.get(node_id, 0)
                            claimed[node_id] = held + 1
                            if not held and node_id in cur:
                                cur.discard(node_id)
                                if node_id in ws_claim:
                                    overlap -= 1
                while ei < num_res and end_times[ei] - _EPS <= t:
                    res = end_refs[ei]
                    ei += 1
                    key = id(res)
                    if key in active:
                        del active[key]
                        for node_id in res.node_ids:
                            left = claimed[node_id] - 1
                            if left:
                                claimed[node_id] = left
                            else:
                                del claimed[node_id]
                                if node_id in avail and node_id not in cur:
                                    cur.add(node_id)
                                    if node_id in ws_claim:
                                        overlap += 1
                if hi_s < si:
                    hi_s = si  # starts at or before t_eps left the range
                while hi_s < num_res and start_times[hi_s] < end_eps:
                    for node_id in start_refs[hi_s].node_ids:
                        held = ws_claim.get(node_id, 0)
                        ws_claim[node_id] = held + 1
                        if not held and node_id in cur:
                            overlap += 1
                    hi_s += 1
            if len(cur) - overlap < nodes_needed:
                continue
            free = cur - ws_claim.keys() if ws_claim else cur
            # Node count passed — this breakpoint almost always wins,
            # so only here do the pool dicts and event lists get
            # built.  ``k`` positions the cached pool sweep.
            active_grants: Optional[list] = None
            events: Optional[list] = None
            if num_res:
                if active:
                    for res in active.values():
                        if res.pool_grants:
                            if active_grants is None:
                                active_grants = []
                            active_grants.append(res.pool_grants)
                for w in range(si, hi_s):
                    res = start_refs[w]
                    if events is None:
                        events = []
                    events.append(
                        (res.start, 0, res_index[id(res)], 0, res.pool_grants, -1)
                    )
                lo_e = bisect_right(end_times, t_eps)
                hi_e = bisect_left(end_times, end_eps, lo_e)
                for w in range(lo_e, hi_e):
                    res = end_refs[w]
                    if events is None:
                        events = []
                    events.append(
                        (res.end, 0, res_index[id(res)], 1, res.pool_grants, +1)
                    )
            if k:
                self._ensure_swept(k - 1)
            # Pool state at t, then the windowed minimum.
            pool = dict(self._rel_cum_pool[k - 1]) if k else dict(self._base_pool_free)
            if active_grants:
                for grant_pairs in active_grants:
                    for pool_id, amount in grant_pairs:
                        pool[pool_id] = pool.get(pool_id, 0) - amount
            pool_min = dict(pool)
            if reservations:
                lo = bisect_right(grant_times, t_eps)
                hi = bisect_left(grant_times, end_eps)
                if lo < hi:
                    if events is None:
                        events = []
                    for g in range(lo, hi):
                        events.append((grant_times[g], 1, g, 0, grant_maps[g], +1))
                if events:
                    self._apply_pool_events(pool, pool_min, events)
            node_ids = placement.select(
                self._cluster, free, nodes_needed, remote_per_node, pool_min
            )
            if node_ids is None:
                continue
            if not memory_aware or remote_per_node == 0:
                plan: Optional[Dict[str, int]] = {}
            else:
                plan = allocator.plan(
                    self._cluster, node_ids, remote_per_node, free_override=pool_min
                )
                if plan is None:
                    continue
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=end,
                node_ids=tuple(node_ids),
                pool_grants=tuple(sorted((plan or {}).items())),
            )
        return None


class SweepCursor:
    """Pass-shared resumable sweep over one profile's merged timeline.

    One scheduling pass runs many ``earliest_start`` scans against the
    same profile — EASY's shadow plus one hypothesis trial per
    candidate, conservative backfill's one scan (or replay probe) per
    queued job — and every scan is anchored at the profile instant.
    The stock scan rebuilds its sweep state per call: two free-set
    copies, release folding, and a walk over every standing
    reservation's start/end events.  The cursor hoists the *point-in-
    time* half of that state out of the scan: for each breakpoint of
    the merged grid it materializes (lazily, in grid order, only as
    deep as scans actually reach) the exact free-node set — releases
    folded in, active reservation claims folded out — plus its size
    and the release-timeline position.  Scans then reject a breakpoint
    with one integer compare, and only the *window* half (reservations
    whose start falls inside the candidate window, which depends on
    the queried duration) is computed per scan, by bisect.

    Exactness:

    * materialized states are computed with the profile's own activity
      tests (``start <= t + eps and t < end - eps``) against the same
      cached release sweep, so a grid state equals what the stock scan
      derives at that breakpoint;
    * :meth:`AvailabilityProfile.add_reservation` keeps the cursor
      live by inserting the new bounds into the grid (fresh states,
      computed directly) and subtracting the new claim from the
      materialized points inside its window — set difference is
      idempotent, so the patch is exact without claim counts;
      withdrawals (:meth:`_on_remove`) recompute the affected window
      instead, since claim folding is not invertible from the states
      alone;
    * the release folds (:meth:`_on_apply_start` /
      :meth:`_on_apply_release`) patch states with the same float
      activity predicate :meth:`_state_at` evaluates and keep the
      grid equal to ``profile.breakpoints()`` — a stale grid time
      would be a phantom scan candidate and could move decisions;
    * availability between adjacent grid times is constant (every
      release time and reservation bound ≥ *now* is a grid time), so
      evaluating a non-grid instant against the directly computed
      state is exact as well (used by ``after=`` resumes).

    Scan statistics for the conservative plan cache's replay bounds
    (all refreshed by every :meth:`earliest_start` call):

    * :attr:`last_scan_max_reject` — the per-node bound: the largest
      *achievable free-node count* observed at any rejected breakpoint
      before the accepted start (count-pruned breakpoints contribute
      their exact free count, window-rejected ones the windowed count,
      and pool-capacity rejections the job's full node demand — a
      sentinel that keeps the bound unusable, since those rejections
      are not count-limited);
    * :attr:`last_scan_count_reject` — the same maximum over the
      count-limited rejections *only* (no sentinel).  Together with
      :attr:`last_scan_pool_rejects` this feeds the pool-level bound:
      when pool-capacity rejections occurred, the count-only maximum
      still bounds every count-limited breakpoint, and the pool-
      rejected ones are bounded separately through pool-release
      accounting (see :class:`~repro.sched.backfill.
      ConservativeBackfill`);
    * :attr:`last_scan_pool_rejects` — how many breakpoints passed the
      node-count checks but were rejected by the window-accept stage.
      Placement policies never fail once the count check passed (they
      only *order* nodes), so these are pool-capacity rejections: the
      allocator could not cover the job's remote demand over the
      window.
    """

    __slots__ = ("_p", "_times", "_free", "_counts", "_k",
                 "_numpy", "_vec_floor", "_times_rev", "_grid_rev",
                 "_np_rev", "_counts_np", "_nores_cache",
                 "last_scan_max_reject", "last_scan_count_reject",
                 "last_scan_pool_rejects")

    def __init__(self, profile: AvailabilityProfile) -> None:
        self._p = profile
        #: Merged breakpoint grid (deduplicated, ascending, anchored
        #: at the profile instant) — exactly ``profile.breakpoints()``.
        self._times: List[float] = profile.breakpoints()
        # Materialized prefix, aligned with _times: exact free set,
        # its size, and bisect_right(rel_times, t + eps).
        self._free: List[FrozenSet[int]] = []
        self._counts: List[int] = []
        self._k: List[int] = []
        # Vectorized-kernel state (see module doc): the Python lists
        # stay authoritative; numpy mirrors are rebuilt lazily when a
        # revision counter says they went stale.  ``_times_rev``
        # tracks grid-structure edits only (keys the full-grid count
        # cache), ``_grid_rev`` additionally tracks materialized-state
        # edits (keys the count mirror).
        self._numpy = _KERNEL != "scalar" and _np is not None
        self._vec_floor = 0 if _KERNEL == "numpy" else _VEC_FLOOR
        self._times_rev = 0
        self._grid_rev = 0
        self._np_rev = -1
        self._counts_np = None
        self._nores_cache: Optional[tuple] = None
        self.last_scan_max_reject: int = 0
        self.last_scan_count_reject: int = 0
        self.last_scan_pool_rejects: int = 0

    # ------------------------------------------------------------------
    def _state_at(self, t: float) -> Tuple[FrozenSet[int], int]:
        """Exact (free set, release index) at instant ``t``."""
        p = self._p
        t_eps = t + _EPS
        k = bisect_right(p._rel_times, t_eps)
        if k:
            p._ensure_swept(k - 1)
            base = p._rel_cum_free[k - 1]
        else:
            base = p._base_free
        if p._reservations:
            # Only reservations that have *started* by t can be active;
            # the start-sorted timeline bounds the walk (membership of
            # the active set is unchanged, so the state is identical).
            hi = bisect_right(p._res_start_times, t_eps)
            refs = p._res_start_refs
            cur: Optional[set] = None
            for i in range(hi):
                res = refs[i]
                if t < res.end - _EPS:
                    if cur is None:
                        cur = set(base)
                    cur.difference_update(res.node_ids)
            if cur is not None:
                base = frozenset(cur)
        return base, k

    def _materialize_to(self, j: int) -> None:
        """Extend the materialized prefix through grid index ``j``."""
        free = self._free
        i = len(free)
        if i > j:
            return
        times = self._times
        counts = self._counts
        ks = self._k
        while i <= j:
            state, k = self._state_at(times[i])
            free.append(state)
            counts.append(len(state))
            ks.append(k)
            i += 1
        self._grid_rev += 1

    def _insert_point(self, pos: int) -> None:
        """Materialize a freshly inserted grid time at ``pos``."""
        state, k = self._state_at(self._times[pos])
        self._free.insert(pos, state)
        self._counts.insert(pos, len(state))
        self._k.insert(pos, k)

    def _rebase(self, now: float) -> None:
        """Re-anchor the grid at a later instant (profile rebase).

        Grid times at or before ``now`` leave — their availability
        intervals are in the past, and ``breakpoints()`` at the new
        instant excludes them — and ``now`` becomes the new anchor.
        Every retained materialized state stays exact: states are pure
        functions of their instant (the activity tests never consult
        the profile clock), so only the anchor state is new.  When the
        old grid already carried ``now`` as a breakpoint its state is
        reused verbatim; otherwise the anchor is computed directly
        against the same release sweep and reservation set.
        """
        self._times_rev += 1
        self._grid_rev += 1
        times = self._times
        drop = bisect_right(times, now)
        materialized = len(self._free)
        reuse = bool(drop) and times[drop - 1] == now
        cut = drop - 1 if reuse else drop
        if cut:
            del times[:cut]
            if materialized > cut:
                del self._free[:cut]
                del self._counts[:cut]
                del self._k[:cut]
            elif materialized:
                self._free.clear()
                self._counts.clear()
                self._k.clear()
        if not reuse:
            times.insert(0, now)
            if self._free:
                self._insert_point(0)

    def _on_add(self, res: Reservation) -> None:
        """Track a reservation added to the live profile.

        Called by ``add_reservation`` after the reservation is fully
        registered, so direct state computation for new grid points
        already sees it; the subtraction over existing points is
        idempotent for them.
        """
        self._times_rev += 1
        self._grid_rev += 1
        times = self._times
        free = self._free
        anchor = times[0]
        for bound in (res.start, res.end):
            if bound > anchor:
                pos = bisect_left(times, bound)
                if pos == len(times) or times[pos] != bound:
                    times.insert(pos, bound)
                    if pos < len(free):
                        self._insert_point(pos)
        if not free:
            return
        node_ids = res.node_ids
        counts = self._counts
        start, end = res.start, res.end
        lo = bisect_left(times, start - _EPS)
        hi = min(len(free), bisect_left(times, end))
        for j in range(lo, hi):
            t = times[j]
            if start <= t + _EPS and t < end - _EPS:
                state = free[j]
                if not state.isdisjoint(node_ids):
                    state = state.difference(node_ids)
                    free[j] = state
                    counts[j] = len(state)

    def _on_apply_start(self, node_set: FrozenSet[int], est_end: float) -> None:
        """Track an ``apply_start`` fold on the live profile, in place.

        Called after the profile's own patch completed.  The fold's
        effect on a point-in-time state is grid-local and exact:
        states strictly before the new release lose the started job's
        nodes (they left the base availability), states at or after it
        are unchanged (the subtraction and the new release cancel) but
        their release-timeline index shifts up by one, and the release
        time joins the breakpoint grid.  The activity predicate is the
        same float expression :meth:`_state_at` evaluates, so patched
        entries are bit-identical to direct recomputation.
        """
        self._times_rev += 1
        self._grid_rev += 1
        times = self._times
        free = self._free
        counts = self._counts
        ks = self._k
        for j in range(len(free)):
            if est_end <= times[j] + _EPS:
                ks[j] += 1
            else:
                state = free[j]
                if not state.isdisjoint(node_set):
                    state = state - node_set
                    free[j] = state
                    counts[j] = len(state)
        if est_end > times[0]:
            pos = bisect_left(times, est_end)
            if pos == len(times) or times[pos] != est_end:
                times.insert(pos, est_end)
                if pos < len(free):
                    self._insert_point(pos)

    def _on_apply_release(self, node_set: FrozenSet[int], est_end: float) -> None:
        """Track an ``apply_release`` fold on the live profile, in place.

        The inverse of :meth:`_on_apply_start`: states strictly before
        the removed release gain the completed job's nodes — minus any
        node a reservation active at that instant still claims — and
        states at or after it only shift their release-timeline index
        down.  The removed time leaves the grid unless another release
        or a reservation bound still lands there (a stale grid time
        would be a phantom candidate the stock scan never evaluates,
        which can move ``earliest_start`` decisions).
        """
        self._times_rev += 1
        self._grid_rev += 1
        times = self._times
        free = self._free
        counts = self._counts
        ks = self._k
        p = self._p
        claimants = [
            res for res in p._reservations
            if not node_set.isdisjoint(res.node_ids)
        ]
        for j in range(len(free)):
            t = times[j]
            if est_end <= t + _EPS:
                ks[j] -= 1
            else:
                add = node_set
                for res in claimants:
                    if res.start <= t + _EPS and t < res.end - _EPS:
                        add = add.difference(res.node_ids)
                        if not add:
                            break
                if add:
                    state = free[j] | add
                    free[j] = state
                    counts[j] = len(state)
        pos = bisect_left(times, est_end)
        if pos < len(times) and times[pos] == est_end and pos:
            if not self._is_breakpoint(est_end):
                del times[pos]
                if pos < len(free):
                    del free[pos]
                    del counts[pos]
                    del ks[pos]

    def _on_remove(self, dropped: Iterable[Reservation]) -> None:
        """Track withdrawn reservations on the live profile, in place.

        Claim folding is not invertible from the states alone (two
        claims may cover the same node), so every materialized state
        inside a dropped claim's activity window is recomputed against
        the post-removal profile — only those instants can differ.
        Dropped bounds leave the grid when nothing else lands there.
        """
        self._times_rev += 1
        self._grid_rev += 1
        times = self._times
        free = self._free
        counts = self._counts
        ks = self._k
        for j in range(len(free)):
            t = times[j]
            for res in dropped:
                if res.start <= t + _EPS and t < res.end - _EPS:
                    state, k = self._state_at(t)
                    free[j] = state
                    counts[j] = len(state)
                    ks[j] = k
                    break
        anchor = times[0]
        for res in dropped:
            for bound in (res.start, res.end):
                if bound <= anchor:
                    continue
                pos = bisect_left(times, bound)
                if pos < len(times) and times[pos] == bound:
                    if not self._is_breakpoint(bound):
                        del times[pos]
                        if pos < len(free):
                            del free[pos]
                            del counts[pos]
                            del ks[pos]

    def _is_breakpoint(self, t: float) -> bool:
        """Whether ``t`` is still a merged-timeline breakpoint of the
        current profile (some release time or reservation bound)."""
        p = self._p
        rel = p._rel_times
        i = bisect_left(rel, t)
        if i < len(rel) and rel[i] == t:
            return True
        bounds = p._res_bounds
        i = bisect_left(bounds, t)
        return i < len(bounds) and bounds[i] == t

    # -- vectorized kernel ---------------------------------------------
    @staticmethod
    def _assert_kernel_dtypes(times_arr, counts_arr) -> None:
        """Guard against silent dtype degradation in the kernel arrays.

        The breakpoint-time vector must stay float64 (an integer array
        would re-round same-instant grouping and cannot carry ``inf``
        release times) and every free-count vector must stay integer
        (a float count would make the `>=` demand compares drift).
        Checked every time a mirror is (re)built after fold patches —
        cheap, and a corruption here silently moves decisions.
        """
        if times_arr is not None and times_arr.dtype != _np.float64:
            raise AssertionError(
                f"kernel breakpoint grid degraded to {times_arr.dtype}"
            )
        if counts_arr is not None and not _np.issubdtype(
            counts_arr.dtype, _np.integer
        ):
            raise AssertionError(
                f"kernel free-count vector degraded to {counts_arr.dtype}"
            )

    def _sync_counts(self):
        """The int64 mirror of the materialized free-count prefix,
        rebuilt when any fold patch or materialization moved it."""
        if self._np_rev != self._grid_rev:
            arr = _np.asarray(self._counts, dtype=_np.int64)
            self._assert_kernel_dtypes(None, arr)
            self._counts_np = arr
            self._np_rev = self._grid_rev
        return self._counts_np

    def _nores_counts(self):
        """Exact free-count vector over the *whole* grid, valid only
        while no reservations stand: with releases alone, the state at
        ``t`` is the cached cumulative union at its release index, so
        one vectorized searchsorted positions every breakpoint at once
        and a length table finishes the counts — no per-point set
        materialization.  Cached until the grid or the release
        timeline changes (folds bump both counters)."""
        p = self._p
        key = (self._times_rev, p.mutation_count)
        cache = self._nores_cache
        if cache is not None and cache[0] == key:
            return cache[1], cache[2]
        rel = p._rel_times
        n = len(rel)
        if n:
            p._ensure_swept(n - 1)
        times_np = _np.asarray(self._times, dtype=_np.float64)
        rel_np = _np.asarray(rel, dtype=_np.float64)
        ks_all = _np.searchsorted(rel_np, times_np + _EPS, side="right")
        len_np = _np.empty(n + 1, dtype=_np.int64)
        len_np[0] = len(p._base_free)
        for i, state in enumerate(p._rel_cum_free):
            len_np[i + 1] = len(state)
        counts_all = len_np[ks_all]
        self._assert_kernel_dtypes(times_np, counts_all)
        self._nores_cache = (key, ks_all, counts_all)
        return ks_all, counts_all

    def _earliest_start_numpy(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float],
        memory_aware: bool,
        not_after: Optional[float],
        trial: Optional[Reservation],
        trial_nodes: Optional[FrozenSet[int]],
        trial_end_eps: float,
        trial_const: Optional[int],
        extra: Optional[float],
    ) -> Optional[Reservation]:
        """Vectorized no-reservation scan — bit-identical to the
        scalar loop (candidates in the same order, same rejection
        statistics), but the count-rejection walk is one searchsorted
        plus slice reductions over the full-grid count vector instead
        of a Python loop per breakpoint.

        Only entered when no reservations stand (EASY's shadow scans
        and trial probes): point-in-time counts are then monotone
        consequences of the release timeline alone, window-claim
        state is empty, and a trial overlay subtracts the constant
        ``trial_const`` while active.  Accepted candidates fetch the
        exact free set from the shared cumulative sweep in O(1); the
        materialized prefix is never forced.
        """
        p = self._p
        needed = job.nodes
        times = self._times
        now = p._now
        start = now if after is None else (after if after > now else now)
        count_reject = 0
        pool_rejects = 0
        ks_all, counts_all = self._nores_counts()
        total = len(times)
        cap = total if not_after is None else bisect_right(times, not_after)
        split = bisect_left(times, trial_end_eps) if trial is not None else 0

        def accept(t: float, k: int, fs: FrozenSet[int], cnt: int,
                   cnt0: int) -> Optional[Reservation]:
            nonlocal pool_rejects
            trial_active = trial is not None and t < trial_end_eps
            free = fs
            if trial_active and cnt != cnt0:
                free = fs.difference(trial_nodes)
            result = self._window_accept(
                t, t + _EPS, t + duration, t + duration - _EPS, k, free,
                job, remote_per_node, placement, allocator, memory_aware,
                trial, trial_active, 0, 0,
            )
            if result is None:
                pool_rejects += 1
            return result

        def direct(t: float) -> Optional[Reservation]:
            # Off-grid candidate (``after=`` anchor or the trial's
            # end): evaluated exactly as the scalar loop does.
            nonlocal count_reject
            fs, k = self._state_at(t)
            cnt0 = len(fs)
            cnt = cnt0
            if trial is not None and t < trial_end_eps:
                cnt -= trial_const
            if cnt < needed:
                if cnt > count_reject:
                    count_reject = cnt
                return None
            return accept(t, k, fs, cnt, cnt0)

        def walk_seg(lo: int, hi: int, adj: int) -> Optional[Reservation]:
            # Consume grid candidates [lo, hi) under a constant trial
            # adjustment: vector-skip the count rejections (their
            # exact maximum feeds the replay bound), accept-test the
            # survivors one by one.
            nonlocal count_reject
            j = lo
            bar = needed + adj
            while j < hi:
                seg = counts_all[j:hi]
                hits = _np.nonzero(seg >= bar)[0]
                if hits.size == 0:
                    m = int(seg.max()) - adj
                    if m > count_reject:
                        count_reject = m
                    return None
                f = int(hits[0])
                if f:
                    m = int(seg[:f].max()) - adj
                    if m > count_reject:
                        count_reject = m
                j += f
                k = int(ks_all[j])
                fs = p._rel_cum_free[k - 1] if k else p._base_free
                cnt0 = int(seg[f])
                result = accept(times[j], k, fs, cnt0 - adj, cnt0)
                if result is not None:
                    return result
                j += 1
            return None

        def walk(lo: int, hi: int) -> Optional[Reservation]:
            mid = min(max(split, lo), hi)
            if lo < mid:
                result = walk_seg(lo, mid, trial_const or 0)
                if result is not None:
                    return result
                lo = mid
            return walk_seg(lo, hi, 0)

        def scan() -> Optional[Reservation]:
            if start == times[0]:
                j0 = 0
            else:
                # Arbitrary resume anchor: evaluate it directly, then
                # continue on the grid strictly after it.
                if not_after is not None and start > not_after:
                    return None
                result = direct(start)
                if result is not None:
                    return result
                j0 = bisect_right(times, start)
            trial_end = extra
            e_pos = None
            if trial_end is not None:
                pos = bisect_left(times, trial_end)
                if pos < total and times[pos] == trial_end:
                    trial_end = None  # grid already carries this instant
                elif not_after is not None and trial_end > not_after:
                    trial_end = None  # beyond the cap: never evaluated
                else:
                    e_pos = pos
            if e_pos is not None:
                result = walk(j0, min(e_pos, cap))
                if result is not None:
                    return result
                result = direct(trial_end)
                if result is not None:
                    return result
                j0 = e_pos
            return walk(j0, cap)

        result = scan()
        self._record_scan(needed, count_reject, pool_rejects)
        return result

    # ------------------------------------------------------------------
    def count_at_anchor(self) -> int:
        """Exact free-node count at the profile instant (grid anchor).

        The O(1) short-circuit for replay probes capped at *now*: the
        anchor is such a probe's only candidate, so a count below the
        job's demand decides the whole scan without paying the scan's
        setup.
        """
        if not self._free:
            self._materialize_to(0)
        return self._counts[0]

    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
        not_after: Optional[float] = None,
        trial: Optional[Reservation] = None,
    ) -> Optional[Reservation]:
        """Bit-identical to :meth:`AvailabilityProfile.earliest_start`
        on the same profile, evaluated through the shared sweep.

        Candidate instants — the scan anchor, the grid times after it,
        and (under a trial) the trial's end — are consumed in strictly
        increasing time order, so the scan keeps the stock
        implementation's incremental shape: the window-claim state
        (reservations starting inside the candidate window) slides
        right behind two monotone pointers, while the point-in-time
        state comes from the shared materialized grid.

        ``trial`` overlays one extra reservation *without* mutating
        the profile — EASY's hypothesis test, which previously paid an
        add/query/remove round-trip per candidate.  The overlay is
        exact for trials anchored at the profile instant (EASY's
        always are): such a trial can never be a window-crossing
        reservation of any scanned breakpoint, so it contributes only
        active claims and active grants plus its end event.
        """
        p = self._p
        if trial is not None and trial.start > p._now + _EPS:
            raise ValueError("trial overlay must start at the profile instant")
        nodes_needed = job.nodes
        times = self._times
        if _SCAN_OBSERVER is not None:
            _SCAN_OBSERVER(len(times))
        now = p._now
        start = now if after is None else (after if after > now else now)
        # Rejection statistics: ``count_reject`` is the largest
        # achievable free-node count at any count-limited rejection,
        # ``pool_rejects`` counts window-accept (pool-capacity)
        # rejections.  ``last_scan_max_reject`` derives from both at
        # every exit: count-limited rejections are always below the
        # demand, so one pool rejection pins it to the demand sentinel.
        count_reject = 0
        pool_rejects = 0
        trial_nodes: Optional[FrozenSet[int]] = None
        trial_end_eps = 0.0
        trial_const: Optional[int] = None
        extra: Optional[float] = None
        if trial is not None:
            trial_nodes = frozenset(trial.node_ids)
            trial_end_eps = trial.end - _EPS
            # The trial's end is a breakpoint the stock path would
            # have gained from add_reservation; interleave it without
            # touching the shared grid.
            if trial.end > start:
                extra = trial.end
            # EASY's trial shape: no standing reservations and trial
            # nodes drawn from the base free set.  Every materialized
            # state is then a superset of the base (releases only
            # add), so the trial's overlap with any breakpoint state
            # is its full node count — an O(1) per-candidate prune.
            if not p._reservations and trial_nodes <= p._base_free:
                trial_const = len(trial_nodes)

        if (
            self._numpy
            and len(times) >= self._vec_floor
            and not p._reservations
            and (trial is None or trial_const is not None)
        ):
            # No standing reservations (EASY's regime): the whole
            # count-rejection walk vectorizes over the full grid.
            return self._earliest_start_numpy(
                job, duration, remote_per_node, placement, allocator,
                after, memory_aware, not_after, trial, trial_nodes,
                trial_end_eps, trial_const, extra,
            )

        counts = self._counts
        free_states = self._free
        ks = self._k
        reservations = p._reservations
        num_res = len(reservations)
        start_times = p._res_start_times
        start_refs = p._res_start_refs
        # Sliding window-claim state: nodes claimed by reservations
        # whose start falls strictly inside the current candidate
        # window ``(t, t + duration)``.  Both edges move right as the
        # scan advances, so membership follows two monotone pointers
        # with per-node claim counts — each reservation is touched
        # O(1) times per scan, as in the stock implementation.
        wi_lo = wi_hi = 0
        ws_claim: Dict[int, int] = {}

        pending_direct: Optional[float] = None
        if start == times[0]:
            j = 0
        else:
            # Arbitrary resume anchor (``after=``): evaluate it
            # directly, then continue on the grid strictly after it.
            pending_direct = start
            j = bisect_right(times, start)
        total = len(times)

        # Vectorized skip-runs over the already-materialized count
        # prefix (reservation regime): a grid candidate below the
        # demand is rejected before any window state moves, so a jump
        # across a rejected run — feeding its exact maximum to the
        # replay bound — is equivalent to rejecting each in turn.  The
        # mirror is synced once per scan; in-scan materialization only
        # appends past ``skip_len``, where the scalar loop resumes.
        skip_np = None
        skip_len = 0
        skip_cap: Optional[int] = None
        if self._numpy and trial is None and total >= self._vec_floor:
            skip_np = self._sync_counts()
            skip_len = len(skip_np)
            if not_after is not None:
                skip_cap = bisect_right(times, not_after)

        while True:
            if (
                skip_np is not None
                and pending_direct is None
                and j < skip_len
            ):
                hi = skip_len if skip_cap is None else min(skip_len, skip_cap)
                if j < hi:
                    seg = skip_np[j:hi]
                    hits = _np.nonzero(seg >= nodes_needed)[0]
                    f = j + int(hits[0]) if hits.size else hi
                    if f > j:
                        m = int(seg[: f - j].max())
                        if m > count_reject:
                            count_reject = m
                        j = f
            # Next candidate in time order, consumed at selection.
            if pending_direct is not None:
                t = pending_direct
                pending_direct = None
                grid_j: Optional[int] = None
            elif extra is not None and (j >= total or extra <= times[j]):
                if j < total and extra == times[j]:
                    extra = None  # grid already carries this instant
                    continue
                t = extra
                extra = None
                grid_j = None
            elif j < total:
                t = times[j]
                grid_j = j
                j += 1
            else:
                break
            if not_after is not None and t > not_after:
                break
            # Point-in-time state.
            if grid_j is not None:
                if grid_j >= len(free_states):
                    self._materialize_to(grid_j)
                fs = free_states[grid_j]
                cnt0 = counts[grid_j]
                k = ks[grid_j]
            else:
                fs, k = self._state_at(t)
                cnt0 = len(fs)
            # Trial overlay and the O(1) count prune — the
            # overwhelmingly common rejection costs two compares.
            trial_active = trial is not None and t < trial_end_eps
            cnt = cnt0
            if trial_active:
                if trial_const is not None:
                    cnt -= trial_const
                else:
                    for node_id in trial_nodes:
                        if node_id in fs:
                            cnt -= 1
            if cnt < nodes_needed:
                if cnt > count_reject:
                    count_reject = cnt
                continue
            free: FrozenSet[int] = fs
            if trial_active and cnt != cnt0:
                free = fs.difference(trial_nodes)
            t_eps = t + _EPS
            end = t + duration
            end_eps = end - _EPS
            if num_res:
                # Slide the window edges to ``(t, t + duration)``,
                # mirroring the stock pointer discipline exactly
                # (including the degenerate-window snap).
                while wi_lo < num_res and start_times[wi_lo] <= t_eps:
                    if wi_lo < wi_hi:
                        for node_id in start_refs[wi_lo].node_ids:
                            left = ws_claim[node_id] - 1
                            if left:
                                ws_claim[node_id] = left
                            else:
                                del ws_claim[node_id]
                    wi_lo += 1
                if wi_hi < wi_lo:
                    wi_hi = wi_lo
                while wi_hi < num_res and start_times[wi_hi] < end_eps:
                    for node_id in start_refs[wi_hi].node_ids:
                        ws_claim[node_id] = ws_claim.get(node_id, 0) + 1
                    wi_hi += 1
                if ws_claim:
                    windowed = cnt
                    for node_id in ws_claim:
                        if node_id in free:
                            windowed -= 1
                    if windowed < nodes_needed:
                        if windowed > count_reject:
                            count_reject = windowed
                        continue
                    if windowed != cnt:
                        free = free - ws_claim.keys()
            result = self._window_accept(
                t, t_eps, end, end_eps, k, free, job, remote_per_node,
                placement, allocator, memory_aware, trial, trial_active,
                wi_lo, wi_hi,
            )
            if result is not None:
                self._record_scan(nodes_needed, count_reject, pool_rejects)
                return result
            pool_rejects += 1
        self._record_scan(nodes_needed, count_reject, pool_rejects)
        return None

    def _record_scan(
        self, nodes_needed: int, count_reject: int, pool_rejects: int
    ) -> None:
        """Publish one scan's rejection statistics (see class doc)."""
        self.last_scan_max_reject = (
            nodes_needed if pool_rejects else count_reject
        )
        self.last_scan_count_reject = count_reject
        self.last_scan_pool_rejects = pool_rejects

    def _window_accept(
        self,
        t: float,
        t_eps: float,
        end: float,
        end_eps: float,
        k: int,
        free: FrozenSet[int],
        job: Job,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        memory_aware: bool,
        trial: Optional[Reservation],
        trial_active: bool,
        wi_lo: int,
        wi_hi: int,
    ) -> Optional[Reservation]:
        """Pool view, placement, and allocation for one candidate whose
        node count already passed — the same event tuples and tie
        order as the stock scan, so the outcome is bit-identical."""
        p = self._p
        if (
            (remote_per_node == 0 or not memory_aware)
            and not placement.uses_pool_hint
        ):
            # The job draws no pool memory (its plan is {} either way)
            # and the placement cannot observe the pool hint: the
            # windowed pool view below is unconsumed, so skip building
            # it.  Decision-invisible — ``select`` with ``None`` is
            # defined identical to ``select`` with an unread hint.
            node_ids = placement.select(
                p._cluster, free, job.nodes, remote_per_node, None
            )
            if node_ids is None:
                return None
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=end,
                node_ids=tuple(node_ids),
                pool_grants=(),
            )
        reservations = p._reservations
        has_res = bool(reservations) or trial is not None
        events: Optional[list] = None
        if k:
            p._ensure_swept(k - 1)
            pool = dict(p._rel_cum_pool[k - 1])
        else:
            pool = dict(p._base_pool_free)
        if has_res:
            res_index = p._res_index
            for res in reservations:
                if res.start <= t_eps and t < res.end - _EPS and res.pool_grants:
                    for pool_id, amount in res.pool_grants:
                        pool[pool_id] = pool.get(pool_id, 0) - amount
            if trial_active and trial.pool_grants:
                for pool_id, amount in trial.pool_grants:
                    pool[pool_id] = pool.get(pool_id, 0) - amount
            if wi_lo < wi_hi:
                start_refs = p._res_start_refs
                for w in range(wi_lo, wi_hi):
                    res = start_refs[w]
                    if events is None:
                        events = []
                    events.append(
                        (res.start, 0, res_index[id(res)], 0,
                         res.pool_grants, -1)
                    )
            end_times = p._res_end_times
            lo_e = bisect_right(end_times, t_eps)
            hi_e = bisect_left(end_times, end_eps, lo_e)
            if lo_e < hi_e:
                end_refs = p._res_end_refs
                if events is None:
                    events = []
                for w in range(lo_e, hi_e):
                    res = end_refs[w]
                    events.append(
                        (res.end, 0, res_index[id(res)], 1,
                         res.pool_grants, +1)
                    )
            if trial is not None and t_eps < trial.end < end_eps:
                # The trial's insertion-order index is the one
                # add_reservation would have assigned it: last.
                if events is None:
                    events = []
                events.append(
                    (trial.end, 0, len(reservations), 1,
                     trial.pool_grants, +1)
                )
        pool_min = dict(pool)
        if has_res:
            grant_times = p._grant_times
            lo = bisect_right(grant_times, t_eps)
            hi = bisect_left(grant_times, end_eps)
            if lo < hi:
                if events is None:
                    events = []
                grant_maps = p._grant_maps
                for g in range(lo, hi):
                    events.append(
                        (grant_times[g], 1, g, 0, grant_maps[g], +1)
                    )
            if events:
                p._apply_pool_events(pool, pool_min, events)
        node_ids = placement.select(
            p._cluster, free, job.nodes, remote_per_node, pool_min
        )
        if node_ids is None:
            return None
        if not memory_aware or remote_per_node == 0:
            plan: Optional[Dict[str, int]] = {}
        else:
            plan = allocator.plan(
                p._cluster, node_ids, remote_per_node, free_override=pool_min
            )
            if plan is None:
                return None
        return Reservation(
            job_id=job.job_id,
            start=t,
            end=end,
            node_ids=tuple(node_ids),
            pool_grants=tuple(sorted(plan.items())) if plan else (),
        )

"""Future resource availability: the reservation timeline.

Backfilling needs to answer: *when, at the earliest, can this job get
its nodes **and** its pool memory, and on which nodes?*  The
:class:`AvailabilityProfile` answers it by replaying the future as
currently known:

* each running job returns its nodes and pool grants at its estimated
  end (walltime-bound, dilation-adjusted by the caller);
* each **reservation** (a promised future start) removes resources
  over its ``[start, end)`` window.

The profile is exact at node granularity — reservations hold concrete
node ids, not just counts — because rack-local pools make placement
identity matter: 16 free nodes spread over 4 racks cannot use a single
rack's pool the way 16 nodes in one rack can.

Overrun clamp: a running job whose estimate has already expired (only
possible under the ``none`` kill policy) is treated as ending shortly
after *now*; the classic "expected to end any moment" convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..memdis.allocator import PoolAllocator
    from .placement import PlacementPolicy

__all__ = ["Reservation", "AvailabilityProfile"]

_OVERRUN_GRACE = 1.0  # seconds: expected end for already-overrun jobs
_EPS = 1e-9


@dataclass(frozen=True)
class Reservation:
    """A promised window of resources for one job."""

    job_id: int
    start: float
    end: float
    node_ids: Tuple[int, ...]
    pool_grants: Tuple[Tuple[str, int], ...]  # sorted (pool_id, MiB)

    @property
    def plan(self) -> Dict[str, int]:
        return dict(self.pool_grants)


class AvailabilityProfile:
    """Timeline of free nodes and free pool capacity.

    Built from a snapshot of the cluster plus the running set; callers
    then add (and remove) reservations.  All queries are pure — the
    profile never touches live cluster state.
    """

    def __init__(
        self,
        cluster: "Cluster",
        running: Iterable[Job],
        now: float,
        duration_of: Callable[[Job], float],
    ) -> None:
        """``duration_of(job)`` is the *total* estimated occupancy of a
        running job (e.g. its dilated walltime); the profile derives
        the remaining time from ``job.start_time``."""
        self._cluster = cluster
        self._now = now
        self._base_free: FrozenSet[int] = frozenset(
            node.node_id for node in cluster.free_nodes()
        )
        self._base_pool_free: Dict[str, int] = {
            pool.pool_id: pool.free for pool in cluster.all_pools()
        }
        # (time, node_ids returned, {pool: MiB returned})
        self._releases: List[Tuple[float, Tuple[int, ...], Dict[str, int]]] = []
        for job in running:
            if job.start_time is None:
                continue
            est_end = job.start_time + duration_of(job)
            if est_end <= now:
                est_end = now + _OVERRUN_GRACE
            self._releases.append(
                (est_end, tuple(job.assigned_nodes), dict(job.pool_grants))
            )
        self._releases.sort(key=lambda item: item[0])
        self._reservations: List[Reservation] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def reservations(self) -> List[Reservation]:
        return list(self._reservations)

    def add_reservation(self, reservation: Reservation) -> Reservation:
        self._reservations.append(reservation)
        return reservation

    def remove_reservation(self, reservation: Reservation) -> None:
        self._reservations.remove(reservation)

    # ------------------------------------------------------------------
    def breakpoints(self, after: Optional[float] = None) -> List[float]:
        """Times at which availability can change, ascending.

        Candidate start instants for any job: *now* (or ``after``) plus
        every future release/reservation boundary.
        """
        start = self._now if after is None else max(after, self._now)
        times = {start}
        for time, _, _ in self._releases:
            if time > start:
                times.add(time)
        for res in self._reservations:
            if res.start > start:
                times.add(res.start)
            if res.end > start:
                times.add(res.end)
        return sorted(times)

    # ------------------------------------------------------------------
    def free_at(self, time: float) -> Tuple[FrozenSet[int], Dict[str, int]]:
        """Free node set and pool free MiB at instant ``time``."""
        free = set(self._base_free)
        pool = dict(self._base_pool_free)
        for rel_time, node_ids, grants in self._releases:
            if rel_time <= time + _EPS:
                free.update(node_ids)
                for pool_id, amount in grants.items():
                    pool[pool_id] = pool.get(pool_id, 0) + amount
        for res in self._reservations:
            if res.start <= time + _EPS and time < res.end - _EPS:
                free.difference_update(res.node_ids)
                for pool_id, amount in res.pool_grants:
                    pool[pool_id] = pool.get(pool_id, 0) - amount
        return frozenset(free), pool

    def window_free(
        self, start: float, duration: float
    ) -> Tuple[FrozenSet[int], Dict[str, int]]:
        """Nodes free *throughout* ``[start, start+duration)`` and the
        per-pool minimum free capacity over the window.

        Nodes: free at ``start`` minus any node claimed by a
        reservation beginning inside the window (releases only add).
        Pools: minimum of the step series over the window, because a
        reservation starting mid-window dips availability.
        """
        end = start + duration
        free, pool = self.free_at(start)
        pool_min = dict(pool)
        if self._reservations:
            claimed: set[int] = set()
            # Track pool level changes inside the window.
            events: List[Tuple[float, Dict[str, int], int]] = []
            for res in self._reservations:
                if start + _EPS < res.start < end - _EPS:
                    claimed.update(res.node_ids)
                    events.append((res.start, dict(res.pool_grants), -1))
                if start + _EPS < res.end < end - _EPS:
                    events.append((res.end, dict(res.pool_grants), +1))
            for rel_time, _, grants in self._releases:
                if start + _EPS < rel_time < end - _EPS and grants:
                    events.append((rel_time, grants, +1))
            if claimed:
                free = frozenset(free - claimed)
            if events:
                level = dict(pool)
                for _, grants, sign in sorted(events, key=lambda ev: ev[0]):
                    for pool_id, amount in grants.items():
                        level[pool_id] = level.get(pool_id, 0) + sign * amount
                        if level[pool_id] < pool_min.get(pool_id, 0):
                            pool_min[pool_id] = level[pool_id]
        return free, pool_min

    # ------------------------------------------------------------------
    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
    ) -> Optional[Reservation]:
        """Earliest reservation satisfying nodes (and, when
        ``memory_aware``, pool memory) for the job's whole window.

        Returns ``None`` only when the job cannot run even on an empty
        machine (too many nodes, or remote demand exceeding total pool
        reach) — callers treat that as "reject".
        """
        for t in self.breakpoints(after=after):
            free, pool_min = self.window_free(t, duration)
            if len(free) < job.nodes:
                continue
            node_ids = placement.select(
                self._cluster, free, job.nodes, remote_per_node, pool_min
            )
            if node_ids is None:
                continue
            if not memory_aware or remote_per_node == 0:
                plan: Optional[Dict[str, int]] = {}
            else:
                plan = allocator.plan(
                    self._cluster, node_ids, remote_per_node, free_override=pool_min
                )
                if plan is None:
                    continue
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=t + duration,
                node_ids=tuple(node_ids),
                pool_grants=tuple(sorted((plan or {}).items())),
            )
        return None

"""Start gates: the wait-vs-dilate decision.

A feasible start is not always a *good* start.  When the penalty model
is contention-sensitive, launching a remote-heavy job into a saturated
fabric dilates it (and pins the pressure high for everyone after it);
waiting a few minutes for a pool-holding job to finish may be cheaper.
A :class:`StartGate` sees each feasible :class:`StartDecision` before
it is applied and may veto it — the job stays queued and is
reconsidered at the next scheduling event.

Safety: every gate must be *live* — it may only veto while there is a
running job whose completion will change the inputs to the veto, and
each gate carries a ``max_hold`` escape hatch, so gating can never
deadlock the queue.  Experiment T5 ablates these policies.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..errors import ConfigurationError
from ..units import HOUR
from .base import Scheduler, SchedulerContext, StartDecision, pool_pressure

__all__ = ["StartGate", "AlwaysStart", "PressureGate", "AdaptiveGate", "gate_for"]


class StartGate(abc.ABC):
    """Vetoes or permits feasible start decisions."""

    name: str = "abstract"

    #: True when ``permit`` unconditionally returns True; hot paths
    #: skip the call entirely (AlwaysStart is the default gate).
    trivially_permits: bool = False

    #: Cross-pass cache for :meth:`_next_pool_release`, keyed on the
    #: cluster's **pool-release change stamps**: ``(cluster,
    #: (pool_grant_count, pool_release_count), value)`` or None.
    _release_cache: Optional[tuple] = None

    @abc.abstractmethod
    def permit(
        self, ctx: SchedulerContext, sched: Scheduler, decision: StartDecision
    ) -> bool:
        ...

    # ------------------------------------------------------------------
    def _next_pool_release(
        self, ctx: SchedulerContext, sched: Scheduler
    ) -> Optional[float]:
        """Estimated end of the earliest-finishing pool-holding job.

        Served by the pass transaction's shared cache within a pass
        (the running set only grows mid-pass, so the minimum is
        computed once and folded forward over starts instead of
        rescanned per ``permit`` call) — and *seeded across passes*
        from the gate's stamp-keyed cache: a running job's estimated
        end is fixed at start, so the minimum changes only when a
        pool-holding job starts or releases, both of which bump the
        cluster's pool-activity stamps.  While the stamps are
        unchanged, the cached value is bit-identical to a fresh
        running-set scan, and the pass skips it.
        """
        txn = ctx.transaction
        cluster = ctx.cluster
        cache = self._release_cache
        if (
            cache is not None
            and txn._pool_rel_len is None
            and cache[0] is cluster
            and cache[1] == (cluster.pool_grant_count, cluster.pool_release_count)
        ):
            # Seed the pass: jobs already running hold exactly the
            # grants they held at the cached scan, so only mid-pass
            # starts (folded forward by the transaction) can lower
            # the minimum from here.
            txn._pool_rel_len = len(ctx.running)
            txn._pool_rel_min = cache[2]
        value = txn.next_pool_release(ctx, sched)
        self._release_cache = (
            cluster,
            (cluster.pool_grant_count, cluster.pool_release_count),
            value,
        )
        return value


class AlwaysStart(StartGate):
    """No gating: start whenever feasible (the default, and what every
    classic scheduler does)."""

    name = "always"
    trivially_permits = True

    def permit(self, ctx, sched, decision):
        return True


class PressureGate(StartGate):
    """Veto remote-heavy starts while pool pressure is high.

    A decision whose grants would push pool bandwidth pressure above
    ``threshold`` waits — but only while some running job still holds
    pool memory (otherwise no relief is coming and waiting is
    pointless), and never longer than ``max_hold`` seconds.
    """

    name = "pressure"

    def __init__(self, threshold: float = 0.8, max_hold: float = 2 * HOUR) -> None:
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if max_hold < 0:
            raise ConfigurationError("max_hold must be non-negative")
        self.threshold = threshold
        self.max_hold = max_hold

    def permit(self, ctx, sched, decision):
        if decision.split.remote == 0:
            return True
        if pool_pressure(ctx.cluster, decision.plan) <= self.threshold:
            return True
        if self._next_pool_release(ctx, sched) is None:
            return True  # nothing will ever lower the pressure
        if ctx.now - decision.job.submit_time >= self.max_hold:
            return True  # escape hatch against starvation
        return False


class AdaptiveGate(StartGate):
    """Cost-based wait-vs-dilate: wait only when it is expected to pay.

    Starting now costs ``dilation_now × walltime`` extra occupancy.
    Waiting until the next pool-holding job finishes costs that wait
    plus the (lower) dilation then.  The gate vetoes exactly when the
    expected dilation saving exceeds the expected wait — with the same
    liveness guards as :class:`PressureGate`.
    """

    name = "adaptive"

    def __init__(self, max_hold: float = 2 * HOUR) -> None:
        if max_hold < 0:
            raise ConfigurationError("max_hold must be non-negative")
        self.max_hold = max_hold

    def permit(self, ctx, sched, decision):
        split = decision.split
        if split.remote == 0:
            return True
        if ctx.now - decision.job.submit_time >= self.max_hold:
            return True
        next_release = self._next_pool_release(ctx, sched)
        if next_release is None or next_release <= ctx.now:
            return True
        wait = next_release - ctx.now
        pressure_now = pool_pressure(ctx.cluster, decision.plan)
        dilation_now = sched.penalty.dilation(split.remote_fraction, pressure_now)
        # Optimistic post-release pressure: the largest pool holder
        # returns its grant; approximate with pressure from own plan
        # alone (lower bound => gate errs toward waiting only when the
        # saving is robust).
        empty_pressure = 0.0
        for pool in ctx.cluster.all_pools():
            if pool.bandwidth == float("inf"):
                continue
            own = decision.plan.get(pool.pool_id, 0)
            empty_pressure = max(empty_pressure, own / pool.bandwidth)
        dilation_later = sched.penalty.dilation(split.remote_fraction, empty_pressure)
        saving = (dilation_now - dilation_later) * decision.job.walltime
        return saving <= wait


_GATES = {
    "always": AlwaysStart,
    "pressure": PressureGate,
    "adaptive": AdaptiveGate,
}


def gate_for(name: str) -> StartGate:
    cls = _GATES.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown start gate {name!r}; choose from {sorted(_GATES)}"
        )
    return cls()

"""Scheduler facade: policy stack, decisions, and shared helpers.

A :class:`Scheduler` bundles the whole policy stack — queue order,
backfill strategy, placement, memory split, pool allocator, penalty
model, start gate, kill policy — and exposes the helpers every
backfill strategy needs (feasibility checks, duration estimates,
profile construction).  The engine hands it a
:class:`SchedulerContext` each cycle and applies the returned
decisions through the context's ``start_job`` callback *during* the
pass, so strategies always observe live state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..errors import ConfigurationError
from ..memdis.allocator import (
    GlobalPoolAllocator,
    HybridAllocator,
    PoolAllocator,
    RackLocalAllocator,
    allocator_for,
)
from ..memdis.penalty import LinearPenalty, PenaltyModel, penalty_from_dict
from ..memdis.split import LocalFirstSplit, MemorySplit, SplitPolicy
from ..workload.job import Job, JobState
from .placement import FirstFitPlacement, PlacementPolicy, placement_for
from .profile import AvailabilityProfile
from .queue_policies import FCFSPolicy, QueuePolicy, queue_policy_for

if TYPE_CHECKING:  # pragma: no cover
    from .backfill import BackfillStrategy
    from .memaware import StartGate

__all__ = [
    "KillPolicy",
    "StartDecision",
    "PassTransaction",
    "SchedulerContext",
    "Scheduler",
    "build_scheduler",
    "pool_pressure",
    "BOUND_NONE",
    "BOUND_GATE",
    "BOUND_NODES",
    "BOUND_POOL",
    "BOUND_MACHINE",
    "policy_hold_kind",
]

#: Constraint-bound taxonomy shared by the service ``advise`` endpoint
#: and the audit explanation layer (docs/AUDIT.md): the one vocabulary
#: for "what is holding this job back".
BOUND_NONE = "none"  # free nodes and pool capacity cover it right now
BOUND_GATE = "gate"  # a start gate is deliberately holding it
BOUND_NODES = "node-availability"  # waiting on busy nodes
BOUND_POOL = "pool-capacity"  # nodes are free but remote memory is not
BOUND_MACHINE = "machine-capacity"  # can never run here (reject)


def policy_hold_kind(backfill_name: str) -> str:
    """The scheduling-policy constraint that holds a *physically
    startable* job: EASY holds it behind the head job's shadow window,
    conservative behind earlier reservations, no-backfill behind
    strict queue order."""
    return {
        "easy": "shadow-window",
        "conservative": "reservation-order",
        "none": "queue-order",
    }.get(backfill_name, f"{backfill_name}-policy")


class KillPolicy(str, enum.Enum):
    """What happens when a job reaches its walltime bound.

    * ``strict`` — killed at the user walltime, dilation or not (what
      an unmodified production scheduler would do; penalizes remote
      memory twice);
    * ``dilation_aware`` — the kill bound is scaled by the same
      ``1 + dilation`` as the runtime, so disaggregation does not
      manufacture extra kills (default; keeps comparisons clean);
    * ``none`` — jobs always run to completion (idealized arm).
    """

    STRICT = "strict"
    DILATION_AWARE = "dilation_aware"
    NONE = "none"


def pool_pressure(cluster: Cluster, plan: Optional[Dict[str, int]] = None) -> float:
    """Worst-case pool bandwidth pressure, optionally after ``plan``.

    Pressure of a pool is granted MiB over its declared bandwidth
    capacity; pools with infinite bandwidth contribute zero.  The
    maximum across pools is the figure the contention penalty and the
    start gates consume.
    """
    if not cluster.has_metered_pools:
        return 0.0  # every pool has infinite bandwidth: zero pressure
    worst = 0.0
    for pool in cluster.all_pools():
        if pool.bandwidth == float("inf"):
            continue
        used = pool.used + (plan or {}).get(pool.pool_id, 0)
        worst = max(worst, used / pool.bandwidth)
    return worst


@dataclass(frozen=True)
class StartDecision:
    """A concrete, immediately applicable job start."""

    job: Job
    node_ids: Tuple[int, ...]
    plan: Dict[str, int]  # pool_id -> MiB
    split: MemorySplit

    def __post_init__(self) -> None:
        if len(self.node_ids) != self.job.nodes:
            raise ConfigurationError(
                f"decision for job {self.job.job_id} has {len(self.node_ids)} "
                f"nodes, job requested {self.job.nodes}"
            )


class PassTransaction:
    """One scheduling pass as an atomic decision unit across layers.

    The sched layer anchors the pass's **single merged availability
    sweep** here (:meth:`sweep` hands out the profile's shared
    :class:`~repro.sched.profile.SweepCursor`, so EASY and
    conservative backfill walk the release/reservation timeline once
    per pass for all queued jobs); strategies and gates share per-pass
    derived state (:meth:`next_pool_release`); and the engine reads
    :attr:`decisions` at pass end to batch-apply the calendar, ledger,
    and queue side effects in one commit
    (:meth:`repro.engine.simulation.SchedulerSimulation._commit_pass`).

    A transaction lives for exactly one pass — but the state it hands
    out increasingly *spans* passes: the sweep cursor belongs to the
    profile (which conservative backfill retains, reservations and
    materialized states included, across cycles), and the gates'
    next-pool-release scan is seeded from a stamp-keyed cross-pass
    cache (:class:`~repro.sched.memaware.StartGate`).  The transaction
    is the per-pass *access point* and consistency scope, not the
    owner of those lifetimes.  Contexts built without one (tests,
    ad-hoc tooling) create their own, so strategies can rely on it
    unconditionally.
    """

    __slots__ = ("decisions", "_pool_rel_len", "_pool_rel_min")

    def __init__(self) -> None:
        #: Start decisions in application order (read-only for
        #: strategies; appended by ``SchedulerContext.start_job``).
        self.decisions: List[StartDecision] = []
        self._pool_rel_len: Optional[int] = None
        self._pool_rel_min: Optional[float] = None

    @staticmethod
    def sweep(profile: AvailabilityProfile):
        """The pass's shared sweep cursor over ``profile``.

        Delegates to :meth:`AvailabilityProfile.sweep_cursor`; the
        profile owns the cursor's lifetime (mutations it cannot track
        in place drop it, ``rebase`` re-anchors it, and a retained
        reservation plan carries it across passes), so the
        transaction only provides the pass-scoped access point.
        """
        return profile.sweep_cursor()

    def next_pool_release(
        self, ctx: "SchedulerContext", sched: "Scheduler"
    ) -> Optional[float]:
        """Estimated end of the earliest-finishing pool-holding job.

        Computed once per pass and folded forward over mid-pass starts
        (the running list only grows during a pass), replacing the
        full running-set scan every gate ``permit`` call used to pay.
        """
        running = ctx.running
        count = len(running)
        known = self._pool_rel_len
        if known is None:
            best: Optional[float] = None
            start = 0
        else:
            best = self._pool_rel_min
            start = known
        if known is None or count > known:
            for job in running[start:count]:
                if not job.pool_grants or job.start_time is None:
                    continue
                est_end = job.start_time + sched.duration_of_running(job)
                if best is None or est_end < best:
                    best = est_end
            self._pool_rel_len = count
            self._pool_rel_min = best
        return self._pool_rel_min


class SchedulerContext:
    """Everything a strategy may consult or invoke during one cycle.

    ``pending()`` is maintained incrementally within the pass: the
    first call snapshots the queue, and every ``start_job`` removes the
    started job from the snapshot — strategies that consult the pending
    list once per started job no longer rescan the whole queue.  The
    context lives for exactly one scheduling pass (a new one is built
    per cycle, hence ``__slots__``), so the snapshot can never go stale
    across simulation events.
    """

    __slots__ = (
        "cluster", "now", "queue", "running", "transaction",
        "_apply_start", "record_promise", "has_promise", "_pending",
        "_queue_all_pending",
    )

    def __init__(
        self,
        cluster: Cluster,
        now: float,
        queue: List[Job],  # live reference: engine removes started jobs
        running: List[Job],  # live reference
        start_job: Callable[[StartDecision], None],
        record_promise: Callable[[int, float], None] = lambda job_id, start: None,
        # Whether a promise was already recorded for a job.  The engine
        # keeps only the first promise per job, so strategies may skip
        # recomputing one that exists; the default (always False) makes
        # hand-built contexts recompute every time — the safe behavior.
        has_promise: Callable[[int], bool] = lambda job_id: False,
        # The engine's queue holds only PENDING jobs by construction;
        # it sets this to skip the per-job state filter in pending().
        queue_all_pending: bool = False,
        # The engine hands in the pass transaction it will commit;
        # hand-built contexts get a private one so strategies can rely
        # on ``ctx.transaction`` unconditionally.
        transaction: Optional[PassTransaction] = None,
    ) -> None:
        self.cluster = cluster
        self.now = now
        self.queue = queue
        self.running = running
        self.transaction = (
            transaction if transaction is not None else PassTransaction()
        )
        self._apply_start = start_job
        self.record_promise = record_promise
        self.has_promise = has_promise
        self._pending: Optional[List[Job]] = None
        self._queue_all_pending = queue_all_pending

    def start_job(self, decision: StartDecision) -> None:
        """Apply a start through the engine callback and keep the
        pending snapshot current."""
        self._apply_start(decision)
        self.transaction.decisions.append(decision)
        pending = self._pending
        if pending is not None:
            job = decision.job
            for index, item in enumerate(pending):
                if item is job:
                    del pending[index]
                    break

    def pending(self) -> List[Job]:
        """PENDING jobs in queue order (live view; do not mutate)."""
        if self._pending is None:
            # Under a batch-committing engine, started jobs stay in
            # the queue list until pass commit; once any start has
            # been applied this pass, fall back to the state filter so
            # the snapshot never resurrects them.
            if self._queue_all_pending and not self.transaction.decisions:
                self._pending = list(self.queue)
            else:
                self._pending = [
                    job for job in self.queue if job.state is JobState.PENDING
                ]
        return self._pending


class Scheduler:
    """The full policy stack; one instance drives one simulation."""

    def __init__(
        self,
        queue_policy: Optional[QueuePolicy] = None,
        backfill: Optional["BackfillStrategy"] = None,
        placement: Optional[PlacementPolicy] = None,
        split_policy: Optional[SplitPolicy] = None,
        allocator: Optional[PoolAllocator] = None,
        penalty: Optional[PenaltyModel] = None,
        gate: Optional["StartGate"] = None,
        kill_policy: KillPolicy | str = KillPolicy.DILATION_AWARE,
    ) -> None:
        from .backfill import EasyBackfill  # deferred: avoids import cycle
        from .memaware import AlwaysStart

        self.queue_policy = queue_policy or FCFSPolicy()
        self.backfill = backfill or EasyBackfill()
        self.placement = placement or FirstFitPlacement()
        self.split_policy = split_policy or LocalFirstSplit()
        self._allocator = allocator  # may be None: resolved per cluster
        self.penalty = penalty or LinearPenalty()
        self.gate = gate or AlwaysStart()
        self.kill_policy = KillPolicy(kill_policy)
        # Splits are pure functions of (mem_per_node, local_mem) for a
        # fixed split policy; workloads reuse a handful of memory
        # shapes, so memoizing kills a hot-path recomputation.
        self._split_cache: Dict[Tuple[int, int], MemorySplit] = {}
        # fits_machine depends only on the request shape and *static*
        # cluster capacity (empty-machine hypothetical), so it is
        # memoized per (nodes, mem_per_node); the entry pins the
        # cluster it was computed against (identity-checked on read,
        # so switching clusters just recomputes).
        self._fits_cache: Dict[Tuple[int, int], Tuple[Cluster, bool]] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def schedule(self, ctx: SchedulerContext) -> List[StartDecision]:
        """Run one scheduling cycle; returns the applied decisions."""
        return self.backfill.run(ctx, self)

    def notify_release(
        self, cluster: Cluster, job: Job, now: float, version_before: int
    ) -> None:
        """Tell the backfill strategy a job's resources were released.

        The engine calls this immediately after the cluster mutations
        of a completion/kill (``version_before`` is the cluster
        version just before them), while the job still carries its
        grant records.  Strategies with a cross-cycle profile cache
        fold the release in place instead of rebuilding next pass;
        everything else ignores it.  Guarded by ``getattr`` so duck-
        typed strategies that predate the hook keep working.
        """
        on_release = getattr(self.backfill, "on_release", None)
        if on_release is not None:
            on_release(self, cluster, job, now, version_before)

    # ------------------------------------------------------------------
    # helpers shared by strategies
    # ------------------------------------------------------------------
    def resolve_allocator(self, cluster: Cluster) -> PoolAllocator:
        """Explicit allocator, or the natural one for the machine.

        rack+global pools → hybrid; only global → global; only rack →
        rack; no pools → global (any remote demand is then simply
        infeasible, which is the correct answer on a pool-less machine).
        """
        if self._allocator is not None:
            return self._allocator
        has_rack = any(rack.pool is not None for rack in cluster.racks)
        has_global = cluster.global_pool is not None
        if has_rack and has_global:
            self._allocator = HybridAllocator()
        elif has_rack:
            self._allocator = RackLocalAllocator()
        else:
            self._allocator = GlobalPoolAllocator()
        return self._allocator

    def split_for(self, job: Job, cluster: Cluster) -> MemorySplit:
        key = (job.mem_per_node, cluster.spec.node.local_mem)
        split = self._split_cache.get(key)
        if split is None:
            split = self.split_policy.split(key[0], key[1])
            self._split_cache[key] = split
        return split

    def est_dilation(self, job: Job, cluster: Cluster, split: Optional[MemorySplit] = None) -> float:
        """Dilation estimate for a *pending* job at current pressure."""
        split = split or self.split_for(job, cluster)
        if split.remote == 0:
            # Every penalty model maps a zero remote fraction to
            # exactly 0.0 dilation (remote memory is the only source
            # of dilation); skip the pressure computation.
            return 0.0
        return self.penalty.dilation(split.remote_fraction, pool_pressure(cluster))

    def est_duration(
        self, job: Job, cluster: Cluster, split: Optional[MemorySplit] = None
    ) -> float:
        """Occupancy bound used for reservations of pending jobs.

        Pass ``split`` when the caller already derived it (it is a
        memoized pure function, but the lookup is on the hot path).
        """
        if self.kill_policy is KillPolicy.STRICT:
            return job.walltime
        return job.walltime * (1.0 + self.est_dilation(job, cluster, split))

    def duration_of_running(self, job: Job) -> float:
        """Occupancy bound for an already-running job (dilation known)."""
        if self.kill_policy is KillPolicy.STRICT:
            return job.walltime
        return job.walltime * (1.0 + job.dilation)

    def fits_machine(self, job: Job, cluster: Cluster) -> bool:
        """Could the job run on an *empty* machine? Submission check.

        The hypothetical is evaluated entirely against static capacity:
        the placement hint and the allocator override are both the pool
        *capacities*, never live state.  (Historically the placement
        ordered by live ``pool.free``, which let ``min_remote`` admit a
        job during a favorable transient that a fully drained machine
        could never start — a liveness hole: the job sat in the queue
        forever.)  Pure in (request shape, static capacity), hence
        memoized — submission storms reuse a handful of shapes.
        """
        key = (job.nodes, job.mem_per_node)
        cached = self._fits_cache.get(key)
        if cached is not None and cached[0] is cluster:
            return cached[1]
        result = self._fits_machine_uncached(job, cluster)
        self._fits_cache[key] = (cluster, result)
        return result

    def _fits_machine_uncached(self, job: Job, cluster: Cluster) -> bool:
        if job.nodes > cluster.num_nodes:
            return False
        split = self.split_for(job, cluster)
        if split.remote == 0:
            return True
        capacities = cluster.pool_capacities()
        node_ids = self.placement.select(
            cluster, cluster.all_node_ids, job.nodes, split.remote, capacities
        )
        if node_ids is None:
            return False
        plan = self.resolve_allocator(cluster).plan(
            cluster, node_ids, split.remote, free_override=capacities
        )
        return plan is not None

    def try_start_now(
        self, ctx: SchedulerContext, job: Job, check_gate: bool = True
    ) -> Optional[StartDecision]:
        """Feasible start against *live* state, gate included."""
        cluster = ctx.cluster
        if job.nodes > cluster.free_node_count:
            return None
        split = self.split_for(job, cluster)
        free = cluster.free_ids  # maintained set: no per-call node scan
        # No pool_free hint: policies fall back to live ``pool.free``,
        # which is exactly what the hint dict would have contained.
        node_ids = self.placement.select(
            cluster, free, job.nodes, split.remote, None
        )
        if node_ids is None:
            return None
        plan: Optional[Dict[str, int]] = {}
        if split.remote > 0:
            plan = self.resolve_allocator(cluster).plan(cluster, node_ids, split.remote)
            if plan is None:
                return None
        decision = StartDecision(
            job=job, node_ids=tuple(node_ids), plan=plan, split=split
        )
        if (
            check_gate
            and not self.gate.trivially_permits
            and not self.gate.permit(ctx, self, decision)
        ):
            return None
        return decision

    def build_profile(self, ctx: SchedulerContext) -> AvailabilityProfile:
        return AvailabilityProfile(
            ctx.cluster, ctx.running, ctx.now, self.duration_of_running
        )

    def describe(self) -> Dict[str, str]:
        """Human-readable policy stack (for reports and audits)."""
        return {
            "queue": self.queue_policy.name,
            "backfill": self.backfill.name,
            "placement": self.placement.name,
            "penalty": self.penalty.name,
            "gate": self.gate.name,
            "kill": self.kill_policy.value,
            "memory_aware": str(getattr(self.backfill, "memory_aware", True)).lower(),
        }

    def strategy_stats(self) -> Dict[str, Dict[str, int]]:
        """Backfill cache/replay counters, keyed by ledger.

        EASY exposes ``shadow_stats`` (the shadow fold ledger),
        conservative ``replay_stats`` (the retained-plan replay doors).
        Pure observability — the counters never feed decisions — and
        copied, so a stored result cannot alias the live dicts.
        """
        stats: Dict[str, Dict[str, int]] = {}
        shadow = getattr(self.backfill, "shadow_stats", None)
        if shadow is not None:
            stats["shadow"] = dict(shadow)
        replay = getattr(self.backfill, "replay_stats", None)
        if replay is not None:
            stats["replay"] = dict(replay)
        return stats


def build_scheduler(
    queue: str = "fcfs",
    backfill: str = "easy",
    placement: str = "first_fit",
    allocator: Optional[str] = None,
    penalty: Optional[dict | str] = None,
    gate: str = "always",
    kill_policy: str = "dilation_aware",
    memory_aware: bool = True,
    headroom: int = 0,
) -> Scheduler:
    """String-based constructor used by configs, the CLI, and benches."""
    from .backfill import backfill_for
    from .memaware import gate_for

    return Scheduler(
        queue_policy=queue_policy_for(queue),
        backfill=backfill_for(backfill, memory_aware=memory_aware),
        placement=placement_for(placement),
        split_policy=LocalFirstSplit(headroom=headroom),
        allocator=allocator_for(allocator) if allocator else None,
        penalty=penalty_from_dict(penalty),
        gate=gate_for(gate),
        kill_policy=kill_policy,
    )

"""Fair-share queue ordering with decayed usage accounting.

Production schedulers (Slurm's priority/multifactor, LSF fairshare)
order the queue by *recent resource usage per user*: the more
node-seconds a user consumed lately, the lower their jobs sort.  Usage
decays exponentially with a configurable half-life so history fades.

In a disaggregated machine, "usage" has a second dimension — pool
memory is a shared, contended resource exactly like nodes — so the
tracker charges both node-seconds and pool-MiB-seconds, combined with
a configurable weight.  That makes this the fair-share policy a
disaggregated-memory site would actually deploy: a user hogging the
pool is charged for it even at modest node counts.

The tracker is engine-agnostic: the policy charges usage when jobs
*finish* (it observes the running set at each ordering call), so no
engine hooks are needed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from ..errors import ConfigurationError
from ..units import HOUR
from ..workload.job import Job, JobState
from .queue_policies import QueuePolicy

__all__ = ["UsageTracker", "FairSharePolicy"]


class UsageTracker:
    """Exponentially decayed per-user resource usage.

    ``charge(user, amount, at)`` adds usage; ``usage_of(user, at)``
    reads it decayed to the query instant.  Decay is applied lazily —
    each account stores ``(value, last_update)`` and is brought forward
    on touch, so idle users cost nothing to maintain.
    """

    def __init__(self, half_life: float = 24 * HOUR) -> None:
        if half_life <= 0:
            raise ConfigurationError("half_life must be positive")
        self.half_life = half_life
        self._decay = math.log(2.0) / half_life
        self._accounts: Dict[str, tuple[float, float]] = {}

    def _forward(self, user: str, at: float) -> float:
        value, last = self._accounts.get(user, (0.0, at))
        if at > last:
            value *= math.exp(-self._decay * (at - last))
        return value

    def charge(self, user: str, amount: float, at: float) -> None:
        if amount < 0:
            raise ConfigurationError("usage charge must be non-negative")
        value = self._forward(user, at)
        self._accounts[user] = (value + amount, at)

    def usage_of(self, user: str, at: float) -> float:
        if user not in self._accounts:
            return 0.0
        return self._forward(user, at)

    def snapshot(self, at: float) -> Dict[str, float]:
        return {user: self._forward(user, at) for user in self._accounts}


class FairSharePolicy(QueuePolicy):
    """Order by decayed usage, then FCFS within a user.

    ``pool_weight`` converts pool-MiB-seconds into node-second
    equivalents (default: 1 node-second per 64 GiB-second of pool,
    i.e. a job holding 64 GiB of pool is charged like one extra node).

    Usage is charged when a job is observed to have left the running
    set with a terminal state; the policy keeps a seen-set so each job
    is charged exactly once.  Ordering key: (decayed usage of the
    job's user, submit, id) — lighter users first.
    """

    name = "fairshare"
    stateless = False  # order() settles usage; must see every cycle

    def __init__(
        self,
        half_life: float = 24 * HOUR,
        pool_weight: float = 1.0 / (64 * 1024),  # node-sec per MiB-sec
    ) -> None:
        if pool_weight < 0:
            raise ConfigurationError("pool_weight must be non-negative")
        self.tracker = UsageTracker(half_life=half_life)
        self.pool_weight = pool_weight
        self._charged: set[int] = set()
        self._watched: Dict[int, Job] = {}

    # ------------------------------------------------------------------
    def observe(self, jobs: Iterable[Job], now: float) -> None:
        """Explicitly register/charge jobs (tests and offline use).

        Normal operation does not need this: :meth:`order` watches
        every job it sees in the queue and settles it once terminal.
        """
        for job in jobs:
            if job.job_id in self._charged:
                continue
            if job.state.terminal and job.start_time is not None:
                self._charge(job, now)
            else:
                self._watched.setdefault(job.job_id, job)

    def _charge(self, job: Job, now: float) -> None:
        if job.job_id in self._charged or job.end_time is None:
            return
        duration = job.end_time - job.start_time
        node_seconds = job.nodes * duration
        pool_mib_seconds = sum(job.pool_grants.values()) * duration
        usage = node_seconds + self.pool_weight * pool_mib_seconds
        self.tracker.charge(job.user, usage, at=job.end_time)
        self._charged.add(job.job_id)
        self._watched.pop(job.job_id, None)

    def _settle(self, now: float) -> None:
        finished = [
            job for job in self._watched.values()
            if job.state.terminal and job.start_time is not None
        ]
        for job in finished:
            self._charge(job, now)

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Exact usage-accounting state for an engine checkpoint.

        Accounts are copied verbatim (value + last-update pairs), the
        charged set pins exactly-once semantics across the restore,
        and the watch list keeps its *insertion order* — settlement
        charges users in watch order, and per-user charge order is
        what the decayed tracker is sensitive to.
        """
        return {
            "accounts": {
                user: [value, last]
                for user, (value, last) in self.tracker._accounts.items()
            },
            "charged": sorted(self._charged),
            "watched": list(self._watched),
        }

    def load_state(self, state: Dict, resolve) -> None:
        self.tracker._accounts = {
            user: (float(value), float(last))
            for user, (value, last) in state["accounts"].items()
        }
        self._charged = set(state["charged"])
        self._watched = {}
        for job_id in state["watched"]:
            job = resolve(job_id)
            if job is not None:
                self._watched[job_id] = job

    # ------------------------------------------------------------------
    def key(self, job: Job, now: float) -> tuple:
        usage = self.tracker.usage_of(job.user, now)
        return (usage, job.submit_time, job.job_id)

    def order(self, queue: Sequence[Job], now: float) -> List[Job]:
        # Watch everything passing through the queue; a watched job's
        # object is the same one the engine mutates, so termination is
        # visible here and charged exactly once.
        for job in queue:
            self._watched.setdefault(job.job_id, job)
        self._settle(now)
        return super().order(queue, now)

"""Node selection policies.

Given the set of free nodes, a placement policy picks the concrete
nodes a job will occupy.  On a homogeneous machine the choice is
irrelevant to the job itself — what it changes is **pool locality**:
with rack-local pools, the racks a job spans determine which pools
absorb its remote memory, so packing versus spreading moves pool
pressure around.  Experiment T4 ablates exactly this.

Policies return node-id lists in deterministic order, or ``None`` when
they cannot produce a placement (fewer free nodes than requested).
They never check pool capacity — that is the allocator's job — but
pool-aware policies use the free-capacity hint for *ordering*.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Mapping, Optional

from ..cluster.cluster import Cluster
from ..errors import ConfigurationError

__all__ = [
    "PlacementPolicy",
    "FirstFitPlacement",
    "RackPackPlacement",
    "MinRemotePlacement",
    "SpreadPlacement",
    "placement_for",
]


class PlacementPolicy(abc.ABC):
    """Chooses concrete nodes for a job from the free set."""

    name: str = "abstract"

    #: Does :meth:`select` read the ``pool_free`` hint at all?  Hot
    #: paths skip building the (expensive) windowed pool view for jobs
    #: that need no pool memory when the placement cannot observe it —
    #: decision-invisible by construction.  Policies that order nodes
    #: by pool capacity (min_remote) set this True.
    uses_pool_hint: bool = False

    @abc.abstractmethod
    def select(
        self,
        cluster: Cluster,
        free_nodes: FrozenSet[int],
        count: int,
        remote_per_node: int,
        pool_free: Optional[Mapping[str, int]] = None,
    ) -> Optional[List[int]]:
        """Pick ``count`` nodes from ``free_nodes`` or return ``None``.

        ``remote_per_node`` and ``pool_free`` are hints for pool-aware
        ordering; capacity enforcement happens in the allocator.
        """

    @staticmethod
    def _sorted_ids(cluster: Cluster, free_nodes: FrozenSet[int]) -> List[int]:
        """``sorted(free_nodes)``, served from the cluster's cache when
        the caller passed the live free set (identity check — the
        values are the same either way)."""
        if free_nodes is cluster.free_ids:
            return cluster.sorted_free_ids()
        if free_nodes is cluster.all_node_ids:
            return cluster.sorted_all_ids()
        return sorted(free_nodes)

    @classmethod
    def _by_rack(cls, cluster: Cluster, free_nodes: FrozenSet[int]) -> Dict[int, List[int]]:
        racks: Dict[int, List[int]] = {}
        nodes = cluster.nodes
        for node_id in cls._sorted_ids(cluster, free_nodes):
            racks.setdefault(nodes[node_id].rack_id, []).append(node_id)
        return racks


class FirstFitPlacement(PlacementPolicy):
    """Lowest node ids first — the neutral baseline."""

    name = "first_fit"

    def select(self, cluster, free_nodes, count, remote_per_node, pool_free=None):
        if len(free_nodes) < count:
            return None
        return self._sorted_ids(cluster, free_nodes)[:count]


class RackPackPlacement(PlacementPolicy):
    """Minimize racks spanned: take nodes from the emptiest racks first.

    Jobs concentrated in few racks draw on few rack pools, leaving the
    other racks' pools intact for later jobs — and single-rack jobs
    keep the rack-pool option open at all (a cross-rack job cannot use
    any rack pool as a uniform reach domain).
    """

    name = "rack_pack"

    def select(self, cluster, free_nodes, count, remote_per_node, pool_free=None):
        if len(free_nodes) < count:
            return None
        racks = self._by_rack(cluster, free_nodes)
        # Most free nodes first => fewest racks touched; rack id ties.
        ordered = sorted(racks.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        chosen: List[int] = []
        for _, nodes in ordered:
            take = min(count - len(chosen), len(nodes))
            chosen.extend(nodes[:take])
            if len(chosen) == count:
                return chosen
        return None  # pragma: no cover - guarded by the size check


class MinRemotePlacement(PlacementPolicy):
    """Pool-pressure-aware packing: fill racks with the most free pool.

    Like rack-pack, but rack order follows free *pool* capacity (per
    the hint, falling back to live state), steering remote-hungry jobs
    toward racks that can absorb them.  With no rack pools this
    degrades gracefully to rack-pack ordering.
    """

    name = "min_remote"
    uses_pool_hint = True

    def select(self, cluster, free_nodes, count, remote_per_node, pool_free=None):
        if len(free_nodes) < count:
            return None
        racks = self._by_rack(cluster, free_nodes)

        def rack_pool_free(rack_id: int) -> int:
            pool = cluster.rack(rack_id).pool
            if pool is None:
                return 0
            if pool_free is not None and pool.pool_id in pool_free:
                return pool_free[pool.pool_id]
            return pool.free

        ordered = sorted(
            racks.items(),
            key=lambda kv: (-rack_pool_free(kv[0]), -len(kv[1]), kv[0]),
        )
        chosen: List[int] = []
        for _, nodes in ordered:
            take = min(count - len(chosen), len(nodes))
            chosen.extend(nodes[:take])
            if len(chosen) == count:
                return chosen
        return None  # pragma: no cover - guarded by the size check


class SpreadPlacement(PlacementPolicy):
    """Round-robin across racks — the adversarial baseline.

    Deliberately maximizes racks spanned; with rack-local pools this
    denies jobs the rack-pool fast path and fragments pool usage,
    which is why it exists: T4 quantifies the cost of getting
    placement wrong.
    """

    name = "spread"

    def select(self, cluster, free_nodes, count, remote_per_node, pool_free=None):
        if len(free_nodes) < count:
            return None
        racks = self._by_rack(cluster, free_nodes)
        queues = [list(nodes) for _, nodes in sorted(racks.items())]
        chosen: List[int] = []
        index = 0
        while len(chosen) < count:
            queue = queues[index % len(queues)]
            if queue:
                chosen.append(queue.pop(0))
            index += 1
            if all(not q for q in queues):
                break
        return chosen if len(chosen) == count else None


_POLICIES = {
    "first_fit": FirstFitPlacement,
    "rack_pack": RackPackPlacement,
    "min_remote": MinRemotePlacement,
    "spread": SpreadPlacement,
}


def placement_for(name: str) -> PlacementPolicy:
    cls = _POLICIES.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown placement policy {name!r}; choose from {sorted(_POLICIES)}"
        )
    return cls()

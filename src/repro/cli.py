"""Command-line interface.

Four subcommands::

    dismem-sched run --config experiment.json [--csv out.csv]
        Run one configured experiment, print the summary table, audit
        the schedule, optionally dump the per-job CSV.

    dismem-sched sweep [--grid grid.json | --demo] [--workers N]
        Expand a declarative scenario grid and run every cell — in
        parallel, with on-disk result caching so repeated sweeps skip
        completed cells.  See :mod:`repro.runner`.

    dismem-sched replay (--trace T.swf | --generate N) [--segments K]
                        [--workers W] [--verify]
        Trace-scale SWF replay: streaming ingest, rolling (bounded-
        memory) aggregation, checkpointed segments scheduled across a
        worker pool, stitched per-job records.  ``--verify`` proves the
        sharded run bit-identical to an uninterrupted one (exit 3 on
        mismatch).  See docs/PERF.md "Trace-scale methodology".

    dismem-sched demo [--jobs N] [--seed S]
        A built-in fat-vs-thin comparison on the W-MIX workload — the
        30-second tour of what the library shows.

    dismem-sched workloads
        List the bundled reference workload mixes.

    dismem-sched perf [--quick] [--out BENCH_PERF.json]
        Wall-clock performance harness: profile micro-benchmarks,
        single scheduling passes, end-to-end 10k-job simulations.
        ``--baseline`` turns it into a regression gate (CI uses it).

    dismem-sched serve [--config experiment.json] [--port P]
                       [--state-dir DIR]
        Run the scheduler as a long-lived JSON/HTTP daemon (submit /
        cancel / query / advise / state).  With ``--state-dir`` the
        daemon is crash-safe: every acknowledged mutation is journaled
        before it is applied, and a restart on the same directory
        recovers the exact schedule.  See docs/SERVICE.md.

    dismem-sched load --url http://H:P [--clients N] [--quick]
        Replay a trace through a live daemon as N concurrent clients;
        measures submissions/sec + decision latency into
        BENCH_SERVICE.json and proves the replay decision-identical
        to the offline engine.  Exit codes: 0 ok, 3 identity mismatch,
        4 daemon unreachable, 1 other gate failures.

    dismem-sched audit [--preset NAME ...] [--backfill both] [--quick]
                       [--out AUDIT_REPORT.json] [--explain JOB_ID]
        Deep invariant gate: run the preset adversarial scenario
        library (drain storms, pool cliffs, same-instant collision
        grids, kill=none overruns, cancel-vs-backfill races, a KTH
        trace slice) and re-prove every schedule invariant from
        scratch with the structured validator.  ``--explain JOB_ID``
        replays one preset and reports the job's binding constraint
        instead.  See docs/AUDIT.md.

    dismem-sched chaos [--quick] [--out CHAOS_REPORT.json]
        Crash-recovery gate: kill the scheduler (simulated crashes and
        real SIGKILLs) mid-trace, recover from the write-ahead journal,
        and prove the recovered schedule identical to an uninterrupted
        offline run under both EASY and conservative backfill.

(Installed as ``dismem-sched`` and ``repro``; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.compare import compare_table
from .analysis.experiments import run_config
from .cluster.spec import ClusterSpec
from .config import ExperimentConfig
from .engine.audit import audit_result
from .engine.simulation import SchedulerSimulation
from .errors import ReproError
from .metrics.report import ascii_table, rows_to_csv
from .metrics.summary import summarize
from .units import GiB
from .workload.reference import REFERENCE_WORKLOADS, generate_reference_jobs

__all__ = ["main", "demo_grid"]


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig.from_file(args.config)
    cluster = config.build_cluster()
    scheduler = config.build_scheduler()
    jobs = config.build_jobs()
    sim = SchedulerSimulation(
        cluster, scheduler, jobs, sample_interval=config.sample_interval
    )
    result = sim.run()
    audit_result(result)
    summary = summarize(result, label=config.name)
    row = summary.row()
    print(ascii_table(list(row.keys()), [list(row.values())]))
    if args.gantt:
        from .metrics.gantt import render_gantt

        print()
        print(render_gantt(result, width=args.gantt))
    if args.csv:
        job_rows = [
            {
                "job_id": job.job_id,
                "submit": job.submit_time,
                "start": job.start_time,
                "end": job.end_time,
                "nodes": job.nodes,
                "mem_per_node": job.mem_per_node,
                "remote_per_node": job.remote_per_node,
                "dilation": job.dilation,
                "state": job.state.value,
            }
            for job in result.jobs
        ]
        Path(args.csv).write_text(rows_to_csv(job_rows))
        print(f"per-job records written to {args.csv}")
    return 0


def demo_grid() -> "ScenarioGrid":
    """The built-in 12-cell demonstration grid.

    Workload mix × pool budget × remote penalty on a 32-node thin
    machine — small enough to sweep in seconds, wide enough to exercise
    every axis type the runner supports.
    """
    from .runner import ScenarioGrid

    return ScenarioGrid(
        name="demo",
        base={
            "workload": {"reference": "W-MIX", "num_jobs": 150,
                         "seed": 42, "load": 0.9},
            "cluster": {"kind": "thin", "num_nodes": 32, "nodes_per_rack": 16,
                        "local_mem": "128GiB", "fat_local_mem": "512GiB",
                        "reach": "global"},
            "scheduler": {"queue": "fcfs", "backfill": "easy",
                          "placement": "first_fit",
                          "penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={
            "workload.reference": ["W-MIX", "W-DATA"],
            "cluster.pool_fraction": [0.25, 0.5, 1.0],
            "scheduler.penalty.beta": [0.1, 0.3],
        },
    )


def trace_kth_grid() -> "ScenarioGrid":
    """The large-cluster trace bench grid (KTH/ANL-style profile).

    W-KTH floods a 256-node thin machine with small heavy-tailed jobs,
    so backfill windows fragment into hundreds of availability
    breakpoints — the regime where ``REPRO_PROFILE_KERNEL=auto``
    switches the breakpoint kernel onto its vectorized path.  Axes
    cover pool budget and remote penalty at trace-realistic depth.
    """
    from .runner import ScenarioGrid

    return ScenarioGrid(
        name="trace-kth",
        base={
            "workload": {"reference": "W-KTH", "num_jobs": 2000,
                         "seed": 7, "load": 0.9},
            "cluster": {"kind": "thin", "num_nodes": 256, "nodes_per_rack": 16,
                        "local_mem": "128GiB", "fat_local_mem": "512GiB",
                        "reach": "global"},
            "scheduler": {"queue": "fcfs", "backfill": "easy",
                          "placement": "first_fit",
                          "penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={
            "cluster.pool_fraction": [0.25, 0.5],
            "scheduler.penalty.beta": [0.1, 0.3],
        },
    )


#: Grids addressable as ``repro sweep --grid <name>`` without a file.
BUILTIN_GRIDS = {
    "demo": demo_grid,
    "trace-kth": trace_kth_grid,
}


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .runner import ScenarioGrid, SweepRunner, rows_table

    if args.grid and args.grid in BUILTIN_GRIDS:
        grid = BUILTIN_GRIDS[args.grid]()
    elif args.grid:
        if not Path(args.grid).is_file():
            print(f"error: {args.grid!r} is neither a grid JSON file nor a "
                  f"built-in grid ({', '.join(sorted(BUILTIN_GRIDS))})",
                  file=sys.stderr)
            return 1
        grid = ScenarioGrid.from_file(args.grid)
    else:
        grid = demo_grid()
    cache_dir: Optional[Path] = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) / grid.name
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    runner = SweepRunner(
        workers=args.workers,
        cache_dir=cache_dir,
        progress=progress,
        deep_audit=args.audit,
    )
    report = runner.run(grid)

    rows = report.rows()
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    if rows:
        unknown = [m for m in metrics if m not in rows[0]]
        if unknown:
            valid = [k for k in rows[0]
                     if k not in ("scenario", "key", *grid.axes)]
            print(f"error: unknown metric(s) {', '.join(unknown)}; "
                  f"choose from: {', '.join(valid)}", file=sys.stderr)
            return 1
    columns = ["scenario"] + list(grid.axes) + metrics
    print(rows_table(rows, columns=columns))
    if args.baseline:
        labels = [record["name"] for record in report.records]
        if args.baseline not in labels:
            print(f"error: baseline {args.baseline!r} is not a scenario label; "
                  f"choose one of: {', '.join(labels)}", file=sys.stderr)
            return 1
        print()
        print(compare_table(report.summaries(), baseline_label=args.baseline))
    if args.out:
        payload = {
            "grid": grid.to_dict(),
            "executed": report.executed,
            "cached": report.cached,
            "workers": report.workers,
            "rows": rows,
            "records": report.records,
        }
        Path(args.out).write_text(json.dumps(payload, indent=2, default=str))
        print(f"sweep results written to {args.out}")
    print(report.status_line())
    if args.audit:
        failed = []
        audited = 0
        for record in report.records:
            audit = record.get("audit")
            if audit is None:  # cache hit: validated when first executed
                continue
            audited += 1
            if not audit["ok"]:
                failed.append(record)
        print(f"deep audit: {audited} executed cell"
              f"{'s' if audited != 1 else ''} validated, "
              f"{len(failed)} with violations")
        for record in failed:
            for violation in record["audit"]["violations"][:5]:
                print(f"  {record['name']}: [{violation['invariant']}] "
                      f"{violation['message']}", file=sys.stderr)
        if failed:
            return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import explain_job
    from .audit.presets import PRESET_NAMES, PRESETS, run_audit_suite, run_preset

    if args.list:
        for name in PRESET_NAMES:
            print(f"{name:>16}  {PRESETS[name].summary}")
        return 0
    names = list(args.preset) if args.preset else list(PRESET_NAMES)
    unknown = [name for name in names if name not in PRESETS]
    if unknown:
        print(f"error: unknown preset(s) {', '.join(unknown)}; "
              f"choose from: {', '.join(PRESET_NAMES)}", file=sys.stderr)
        return 1
    backfills = (
        ("easy", "conservative") if args.backfill == "both" else (args.backfill,)
    )

    if args.explain is not None:
        if not args.preset or len(names) != 1:
            print("error: --explain needs exactly one --preset to replay",
                  file=sys.stderr)
            return 1
        result = run_preset(names[0], backfill=backfills[0], quick=args.quick)
        try:
            explanation = explain_job(result, args.explain)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(explanation.describe())
        return 0

    progress = None if args.quiet else (
        lambda line: print(f"  auditing {line}", file=sys.stderr, flush=True)
    )
    document = run_audit_suite(
        names, backfills=backfills, quick=args.quick, progress=progress
    )
    for cell in document["cells"]:
        status = "ok" if cell["ok"] else f"FAIL ({len(cell['violations'])})"
        advisory = (
            f"  ({len(cell['advisories'])} advisory)" if cell["advisories"] else ""
        )
        print(f"{cell['preset']:>16} [{cell['backfill']:>12}] "
              f"jobs={cell['jobs']:4d}  {status}{advisory}")
        for violation in cell["violations"][:5]:
            print(f"      [{violation['invariant']}] {violation['message']}",
                  file=sys.stderr)
    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
        print(f"audit report written to {args.out}")
    total = len(document["cells"])
    if document["ok"]:
        print(f"audit: {total} cells clean")
        return 0
    bad = sum(1 for cell in document["cells"] if not cell["ok"])
    print(f"audit: {bad} of {total} cells FAILED", file=sys.stderr)
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    import math
    import tempfile

    from .runner.replay import (
        ReplaySpec,
        append_replay_history,
        generate_trace,
        replay_trace,
    )

    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    work_dir = (
        Path(args.work_dir)
        if args.work_dir
        else Path(tempfile.mkdtemp(prefix="trace-replay-"))
    )
    work_dir.mkdir(parents=True, exist_ok=True)

    if args.generate:
        trace = work_dir / f"{args.reference.lower()}-{args.generate}.swf"
        if trace.is_file():
            if progress:
                progress(f"reusing generated trace {trace}")
        else:
            info = generate_trace(
                trace,
                args.generate,
                reference=args.reference,
                seed=args.seed,
                cluster_nodes=args.nodes,
                include_memory=not args.no_memory,
            )
            if progress:
                progress(
                    f"generated {info['jobs']} jobs -> {info['path']} "
                    f"({info['bytes']:,} bytes)"
                )
    else:
        trace = Path(args.trace)
        if not trace.is_file():
            print(f"error: trace {trace} not found", file=sys.stderr)
            return 1

    synthesize = args.no_memory or args.synth_mem
    spec = ReplaySpec(
        trace=str(trace),
        cluster={"kind": "thin", "num_nodes": args.nodes, "nodes_per_rack": 16,
                 "local_mem": "128GiB", "fat_local_mem": "512GiB",
                 "pool_fraction": 0.5, "reach": "global",
                 "name": f"TRACE-THIN-{args.nodes}"},
        scheduler={"penalty": {"kind": "linear", "beta": 0.3}},
        seed=args.seed,
        cores_per_node=args.cores_per_node,
        keep_failed=args.keep_failed,
        mem_synth={"kind": "lognormal", "mu": math.log(4096.0), "sigma": 0.9,
                   "low": 128, "high": 128 * 1024} if synthesize else None,
        usage_ratio_synth={"kind": "uniform", "low": 0.5, "high": 0.95}
        if synthesize else None,
    )
    payload = replay_trace(
        spec,
        segments=args.segments,
        workers=args.workers,
        out_dir=work_dir / "segments",
        verify=args.verify,
        progress=progress,
    )

    sharded = payload["chains"]["sharded"]
    summary = sharded["summary"]
    row = {
        "jobs": sharded["records"],
        "segments": payload["segments_planned"],
        "workers": payload["workers"],
        "makespan_h": f"{summary['makespan'] / 3600.0:.1f}",
        "wait_mean_s": f"{summary['wait_mean']:.0f}",
        "bsld_mean": f"{summary['bsld_mean']:.2f}",
        "jobs_per_hour": f"{summary['throughput_jobs_per_hour']:.0f}",
        "elapsed_s": payload["elapsed_s"],
    }
    print(ascii_table(list(row.keys()), [[str(v) for v in row.values()]]))
    print(f"stitched records: {work_dir / 'segments' / 'sharded.stitched.jsonl'}"
          f" (sha256 {sharded['sha256'][:16]}…)")

    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"replay report written to {args.out}")
    if args.history:
        append_replay_history(payload, args.history)
    if args.verify:
        verdict = payload["verify"]
        status = "IDENTICAL" if verdict["identical"] else "MISMATCH"
        print(f"sharded vs unsharded: {status} "
              f"(sha256 {'ok' if verdict['sha256_match'] else 'DIFFERS'}, "
              f"stats {'ok' if verdict['stats_match'] else 'DIFFER'})")
        if not verdict["identical"]:
            return 3
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    jobs = generate_reference_jobs(
        "W-MIX",
        seed=args.seed,
        num_jobs=args.jobs,
        cluster_nodes=64,
        max_mem_per_node=512 * GiB,
        target_load=0.9,
    )
    fat = ClusterSpec.fat_node(num_nodes=64, local_mem="512GiB", name="FAT-512")
    thin = ClusterSpec.thin_node(
        num_nodes=64, local_mem="128GiB", fat_local_mem="512GiB",
        pool_fraction=0.5, reach="global", name="THIN-128+pool/2",
    )
    summaries = []
    for spec in (fat, thin):
        _, summary = run_config(
            spec, jobs, label=spec.name,
            class_local_mem=512 * GiB,
            penalty={"kind": "linear", "beta": 0.3},
        )
        summaries.append(summary)
    print("fat-node baseline vs thin-node + pool at HALF the total DRAM:")
    print(compare_table(summaries, baseline_label="FAT-512"))
    print()
    print("stranded DRAM fraction:",
          "  ".join(f"{s.label}: {s.stranded_fraction:.1%}" for s in summaries))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf import (
        append_workers_history,
        build_cases,
        case_names,
        compare_reports,
        efficiency_regressions,
        measure_sweep_throughput,
        render_report,
        render_throughput,
        render_workers_trend,
        run_perf,
        workers_trend,
    )

    if args.list:
        for name in case_names():
            print(name)
        return 0
    try:
        cases = build_cases(quick=args.quick, scale=args.scale, names=args.case)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    mode = "quick" if args.quick else "full"
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    report = run_perf(
        cases, mode=mode, repeats_override=args.repeats, progress=progress
    )
    payload = report.to_payload()
    if args.workers:
        # Sweep-throughput ladder through repro.runner: cells/sec vs
        # worker count.  Rides along in the payload but never gates —
        # multiprocess scaling is too host-dependent for CI to judge.
        jobs_per_cell = max(30, int((60 if args.quick else 120) * args.scale))
        payload["sweep_throughput"] = measure_sweep_throughput(
            args.workers,
            cells=args.sweep_cells,
            jobs_per_cell=jobs_per_cell,
            progress=progress,
        )
    print(render_report(payload))
    if args.workers:
        print()
        print(render_throughput(payload["sweep_throughput"]))
        # Efficiency trend tracking: append this ladder to the
        # history, then flag (never fail on — multiprocess scaling on
        # shared machines is too noisy to gate) regressions vs the
        # recorded baseline, the history's first record.  The
        # ::warning:: prefix makes CI annotate the run.
        flags = efficiency_regressions(
            payload["sweep_throughput"], args.workers_history,
            max_regression=args.max_regression,
        )
        record = append_workers_history(
            payload["sweep_throughput"], args.workers_history
        )
        if record is not None:
            print(f"ladder appended to {args.workers_history}")
        # The real trend report: per-platform efficiency series over
        # the whole history (baseline / median / latest per rung), not
        # just the first-record comparison the warnings use.
        trend = workers_trend(args.workers_history)
        if trend is not None:
            payload["sweep_throughput"]["trend"] = trend
            print()
            print(render_workers_trend(trend))
        for flag in flags:
            print(
                f"::warning::sweep parallel efficiency at "
                f"{flag['workers']} workers regressed "
                f">{args.max_regression:.0%} vs recorded baseline: "
                f"{flag['baseline_efficiency']:.0%} -> "
                f"{flag['current_efficiency']:.0%}",
                file=sys.stderr,
            )
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"perf results written to {args.out}")
    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"error: baseline {args.baseline} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 1
        if baseline.get("mode") != payload["mode"]:
            print(
                f"error: baseline mode {baseline.get('mode')!r} does not match "
                f"this run's mode {payload['mode']!r}; regenerate the baseline",
                file=sys.stderr,
            )
            return 1
        regressions = compare_reports(
            payload, baseline, max_regression=args.max_regression
        )
        if regressions:
            print(
                f"PERF REGRESSION (> {args.max_regression:.0%} vs "
                f"{args.baseline}, normalized):",
                file=sys.stderr,
            )
            for reg in regressions:
                print(
                    f"  {reg['case']}: {reg['baseline_normalized']:.3f} -> "
                    f"{reg['current_normalized']:.3f}  ({reg['ratio']:.2f}x)",
                    file=sys.stderr,
                )
            return 1
        print(f"no regression > {args.max_regression:.0%} vs {args.baseline}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SchedulerService, ServiceConfig, default_service_config
    from .service.server import ServiceDaemon

    if args.config:
        config = ExperimentConfig.from_file(args.config)
    else:
        config = default_service_config()
    service_config = ServiceConfig(
        mode=args.mode, speed=args.speed, tick_s=args.tick,
        start_time=args.start_time,
        state_dir=args.state_dir,
        checkpoint_every=args.checkpoint_every,
        max_inbox=args.max_inbox,
        deadline_s=args.deadline_s,
    )
    service = SchedulerService.open(config, service_config)
    daemon = ServiceDaemon(service, host=args.host, port=args.port)
    daemon.start()
    durability = "ephemeral"
    if service.recovery is not None:
        durability = (
            f"durable, resumed from snapshot seq "
            f"{service.recovery['snapshot_seq']} + "
            f"{service.recovery['replayed_records']} journal records"
            if service.recovery["resumed"]
            else "durable, fresh state dir"
        )
    print(
        f"scheduler service on {daemon.url}  "
        f"(config {config.name!r}, mode {service_config.mode}, "
        f"{durability}, Ctrl-C stops)",
        flush=True,
    )
    daemon.serve_until_interrupt()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .service.chaos import run_chaos, run_chaos_process

    config = (
        ExperimentConfig.from_file(args.config) if args.config else None
    )
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    seeds = list(range(1, (2 if args.quick else args.seeds) + 1))
    num_jobs = 30 if args.quick else args.jobs
    report = run_chaos(
        config,
        seeds=seeds,
        num_jobs=num_jobs,
        output=None,
        progress=progress,
    )
    documents = {"inprocess": report}
    ok = report["ok"]
    print(
        f"in-process gate: {len(report['cells'])} cells, "
        f"{report['total_crashes']} crashes -> "
        f"{'ok' if report['ok'] else 'DIVERGED'}"
    )
    if not args.skip_process:
        proc = run_chaos_process(
            config,
            seed=args.seeds,
            num_jobs=min(num_jobs, 40),
            kills=1 if args.quick else 2,
            progress=progress,
        )
        documents["process"] = proc
        ok = ok and proc["ok"]
        print(
            f"subprocess gate: {proc['sigkills']} SIGKILLs, "
            f"graceful exit {proc['graceful_exit_code']} -> "
            f"{'ok' if proc['ok'] else 'DIVERGED'}"
        )
    if args.out:
        Path(args.out).write_text(json.dumps(documents, indent=2) + "\n")
        print(f"chaos report written to {args.out}")
    if not ok:
        for doc in documents.values():
            cells = doc.get("cells", [doc])
            for cell in cells:
                for problem in cell.get("problems", [])[:10]:
                    print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    """Exit codes: 0 ok, 3 decision-identity mismatch, 4 daemon
    unreachable, 1 any other gate failure — so CI and scripts can tell
    "the scheduler diverged" from "the daemon was down"."""
    from .service.load import run_load

    config = (
        ExperimentConfig.from_file(args.config) if args.config else None
    )
    try:
        document = run_load(
            args.url,
            config,
            clients=args.clients,
            batch_target=args.batch,
            num_jobs=args.jobs,
            quick=args.quick,
            output=args.out or None,
            skip_identity=args.skip_identity,
        )
    except (ConnectionError, OSError) as exc:
        print(f"error: daemon at {args.url} unreachable: {exc}",
              file=sys.stderr)
        return 4
    print(
        f"{document['jobs']} jobs / {document['windows']} windows / "
        f"{document['clients']} clients: "
        f"{document['submissions_per_sec']:.0f} submissions/sec"
    )
    decision = document["server"]["decision_latency_ms"] or {}
    print(
        f"decision latency p50={decision.get('p50')}ms "
        f"p99={decision.get('p99')}ms  "
        f"(admission batches: {document['server']['admission_batch']})"
    )
    identity = document["identity"]
    if identity["checked"]:
        verdict = "identical" if identity["identical"] else "DIVERGED"
        print(f"decision identity vs offline engine: {verdict}")
        for problem in identity["problems"][:10]:
            print(f"  {problem}", file=sys.stderr)
    if args.out:
        print(f"bench written to {args.out}")
    if not document["ok"]:
        for failure in document["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        if identity["checked"] and not identity["identical"]:
            return 3
        return 1
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(REFERENCE_WORKLOADS):
        jobs = generate_reference_jobs(name, seed=0, num_jobs=300,
                                       cluster_nodes=64)
        mean_mem = sum(j.mem_per_node for j in jobs) / len(jobs)
        heavy = sum(1 for j in jobs if j.mem_per_node > 128 * GiB)
        rows.append([name, len(jobs), f"{mean_mem / GiB:.1f}",
                     f"{heavy / len(jobs):.0%}"])
    print(ascii_table(
        ["workload", "sample jobs", "mean GiB/node", ">128GiB jobs"], rows
    ))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dismem-sched",
        description="HPC job scheduling with disaggregated memory: "
        "trace-driven simulation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a configured experiment")
    p_run.add_argument("--config", required=True, help="experiment JSON path")
    p_run.add_argument("--csv", help="write per-job records to this CSV")
    p_run.add_argument("--gantt", type=int, nargs="?", const=100, default=0,
                       metavar="WIDTH",
                       help="print an ASCII gantt chart (optional width)")
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a scenario grid (parallel, cached)"
    )
    p_sweep.add_argument(
        "--grid", help="scenario grid JSON path or a built-in name "
        "(demo, trace-kth; default: the 12-cell demo)"
    )
    p_sweep.add_argument("--workers", type=_positive_int, default=1,
                         help="process count (default 1 = serial)")
    p_sweep.add_argument("--cache-dir", default=".sweep-cache",
                         help="result cache root (default .sweep-cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache")
    p_sweep.add_argument("--out", help="write rows + records JSON here")
    p_sweep.add_argument(
        "--metrics",
        default="wait_mean,bsld_mean,node_util,pool_util,rejected,killed",
        help="comma-separated metric columns for the table",
    )
    p_sweep.add_argument("--baseline",
                         help="also print a compare table vs this scenario label")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines")
    p_sweep.add_argument(
        "--audit", action="store_true",
        help="run the deep invariant validator on every executed cell "
        "(exit 1 on any violation; cache hits were validated when first "
        "executed)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_audit = sub.add_parser(
        "audit",
        help="deep-audit the preset adversarial scenario library",
    )
    p_audit.add_argument(
        "--preset", action="append", metavar="NAME",
        help="preset to run (repeatable; default: all — see --list)",
    )
    p_audit.add_argument(
        "--backfill", choices=("easy", "conservative", "both"), default="both",
        help="backfill policy column(s) to audit under (default both)",
    )
    p_audit.add_argument("--quick", action="store_true",
                         help="CI-sized preset variants")
    p_audit.add_argument("--out", metavar="AUDIT_REPORT.json",
                         help="write the machine-readable report here")
    p_audit.add_argument(
        "--explain", type=int, metavar="JOB_ID",
        help="replay one preset (requires exactly one --preset) and "
        "explain this job's start time instead of auditing",
    )
    p_audit.add_argument("--list", action="store_true",
                         help="list presets and exit")
    p_audit.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines")
    p_audit.set_defaults(func=_cmd_audit)

    p_replay = sub.add_parser(
        "replay",
        help="checkpointed shard-parallel SWF trace replay (bounded memory)",
    )
    source = p_replay.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", metavar="PATH",
                        help="SWF trace file to replay")
    source.add_argument("--generate", type=_positive_int, metavar="N",
                        help="generate an N-job synthetic archive-shaped "
                        "trace into the work dir and replay it")
    p_replay.add_argument("--reference", default="W-KTH",
                          help="reference mix for --generate "
                          "(default W-KTH)")
    p_replay.add_argument("--segments", type=_positive_int, default=4,
                          help="resumable checkpoint segments (default 4)")
    p_replay.add_argument("--workers", type=_positive_int, default=2,
                          help="process pool size; independent chains "
                          "overlap across workers (default 2)")
    p_replay.add_argument("--seed", type=int, default=0,
                          help="replay + generation seed (default 0)")
    p_replay.add_argument("--nodes", type=_positive_int, default=256,
                          help="thin-cluster node count (default 256)")
    p_replay.add_argument("--cores-per-node", type=_positive_int, default=1,
                          help="SWF processors per node (default 1)")
    p_replay.add_argument("--keep-failed", action="store_true",
                          help="keep SWF status-0 (failed) entries as jobs")
    p_replay.add_argument("--no-memory", action="store_true",
                          help="--generate: write -1 memory columns (forces "
                          "the deterministic synthesis path on replay)")
    p_replay.add_argument("--synth-mem", action="store_true",
                          help="synthesize memory for traces lacking the "
                          "memory columns (implied by --no-memory)")
    p_replay.add_argument("--verify", action="store_true",
                          help="also run an unsharded chain and prove the "
                          "sharded replay bit-identical (exit 3 on "
                          "mismatch)")
    p_replay.add_argument("--work-dir", metavar="DIR",
                          help="segment artifact directory; reuse it to "
                          "resume an interrupted replay (default: a fresh "
                          "temp dir)")
    p_replay.add_argument("--out", default="TRACE_REPLAY.json",
                          help="report JSON path (default TRACE_REPLAY.json; "
                          "'' disables writing)")
    p_replay.add_argument("--history",
                          default="benchmarks/perf/workers_history.jsonl",
                          metavar="PATH",
                          help="perf history JSONL to append the run to "
                          "(default %(default)s; skipped when the directory "
                          "is absent; '' disables)")
    p_replay.add_argument("--quiet", action="store_true",
                          help="suppress progress lines")
    p_replay.set_defaults(func=_cmd_replay)

    p_demo = sub.add_parser("demo", help="built-in fat-vs-thin comparison")
    p_demo.add_argument("--jobs", type=int, default=400)
    p_demo.add_argument("--seed", type=int, default=1)
    p_demo.set_defaults(func=_cmd_demo)

    p_wl = sub.add_parser("workloads", help="list reference workload mixes")
    p_wl.set_defaults(func=_cmd_workloads)

    p_perf = sub.add_parser(
        "perf", help="wall-clock performance harness (micro + end-to-end)"
    )
    p_perf.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (1.5k-job e2e instead of 10k)")
    p_perf.add_argument("--out", default="BENCH_PERF.json",
                        help="result JSON path (default BENCH_PERF.json; "
                        "'' disables writing)")
    p_perf.add_argument("--case", action="append", metavar="NAME",
                        help="run only this case (repeatable; see --list)")
    p_perf.add_argument("--repeats", type=_positive_int, default=None,
                        help="override per-case repeat count")
    p_perf.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (testing knob)")
    p_perf.add_argument("--baseline", metavar="JSON",
                        help="fail (exit 1) on normalized regression vs "
                        "this checked-in report")
    p_perf.add_argument("--max-regression", type=float, default=0.25,
                        help="regression tolerance for --baseline "
                        "(default 0.25 = 25%%)")
    p_perf.add_argument("--workers", type=_positive_int, default=0,
                        metavar="N",
                        help="also measure sweep throughput (cells/sec) "
                        "through repro.runner at 1..N workers")
    p_perf.add_argument("--sweep-cells", type=_positive_int, default=8,
                        help="grid cells for the --workers throughput "
                        "ladder (default 8)")
    p_perf.add_argument("--workers-history",
                        default="benchmarks/perf/workers_history.jsonl",
                        metavar="PATH",
                        help="JSONL efficiency-trend history appended by "
                        "--workers runs; its first record is the baseline "
                        "that efficiency regressions are flagged against "
                        "(default %(default)s; skipped when the directory "
                        "is absent)")
    p_perf.add_argument("--list", action="store_true",
                        help="list case names and exit")
    p_perf.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    p_perf.set_defaults(func=_cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="run the scheduler as a JSON/HTTP daemon"
    )
    p_serve.add_argument("--config", help="experiment JSON (cluster + "
                         "scheduler sections; default: built-in demo)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (default 8642; 0 = ephemeral)")
    p_serve.add_argument("--mode", choices=("replay", "wall"),
                         default="replay",
                         help="clock mode: 'replay' advances only on "
                         "/v1/advance (load harness), 'wall' tracks "
                         "wall time (default replay)")
    p_serve.add_argument("--speed", type=float, default=1.0,
                         help="wall mode: virtual seconds per wall second")
    p_serve.add_argument("--tick", type=float, default=0.05,
                         help="wall mode: clock tick / admission linger, "
                         "seconds (default 0.05)")
    p_serve.add_argument("--start-time", type=float, default=0.0,
                         help="virtual clock origin (default 0)")
    p_serve.add_argument("--state-dir", default=None, metavar="DIR",
                         help="durable state directory (write-ahead "
                         "journal + checkpoints); restarting on the "
                         "same directory recovers every acknowledged "
                         "mutation (default: no persistence)")
    p_serve.add_argument("--checkpoint-every", type=int, default=256,
                         metavar="N",
                         help="snapshot cadence in journal records "
                         "(0 = only at shutdown; default 256)")
    p_serve.add_argument("--max-inbox", type=int, default=0, metavar="N",
                         help="shed submissions with 429 once N ops are "
                         "queued (0 = unbounded, the default)")
    p_serve.add_argument("--deadline-s", type=float, default=0.0,
                         metavar="S",
                         help="shed ops older than S seconds with 504 "
                         "(0 = no deadline, the default)")
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "chaos",
        help="crash-recovery gate: kill the service mid-trace, recover, "
        "prove decision identity",
    )
    p_chaos.add_argument("--config", help="experiment JSON (default: "
                         "built-in demo)")
    p_chaos.add_argument("--seeds", type=_positive_int, default=5,
                         help="crash-schedule seeds per scheduler "
                         "variant (default 5)")
    p_chaos.add_argument("--jobs", type=_positive_int, default=60,
                         help="trace length per cell (default 60)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="CI smoke: 2 seeds, 30 jobs, 1 SIGKILL")
    p_chaos.add_argument("--skip-process", action="store_true",
                         help="skip the subprocess SIGKILL layer "
                         "(in-process gate only)")
    p_chaos.add_argument("--out", default="CHAOS_REPORT.json",
                         help="report JSON path (default "
                         "CHAOS_REPORT.json; '' disables writing)")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_load = sub.add_parser(
        "load", help="replay a trace through a live daemon, under load"
    )
    p_load.add_argument("--url", default="http://127.0.0.1:8642",
                        help="daemon base URL (default %(default)s)")
    p_load.add_argument("--config", help="experiment JSON; must match the "
                        "daemon's (default: built-in demo)")
    p_load.add_argument("--clients", type=_positive_int, default=4,
                        help="concurrent client threads (default 4)")
    p_load.add_argument("--batch", type=_positive_int, default=32,
                        help="target jobs per admission window (default 32)")
    p_load.add_argument("--jobs", type=_positive_int, default=None,
                        help="trim the trace to this many jobs")
    p_load.add_argument("--quick", action="store_true",
                        help="CI smoke: 120 jobs, lenient gates")
    p_load.add_argument("--out", default="BENCH_SERVICE.json",
                        help="bench JSON path (default BENCH_SERVICE.json; "
                        "'' disables writing)")
    p_load.add_argument("--skip-identity", action="store_true",
                        help="skip the offline decision-identity check")
    p_load.set_defaults(func=_cmd_load)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

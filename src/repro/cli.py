"""Command-line interface.

Three subcommands::

    dismem-sched run --config experiment.json [--csv out.csv]
        Run one configured experiment, print the summary table, audit
        the schedule, optionally dump the per-job CSV.

    dismem-sched demo [--jobs N] [--seed S]
        A built-in fat-vs-thin comparison on the W-MIX workload — the
        30-second tour of what the library shows.

    dismem-sched workloads
        List the bundled reference workload mixes.

(Installed as ``dismem-sched``; also runnable as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.compare import compare_table
from .analysis.experiments import run_config
from .cluster.spec import ClusterSpec
from .config import ExperimentConfig
from .engine.audit import audit_result
from .engine.simulation import SchedulerSimulation
from .errors import ReproError
from .metrics.report import ascii_table, rows_to_csv
from .metrics.summary import summarize
from .sim.rng import RandomStreams
from .units import GiB
from .workload.reference import REFERENCE_WORKLOADS, generate_reference_jobs

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig.from_file(args.config)
    cluster = config.build_cluster()
    scheduler = config.build_scheduler()
    jobs = config.build_jobs()
    sim = SchedulerSimulation(
        cluster, scheduler, jobs, sample_interval=config.sample_interval
    )
    result = sim.run()
    audit_result(result)
    summary = summarize(result, label=config.name)
    row = summary.row()
    print(ascii_table(list(row.keys()), [list(row.values())]))
    if args.gantt:
        from .metrics.gantt import render_gantt

        print()
        print(render_gantt(result, width=args.gantt))
    if args.csv:
        job_rows = [
            {
                "job_id": job.job_id,
                "submit": job.submit_time,
                "start": job.start_time,
                "end": job.end_time,
                "nodes": job.nodes,
                "mem_per_node": job.mem_per_node,
                "remote_per_node": job.remote_per_node,
                "dilation": job.dilation,
                "state": job.state.value,
            }
            for job in result.jobs
        ]
        Path(args.csv).write_text(rows_to_csv(job_rows))
        print(f"per-job records written to {args.csv}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    jobs = generate_reference_jobs(
        "W-MIX",
        seed=args.seed,
        num_jobs=args.jobs,
        cluster_nodes=64,
        max_mem_per_node=512 * GiB,
        target_load=0.9,
    )
    fat = ClusterSpec.fat_node(num_nodes=64, local_mem="512GiB", name="FAT-512")
    thin = ClusterSpec.thin_node(
        num_nodes=64, local_mem="128GiB", fat_local_mem="512GiB",
        pool_fraction=0.5, reach="global", name="THIN-128+pool/2",
    )
    summaries = []
    for spec in (fat, thin):
        _, summary = run_config(
            spec, jobs, label=spec.name,
            class_local_mem=512 * GiB,
            penalty={"kind": "linear", "beta": 0.3},
        )
        summaries.append(summary)
    print("fat-node baseline vs thin-node + pool at HALF the total DRAM:")
    print(compare_table(summaries, baseline_label="FAT-512"))
    print()
    print("stranded DRAM fraction:",
          "  ".join(f"{s.label}: {s.stranded_fraction:.1%}" for s in summaries))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(REFERENCE_WORKLOADS):
        jobs = generate_reference_jobs(name, seed=0, num_jobs=300,
                                       cluster_nodes=64)
        mean_mem = sum(j.mem_per_node for j in jobs) / len(jobs)
        heavy = sum(1 for j in jobs if j.mem_per_node > 128 * GiB)
        rows.append([name, len(jobs), f"{mean_mem / GiB:.1f}",
                     f"{heavy / len(jobs):.0%}"])
    print(ascii_table(
        ["workload", "sample jobs", "mean GiB/node", ">128GiB jobs"], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dismem-sched",
        description="HPC job scheduling with disaggregated memory: "
        "trace-driven simulation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a configured experiment")
    p_run.add_argument("--config", required=True, help="experiment JSON path")
    p_run.add_argument("--csv", help="write per-job records to this CSV")
    p_run.add_argument("--gantt", type=int, nargs="?", const=100, default=0,
                       metavar="WIDTH",
                       help="print an ASCII gantt chart (optional width)")
    p_run.set_defaults(func=_cmd_run)

    p_demo = sub.add_parser("demo", help="built-in fat-vs-thin comparison")
    p_demo.add_argument("--jobs", type=int, default=400)
    p_demo.add_argument("--seed", type=int, default=1)
    p_demo.set_defaults(func=_cmd_demo)

    p_wl = sub.add_parser("workloads", help="list reference workload mixes")
    p_wl.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The simulation run loop.

:class:`Simulator` owns the clock and the event calendar.  Client code
schedules callbacks at absolute times or delays and then calls
:meth:`Simulator.run`.  The kernel is intentionally minimal — no
processes, no channels — because the batch-scheduling engine built on
top (:mod:`repro.engine.simulation`) is naturally event-oriented:
everything happens at job submission and completion instants.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import Event, EventPriority
from .queue import EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator with a deterministic event calendar."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = EventPriority.GENERIC,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Scheduling in the past is an error; scheduling *at* the current
        instant is allowed (the event fires after the current callback
        returns, ordered by priority/sequence).
        """
        if time != time:  # NaN check without a math-module call
            raise SimulationError("cannot schedule event at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            seq=self._seq,
            callback=callback,
            payload=payload,
        )
        self._seq += 1
        self._queue.push(event)
        return event

    def schedule_now(
        self,
        callback: Callable[[Event], None],
        *,
        priority: int = EventPriority.GENERIC,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at the current instant (fast path).

        Equivalent to ``schedule_at(self.now, ...)`` without the
        past/NaN validation — the current clock is always a legal
        time.  Hot callers (the per-event scheduling-pass request) use
        this to skip per-call checks.
        """
        event = Event(
            time=self._now,
            priority=int(priority),
            seq=self._seq,
            callback=callback,
            payload=payload,
        )
        self._seq += 1
        self._queue.push(event)
        return event

    def schedule_batch(
        self,
        specs: list,
    ) -> list:
        """Schedule a batch of callbacks in one calendar operation.

        ``specs`` is a list of ``(time, callback, priority, payload)``
        tuples; sequence numbers are assigned in list order, so the
        resulting events are indistinguishable — times, priorities,
        and seqs — from consecutive :meth:`schedule_at` calls.  The
        engine's pass commit uses this to push one pass's completion
        group with a single calendar walk.
        """
        events = []
        seq = self._seq
        now = self._now
        for time, callback, priority, payload in specs:
            if time != time:  # NaN check without a math-module call
                raise SimulationError("cannot schedule event at NaN time")
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at t={time} "
                    f"before current time t={now}"
                )
            events.append(
                Event(
                    time=float(time),
                    priority=int(priority),
                    seq=seq,
                    callback=callback,
                    payload=payload,
                )
            )
            seq += 1
        self._seq = seq
        self._queue.push_many(events)
        return events

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[Event], None],
        *,
        priority: int = EventPriority.GENERIC,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, payload=payload
        )

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def pending(self) -> list[Event]:
        """Every live calendar event in ``(time, priority, seq)`` order.

        Read-only: the calendar is untouched.  The engine checkpoint
        layer (:mod:`repro.engine.snapshot`) serializes these.
        """
        return self._queue.live_events()

    def clock_state(self) -> dict:
        """The scalar clock state a checkpoint must carry."""
        return {
            "now": self._now,
            "seq": self._seq,
            "events_processed": self._events_processed,
        }

    def restore_clock(self, state: dict) -> None:
        """Set the clock scalars from a checkpoint.

        ``seq`` must be at least as large as every restored event's
        sequence number, so post-restore scheduling continues the
        original total order.
        """
        if self._running:
            raise SimulationError("cannot restore a running simulator")
        self._now = float(state["now"])
        self._seq = int(state["seq"])
        self._events_processed = int(state["events_processed"])

    def schedule_raw(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[Event], None],
        payload: Any = None,
    ) -> Event:
        """Re-enter a checkpointed event with its exact original key.

        Restore-only: preserving ``(time, priority, seq)`` verbatim is
        what makes the restored calendar fire in the identical order —
        the run loop's total order is the key, nothing else.  ``seq``
        is taken as given and the counter is not advanced; the caller
        restores the counter through :meth:`restore_clock`.
        """
        if self._running:
            raise SimulationError("cannot restore events into a running simulator")
        event = Event(
            time=float(time),
            priority=int(priority),
            seq=int(seq),
            callback=callback,
            payload=payload,
        )
        self._queue.push(event)
        return event

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events in order until the calendar empties.

        ``until`` stops the clock at that time: events strictly later
        stay in the calendar and the clock is advanced to ``until``.
        ``max_events`` guards against runaway feedback loops (each
        processed event counts).  Returns the final clock value.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            # Only a time bound needs the peek-then-pop dance;
            # max_events alone is checked after the callback, so the
            # direct-pop fast path covers it too.  Events are popped
            # in same-(time, priority) groups: the group members are
            # already mutually ordered, so the heap is consulted once
            # per group instead of once per event — with two guards
            # that keep the semantics exactly sequential: a member
            # cancelled by an earlier member's callback is skipped
            # (as a lazy-cancelled heap entry would have been), and if
            # a callback schedules an event that sorts before the
            # remaining members, they go back to the calendar and the
            # newcomer runs first.
            bounded = until is not None
            queue = self._queue
            while queue:
                if bounded:
                    event = queue.peek()
                    if event.time > until:
                        break
                group = queue.pop_group()
                for index, event in enumerate(group):
                    if index:
                        if event.cancelled:
                            continue
                        head = queue.peek_key()
                        if head is not None and head < (
                            event.time, event.priority, event.seq
                        ):
                            for later in group[index:]:
                                if not later.cancelled:
                                    queue.push(later)
                            break
                    self._now = event.time
                    self._events_processed += 1
                    event.callback(event)
                    if (
                        max_events is not None
                        and self._events_processed >= max_events
                    ):
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a scheduling feedback loop"
                        )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def step(self) -> Event:
        """Process exactly one event (test/debug helper)."""
        event = self._queue.pop()
        self._now = event.time
        self._events_processed += 1
        event.callback(event)
        return event

"""Binary-heap event calendar with lazy cancellation."""

from __future__ import annotations

import heapq
from typing import Iterator

from .events import Event

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``.

    Entries are stored as ``(time, priority, seq, event)`` tuples so
    sift comparisons stay entirely in C — ``seq`` is unique, so the
    event object itself never participates in a comparison.  Cancelled
    events are dropped lazily at pop time; ``__len__`` counts only live
    events so emptiness checks remain meaningful.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (event.time, event.priority, event.seq, event)
        )
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when no live events remain, matching
        list/heapq conventions.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek(self) -> Event:
        """Return (without removing) the earliest live event."""
        while self._heap:
            event = self._heap[0][3]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event
        raise IndexError("peek at empty EventQueue")

    def cancel(self, event: Event) -> None:
        """Cancel an event still in the calendar.

        Idempotent: cancelling an already-cancelled event is a no-op.
        """
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def drain(self) -> Iterator[Event]:
        """Pop every live event in order (used by tests)."""
        while self:
            yield self.pop()

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

"""Binary-heap event calendar with lazy cancellation."""

from __future__ import annotations

import heapq
from typing import Iterator

from .events import Event

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``.

    Entries are stored as ``(time, priority, seq, event)`` tuples so
    sift comparisons stay entirely in C — ``seq`` is unique, so the
    event object itself never participates in a comparison.  Cancelled
    events are dropped lazily at pop time; ``__len__`` counts only live
    events so emptiness checks remain meaningful.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        event.popped = False
        heapq.heappush(
            self._heap, (event.time, event.priority, event.seq, event)
        )
        self._live += 1

    def push_many(self, events: list[Event]) -> None:
        """Insert a batch of events in one calendar operation.

        Used by the engine's pass commit: the k completion events of a
        pass that launched k jobs enter the calendar together.  For a
        batch that rivals the heap in size one ``heapify`` beats k
        sift-ups; either way the pop order is unchanged — the
        ``(time, priority, seq)`` keys are a total order, so the
        heap's internal layout is unobservable.
        """
        if not events:
            return
        heap = self._heap
        if len(events) * 4 >= len(heap):
            for event in events:
                event.popped = False
                heap.append((event.time, event.priority, event.seq, event))
            heapq.heapify(heap)
        else:
            for event in events:
                event.popped = False
                heapq.heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
        self._live += len(events)

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when no live events remain, matching
        list/heapq conventions.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            event.popped = True
            return event
        raise IndexError("pop from empty EventQueue")

    def pop_group(self) -> list[Event]:
        """Pop the maximal run of live events sharing one
        ``(time, priority)`` — the same-instant batch the run loop
        processes as a unit (e.g. the completion group of a pass that
        launched k jobs at one instant).  Equivalent to repeated
        :meth:`pop` while the key holds."""
        first = self.pop()
        group = [first]
        heap = self._heap
        time, priority = first.time, first.priority
        while heap:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if head[0] != time or head[1] != priority:
                break
            heapq.heappop(heap)
            self._live -= 1
            event.popped = True
            group.append(event)
        return group

    def peek(self) -> Event:
        """Return (without removing) the earliest live event."""
        while self._heap:
            event = self._heap[0][3]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event
        raise IndexError("peek at empty EventQueue")

    def peek_key(self):
        """``(time, priority, seq)`` of the earliest live event, or
        None when the calendar is empty (run-loop ordering guard)."""
        while self._heap:
            head = self._heap[0]
            if head[3].cancelled:
                heapq.heappop(self._heap)
                continue
            return (head[0], head[1], head[2])
        return None

    def cancel(self, event: Event) -> None:
        """Cancel an event still in the calendar.

        Idempotent: cancelling an already-cancelled event is a no-op,
        and cancelling an event that was already popped (a same-
        instant group member awaiting its callback) marks it without
        touching the live count — it no longer occupies the heap.
        """
        if not event.cancelled:
            event.cancel()
            if not event.popped:
                self._live -= 1

    def live_events(self) -> list[Event]:
        """Every live event in calendar order, without popping.

        The checkpoint layer serializes the calendar through this; the
        heap is left untouched, so a snapshot never perturbs the run
        that produced it.
        """
        return [
            entry[3]
            for entry in sorted(self._heap)
            if not entry[3].cancelled
        ]

    def drain(self) -> Iterator[Event]:
        """Pop every live event in order (used by tests)."""
        while self:
            yield self.pop()

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

"""Named, independently seeded random substreams.

Experiments need *component-level* reproducibility: changing how many
random numbers the arrival process draws must not perturb the runtime
sampler.  :class:`RandomStreams` derives one :class:`numpy.random.
Generator` per stream name from a root seed using ``SeedSequence.spawn``
semantics keyed by the name, so streams are independent and stable
regardless of creation order.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


def _jsonable(value):
    """Deep-convert a bit-generator state dict into JSON-able scalars.

    PCG64's state holds 128-bit python ints (JSON-safe) and numpy
    scalars (not); everything numeric goes through ``int``, nested
    dicts recurse, and the structure otherwise survives untouched.
    """
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    return value


def _typed(value):
    """Inverse of :func:`_jsonable` (ndarray markers back to arrays)."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        return {key: _typed(item) for key, item in value.items()}
    return value


class RandomStreams:
    """Factory for named deterministic random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (root seed, name) pair always yields an identically
        seeded generator, independent of how many other streams exist
        or the order in which they were requested.
        """
        stream = self._streams.get(name)
        if stream is None:
            # Key the child seed on a stable hash of the name so stream
            # identity does not depend on request order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def state_dict(self) -> Dict:
        """JSON-able snapshot: root seed + each stream's generator state.

        A stream drawn from a restored set continues *exactly* where
        the original left off — the bit-generator state is captured,
        not just the seed — so a checkpointed run that synthesizes
        randomness (failure traces, chaos kill schedules) resumes its
        streams mid-sequence instead of replaying them from the start.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: _jsonable(gen.bit_generator.state)
                for name, gen in self._streams.items()
            },
        }

    @classmethod
    def from_state_dict(cls, state: Dict) -> "RandomStreams":
        """Rebuild a stream-set from :meth:`state_dict` output."""
        streams = cls(int(state["seed"]))
        for name, gen_state in state.get("streams", {}).items():
            gen = streams.get(name)  # seeds it; state overwrite follows
            gen.bit_generator.state = _typed(gen_state)
        return streams

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child stream-set (for replications).

        Replication ``i`` of an experiment uses ``streams.spawn(i)`` so
        repetitions are independent but individually reproducible.
        """
        mixed = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(0x5EED, int(index))
        )
        # generate_state gives a stable 64-bit child seed
        child_seed = int(mixed.generate_state(1, dtype=np.uint64)[0])
        return RandomStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"

"""Named, independently seeded random substreams.

Experiments need *component-level* reproducibility: changing how many
random numbers the arrival process draws must not perturb the runtime
sampler.  :class:`RandomStreams` derives one :class:`numpy.random.
Generator` per stream name from a root seed using ``SeedSequence.spawn``
semantics keyed by the name, so streams are independent and stable
regardless of creation order.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory for named deterministic random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (root seed, name) pair always yields an identically
        seeded generator, independent of how many other streams exist
        or the order in which they were requested.
        """
        stream = self._streams.get(name)
        if stream is None:
            # Key the child seed on a stable hash of the name so stream
            # identity does not depend on request order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child stream-set (for replications).

        Replication ``i`` of an experiment uses ``streams.spawn(i)`` so
        repetitions are independent but individually reproducible.
        """
        mixed = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(0x5EED, int(index))
        )
        # generate_state gives a stable 64-bit child seed
        child_seed = int(mixed.generate_state(1, dtype=np.uint64)[0])
        return RandomStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"

"""Deterministic discrete-event simulation kernel.

This subpackage replaces the simpy dependency of the original artifact
with a small event-calendar kernel whose ordering is fully specified:
events fire in ``(time, priority, sequence)`` order, so two simulations
with the same inputs produce byte-identical schedules.  See
:mod:`repro.sim.engine` for the run loop.
"""

from .events import Event, EventPriority
from .queue import EventQueue
from .engine import Simulator
from .rng import RandomStreams

__all__ = ["Event", "EventPriority", "EventQueue", "Simulator", "RandomStreams"]

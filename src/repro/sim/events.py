"""Event objects and their deterministic ordering.

An :class:`Event` couples a firing time with a callback.  Ordering is a
strict total order on ``(time, priority, seq)``:

* ``time`` — simulation seconds;
* ``priority`` — small integers; lower fires first.  The scheduler uses
  this to guarantee that at one instant, job completions are processed
  before the scheduling pass that might reuse their resources, and
  submissions before that same pass sees the queue;
* ``seq`` — insertion counter, breaking remaining ties in FIFO order.

The total order is what makes simulations reproducible: Python heaps
are not stable, so without ``seq`` two events at the same instant could
fire in either order from run to run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Canonical intra-instant processing order for the batch engine.

    At one simulation instant resources freed by finishing jobs must be
    visible to the scheduling pass, and newly submitted jobs must be in
    the queue before that pass runs; hence FINISH < SUBMIT < SCHEDULE.
    """

    FINISH = 0
    KILL = 1
    SUBMIT = 2
    SCHEDULE = 3
    SAMPLE = 4
    GENERIC = 5


@dataclass(order=False, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; the payload and
    callback never participate in ordering.  ``cancelled`` events stay
    in the calendar but are skipped when popped (lazy deletion), which
    keeps cancellation O(1).

    ``__slots__`` because a simulation allocates one per event.  The
    comparison operators exist for explicit ordering of event lists
    (tests, debugging); the hot-path calendar (:class:`EventQueue`)
    stores tuple keys and never compares Event objects directly.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[["Event"], None]
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)
    #: True while the event is outside the calendar after a pop — lets
    #: :meth:`EventQueue.cancel` keep its live count exact when a
    #: same-instant group member is cancelled by an earlier member's
    #: callback (the event is no longer in the heap, so the count must
    #: not move).
    popped: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __le__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq <= other.seq

    def cancel(self) -> None:
        """Mark the event so the kernel skips it; idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(t={self.time:.3f}, prio={self.priority}, "
            f"seq={self.seq}{state}, payload={self.payload!r})"
        )

"""Wall-clock measurement engine for the perf harness.

Every case is a :class:`PerfCase`: ``run_once`` performs one measured
unit and returns ``(elapsed_seconds, events)``, where ``events`` is the
case's natural work unit (queries answered, passes executed, simulation
events processed).  The harness repeats each case, keeps the **median**
wall-clock (robust against scheduler noise), and derives events/sec.

Cross-machine comparability: raw wall-clock depends on the host, so
every report also carries a *normalized* score — the case median
divided by the median of a fixed pure-python calibration loop measured
in the same process.  Regression gates compare normalized scores, which
makes a checked-in baseline meaningful on CI runners of a different
speed class than the machine that produced it.
"""

from __future__ import annotations

import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "PerfCase",
    "PerfReport",
    "calibrate",
    "run_perf",
    "compare_reports",
    "render_report",
]

SCHEMA_VERSION = 1

#: Iterations of the calibration loop; sized to take O(50 ms) on a
#: contemporary core so three repeats stay under half a second.
_CALIBRATION_N = 1_000_000


@dataclass
class PerfCase:
    """One named measurement unit.

    ``extra`` (optional) runs once after the repeats and returns a dict
    merged into the case's payload record — the hook trace-scale cases
    use to surface kernel mode, grid-size percentiles, and scalar/numpy
    split timings next to the gated wall-clock numbers.  Extra keys are
    informational: :func:`compare_reports` only reads ``normalized``,
    so they never participate in the regression gate.
    """

    name: str
    description: str
    run_once: Callable[[], Tuple[float, int]]
    repeats: int = 5
    tags: Tuple[str, ...] = ()
    extra: Optional[Callable[[], dict]] = None


@dataclass
class PerfReport:
    """The structured result of one harness invocation."""

    mode: str  # "full" | "quick"
    calibration_s: float
    cases: Dict[str, dict] = field(default_factory=dict)

    def to_payload(self) -> dict:
        from ..sched.profile import get_kernel

        return {
            "schema": SCHEMA_VERSION,
            "mode": self.mode,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            # Which sweep kernel produced these numbers: baselines are
            # only comparable within a kernel, and a CI runner missing
            # numpy would otherwise silently bench the scalar anchor.
            "profile_kernel": get_kernel(),
            "calibration_ms": round(self.calibration_s * 1e3, 3),
            "cases": self.cases,
        }


def _calibration_loop(n: int = _CALIBRATION_N) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def calibrate(repeats: int = 3) -> float:
    """Median wall-clock of the fixed calibration loop, in seconds."""
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        _calibration_loop()
        runs.append(time.perf_counter() - t0)
    return statistics.median(runs)


def run_perf(
    cases: Sequence[PerfCase],
    mode: str = "full",
    repeats_override: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PerfReport:
    """Measure every case; returns the structured report.

    ``repeats_override`` forces a repeat count on all cases (used by
    ``--repeats`` and by the test suite to keep runtime tiny).
    """
    calibration_s = calibrate()
    report = PerfReport(mode=mode, calibration_s=calibration_s)
    for case in cases:
        repeats = repeats_override or case.repeats
        runs: List[float] = []
        events = 0
        for i in range(repeats):
            elapsed, events = case.run_once()
            runs.append(elapsed)
            if progress is not None:
                progress(
                    f"  {case.name} [{i + 1}/{repeats}] {elapsed * 1e3:.1f} ms"
                )
        median_s = statistics.median(runs)
        record = {
            "description": case.description,
            "repeats": repeats,
            "runs_ms": [round(r * 1e3, 3) for r in runs],
            "median_ms": round(median_s * 1e3, 3),
            "events": events,
            "events_per_sec": (
                round(events / median_s, 1) if median_s > 0 else None
            ),
            "normalized": (
                round(median_s / calibration_s, 4) if calibration_s > 0 else None
            ),
        }
        if case.extra is not None:
            record.update(case.extra())
        report.cases[case.name] = record
    return report


def compare_reports(
    current: dict, baseline: dict, max_regression: float = 0.25
) -> List[dict]:
    """Regressions of ``current`` vs ``baseline`` on normalized scores.

    A case regresses when its normalized score grew by more than
    ``max_regression`` (0.25 = 25 % slower relative to the calibration
    loop).  Cases present in only one report are skipped — the gate
    must not fail just because a case was added or renamed.
    """
    regressions: List[dict] = []
    base_cases = baseline.get("cases", {})
    for name, cur in current.get("cases", {}).items():
        base = base_cases.get(name)
        if base is None:
            continue
        cur_norm, base_norm = cur.get("normalized"), base.get("normalized")
        if not cur_norm or not base_norm:
            continue
        ratio = cur_norm / base_norm
        if ratio > 1.0 + max_regression:
            regressions.append(
                {
                    "case": name,
                    "baseline_normalized": base_norm,
                    "current_normalized": cur_norm,
                    "ratio": round(ratio, 3),
                }
            )
    return regressions


def render_report(payload: dict) -> str:
    """ASCII table of a perf payload (CLI output)."""
    from ..metrics.report import ascii_table

    headers = ["case", "median ms", "events", "events/sec", "normalized"]
    rows = []
    for name, case in payload.get("cases", {}).items():
        rows.append(
            [
                name,
                f"{case['median_ms']:.1f}",
                str(case["events"]),
                f"{case['events_per_sec']:.0f}" if case["events_per_sec"] else "-",
                f"{case['normalized']:.3f}" if case["normalized"] else "-",
            ]
        )
    lines = [ascii_table(headers, rows)]
    lines.append(
        f"calibration: {payload['calibration_ms']:.1f} ms"
        f"  (normalized = case median / calibration; machine-portable)"
    )
    return "\n".join(lines)

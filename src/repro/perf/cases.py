"""The perf-case registry: what `repro perf` measures.

Four layers, mirroring how scheduler cycle latency composes:

* ``profile_build``    — constructing an :class:`AvailabilityProfile`
  from a loaded 64-node machine (done at least once per cycle);
* ``profile_queries``  — ``earliest_start`` / ``window_free`` against a
  loaded profile with reservations (the backfill inner loop);
* ``easy_pass`` / ``conservative_pass`` — one full scheduling pass over
  a primed mid-simulation state (deep queue, busy machine);
* ``e2e_easy`` / ``e2e_conservative`` — complete 10k-job simulations
  (quick mode: 1 500 jobs), the paper-grid unit of work.

All states are seeded and deterministic, so two harness invocations on
the same code measure identical work.
"""

from __future__ import annotations

import random
import time
from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..engine import lifecycle
from ..engine.simulation import SchedulerSimulation
from ..sched.base import (
    Scheduler,
    SchedulerContext,
    StartDecision,
    build_scheduler,
    pool_pressure,
)
from ..units import GiB, HOUR
from ..workload.job import Job
from ..workload.reference import generate_reference_jobs
from .core import PerfCase

__all__ = ["build_cases", "case_names"]

_SEED = 42
_BETA = 0.3
_PENALTY = {"kind": "linear", "beta": _BETA}

_E2E_JOBS_FULL = 10_000
_E2E_JOBS_QUICK = 1_500


def _thin_cluster() -> Cluster:
    spec = ClusterSpec.thin_node(
        num_nodes=64,
        nodes_per_rack=16,
        local_mem=128 * GiB,
        fat_local_mem=512 * GiB,
        pool_fraction=0.5,
        reach="global",
        name="PERF-THIN",
    )
    return Cluster(spec)


def _scheduler(backfill: str) -> Scheduler:
    return build_scheduler(backfill=backfill, penalty=dict(_PENALTY))


def _apply_start_like_engine(
    cluster: Cluster,
    scheduler: Scheduler,
    queue: List[Job],
    running: List[Job],
    now: float,
) -> Callable[[StartDecision], None]:
    """The engine's ``_apply_start`` minus event-calendar bookkeeping."""

    def apply(decision: StartDecision) -> None:
        job = decision.job
        pressure = pool_pressure(cluster, decision.plan)
        dilation = scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )
        cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        cluster.allocate_pool(job.job_id, decision.plan)
        lifecycle.start_job(job, now, decision, dilation)
        queue.remove(job)
        running.append(job)

    return apply


def _primed_state(
    backfill: str,
    num_running: int,
    num_pending: int,
    seed: int = _SEED,
) -> Tuple[Cluster, Scheduler, List[Job], List[Job]]:
    """A seeded mid-simulation state: busy machine, deep queue.

    Running jobs get staggered (negative) start times so their
    estimated ends spread over the next several hours — the shape the
    availability profile sweeps in a real cycle.  The pending queue
    leads with a wide job (forces a shadow reservation under EASY) and
    mixes short backfillable jobs with long hypothesis-test candidates.
    """
    rng = random.Random(seed)
    cluster = _thin_cluster()
    scheduler = _scheduler(backfill)
    running: List[Job] = []
    queue: List[Job] = []
    ctx = SchedulerContext(
        cluster=cluster,
        now=0.0,
        queue=queue,
        running=running,
        start_job=lambda decision: None,
    )
    job_id = 1
    attempts = 0
    while len(running) < num_running and attempts < num_running * 4:
        attempts += 1
        nodes = rng.choice((1, 1, 2, 2, 4, 4, 8))
        walltime = rng.uniform(0.5 * HOUR, 6 * HOUR)
        job = Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=nodes,
            walltime=walltime,
            runtime=walltime * rng.uniform(0.4, 0.95),
            mem_per_node=rng.choice((64, 96, 160, 224)) * GiB,
        )
        decision = scheduler.try_start_now(ctx, job)
        if decision is None:
            continue
        pressure = pool_pressure(cluster, decision.plan)
        dilation = scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )
        cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        cluster.allocate_pool(job.job_id, decision.plan)
        lifecycle.start_job(job, 0.0, decision, dilation)
        # Stagger history: the job has been running a while already.
        job.start_time = -rng.uniform(0.0, walltime * 0.8)
        running.append(job)
        job_id += 1
    # Queue head: a wide job that cannot start now (shadow under EASY).
    queue.append(
        Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=56,
            walltime=4 * HOUR,
            runtime=3 * HOUR,
            mem_per_node=96 * GiB,
        )
    )
    job_id += 1
    for _ in range(num_pending - 1):
        long_candidate = rng.random() < 0.5
        walltime = (
            rng.uniform(5 * HOUR, 10 * HOUR)
            if long_candidate
            else rng.uniform(0.2 * HOUR, 1.5 * HOUR)
        )
        queue.append(
            Job(
                job_id=job_id,
                submit_time=0.0,
                nodes=rng.choice((1, 2, 2, 4, 8, 12, 16)),
                walltime=walltime,
                runtime=walltime * rng.uniform(0.4, 0.95),
                mem_per_node=rng.choice((64, 96, 160, 224, 320)) * GiB,
            )
        )
        job_id += 1
    return cluster, scheduler, running, queue


@lru_cache(maxsize=4)
def _e2e_workload(num_jobs: int) -> Tuple[Job, ...]:
    return tuple(
        generate_reference_jobs(
            "W-MIX",
            seed=_SEED,
            num_jobs=num_jobs,
            cluster_nodes=64,
            max_mem_per_node=512 * GiB,
            target_load=0.9,
        )
    )


# ----------------------------------------------------------------------
# case implementations (each returns (elapsed_seconds, events))
# ----------------------------------------------------------------------
def _run_profile_build(builds: int) -> Tuple[float, int]:
    cluster, scheduler, running, queue = _primed_state("easy", 40, 4)
    ctx = SchedulerContext(
        cluster=cluster, now=0.0, queue=queue, running=running,
        start_job=lambda decision: None,
    )
    t0 = time.perf_counter()
    for _ in range(builds):
        scheduler.build_profile(ctx)
    return time.perf_counter() - t0, builds


def _run_profile_queries(queries: int, window_queries: int) -> Tuple[float, int]:
    cluster, scheduler, running, queue = _primed_state("easy", 40, queries)
    ctx = SchedulerContext(
        cluster=cluster, now=0.0, queue=queue, running=running,
        start_job=lambda decision: None,
    )
    allocator = scheduler.resolve_allocator(cluster)
    profile = scheduler.build_profile(ctx)
    # A handful of standing reservations, like a conservative pass.
    for job in queue[:6]:
        split = scheduler.split_for(job, cluster)
        res = profile.earliest_start(
            job, scheduler.est_duration(job, cluster), split.remote,
            scheduler.placement, allocator,
        )
        if res is not None:
            profile.add_reservation(res)
    probes = profile.breakpoints()
    t0 = time.perf_counter()
    for job in queue[:queries]:
        split = scheduler.split_for(job, cluster)
        profile.earliest_start(
            job, scheduler.est_duration(job, cluster), split.remote,
            scheduler.placement, allocator,
        )
    for i in range(window_queries):
        t = probes[i % len(probes)]
        profile.window_free(t, 3600.0 + (i % 7) * 1800.0)
        profile.free_at(t)
    return time.perf_counter() - t0, queries + window_queries


def _run_pass(backfill: str, passes: int, num_pending: int) -> Tuple[float, int]:
    elapsed = 0.0
    for i in range(passes):
        cluster, scheduler, running, queue = _primed_state(
            backfill, 40, num_pending, seed=_SEED + i
        )
        ctx = SchedulerContext(
            cluster=cluster,
            now=0.0,
            queue=queue,
            running=running,
            start_job=_apply_start_like_engine(
                cluster, scheduler, queue, running, 0.0
            ),
        )
        t0 = time.perf_counter()
        scheduler.schedule(ctx)
        elapsed += time.perf_counter() - t0
    return elapsed, passes


def _run_e2e(backfill: str, num_jobs: int) -> Tuple[float, int]:
    jobs = [job.copy_request() for job in _e2e_workload(num_jobs)]
    cluster = _thin_cluster()
    scheduler = _scheduler(backfill)
    sim = SchedulerSimulation(cluster, scheduler, jobs)
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result.events


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def build_cases(
    quick: bool = False,
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> List[PerfCase]:
    """The case list for one harness invocation.

    ``scale`` multiplies workload sizes (the test suite uses tiny
    scales); ``names`` filters to a subset.
    """
    e2e_jobs = max(60, int((_E2E_JOBS_QUICK if quick else _E2E_JOBS_FULL) * scale))
    builds = max(10, int((500 if quick else 2_000) * scale))
    queries = max(5, int((40 if quick else 120) * scale))
    window_queries = max(20, int((500 if quick else 2_000) * scale))
    passes = max(2, int((8 if quick else 30) * scale))
    pending = max(8, int(48 * min(scale, 1.0)))

    cases = [
        PerfCase(
            name="profile_build",
            description=f"AvailabilityProfile construction x{builds} "
            "(64 nodes, 40 running)",
            run_once=lambda: _run_profile_build(builds),
            repeats=5,
            tags=("micro",),
        ),
        PerfCase(
            name="profile_queries",
            description=f"earliest_start x{queries} + window/instant "
            f"queries x{window_queries} on a loaded profile",
            run_once=lambda: _run_profile_queries(queries, window_queries),
            repeats=5,
            tags=("micro",),
        ),
        PerfCase(
            name="easy_pass",
            description=f"full EASY scheduling pass x{passes} "
            f"(40 running, {pending} queued)",
            run_once=lambda: _run_pass("easy", passes, pending),
            repeats=5,
            tags=("pass",),
        ),
        PerfCase(
            name="conservative_pass",
            description=f"full conservative pass x{passes} "
            f"(40 running, {pending} queued)",
            run_once=lambda: _run_pass("conservative", passes, pending),
            repeats=5,
            tags=("pass",),
        ),
        PerfCase(
            name="e2e_easy",
            description=f"end-to-end {e2e_jobs}-job W-MIX simulation, "
            "EASY backfill",
            run_once=lambda: _run_e2e("easy", e2e_jobs),
            # Quick mode feeds the CI gate, where a noise burst on a
            # shared runner must lose the median vote: five repeats
            # are still cheap at 1.5k jobs.  Full mode keeps three
            # (comparable with the historical snapshots).
            repeats=5 if quick else 3,
            tags=("e2e",),
        ),
        PerfCase(
            name="e2e_conservative",
            description=f"end-to-end {e2e_jobs}-job W-MIX simulation, "
            "conservative backfill",
            run_once=lambda: _run_e2e("conservative", e2e_jobs),
            repeats=5 if quick else 3,
            tags=("e2e",),
        ),
    ]
    if names:
        wanted = set(names)
        unknown = wanted - {case.name for case in cases}
        if unknown:
            raise KeyError(
                f"unknown perf case(s) {sorted(unknown)}; "
                f"choose from {sorted(case.name for case in cases)}"
            )
        cases = [case for case in cases if case.name in wanted]
    return cases


def case_names() -> List[str]:
    return [case.name for case in build_cases(quick=True)]

"""The perf-case registry: what `repro perf` measures.

Four layers, mirroring how scheduler cycle latency composes:

* ``profile_build``    — constructing an :class:`AvailabilityProfile`
  from a loaded 64-node machine (done at least once per cycle);
* ``profile_queries``  — ``earliest_start`` / ``window_free`` against a
  loaded profile with reservations (the backfill inner loop);
* ``easy_pass`` / ``conservative_pass`` — one full scheduling pass over
  a primed mid-simulation state (deep queue, busy machine);
* ``e2e_easy`` / ``e2e_conservative`` — complete 10k-job simulations
  (quick mode: 1 500 jobs), the paper-grid unit of work.
* ``trace_scan_kernel`` / ``trace_replay`` — the trace-scale layer: a
  large thin cluster with hundreds of concurrent releases, where the
  breakpoint grid crosses the ``auto`` kernel's vector floor.  Their
  ``extra`` payloads surface the chosen kernel mode, scalar-vs-numpy
  split timings, and observed grid-size percentiles.

All states are seeded and deterministic, so two harness invocations on
the same code measure identical work.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..engine import lifecycle
from ..engine.simulation import SchedulerSimulation
from ..sched.base import (
    Scheduler,
    SchedulerContext,
    StartDecision,
    build_scheduler,
    pool_pressure,
)
from ..sched.profile import get_kernel, set_kernel, set_scan_observer
from ..units import GiB, HOUR
from ..workload.job import Job
from ..workload.reference import generate_reference_jobs
from .core import PerfCase

__all__ = ["build_cases", "case_names"]

_SEED = 42
_BETA = 0.3
_PENALTY = {"kind": "linear", "beta": _BETA}

_E2E_JOBS_FULL = 10_000
_E2E_JOBS_QUICK = 1_500


def _thin_cluster(num_nodes: int = 64) -> Cluster:
    spec = ClusterSpec.thin_node(
        num_nodes=num_nodes,
        nodes_per_rack=16,
        local_mem=128 * GiB,
        fat_local_mem=512 * GiB,
        pool_fraction=0.5,
        reach="global",
        name="PERF-THIN",
    )
    return Cluster(spec)


def _scheduler(backfill: str) -> Scheduler:
    return build_scheduler(backfill=backfill, penalty=dict(_PENALTY))


def _apply_start_like_engine(
    cluster: Cluster,
    scheduler: Scheduler,
    queue: List[Job],
    running: List[Job],
    now: float,
) -> Callable[[StartDecision], None]:
    """The engine's ``_apply_start`` minus event-calendar bookkeeping."""

    def apply(decision: StartDecision) -> None:
        job = decision.job
        pressure = pool_pressure(cluster, decision.plan)
        dilation = scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )
        cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        cluster.allocate_pool(job.job_id, decision.plan)
        lifecycle.start_job(job, now, decision, dilation)
        queue.remove(job)
        running.append(job)

    return apply


def _primed_state(
    backfill: str,
    num_running: int,
    num_pending: int,
    seed: int = _SEED,
    num_nodes: int = 64,
) -> Tuple[Cluster, Scheduler, List[Job], List[Job]]:
    """A seeded mid-simulation state: busy machine, deep queue.

    Running jobs get staggered (negative) start times so their
    estimated ends spread over the next several hours — the shape the
    availability profile sweeps in a real cycle.  The pending queue
    leads with a wide job (forces a shadow reservation under EASY) and
    mixes short backfillable jobs with long hypothesis-test candidates.
    """
    rng = random.Random(seed)
    cluster = _thin_cluster(num_nodes)
    scheduler = _scheduler(backfill)
    running: List[Job] = []
    queue: List[Job] = []
    ctx = SchedulerContext(
        cluster=cluster,
        now=0.0,
        queue=queue,
        running=running,
        start_job=lambda decision: None,
    )
    job_id = 1
    attempts = 0
    while len(running) < num_running and attempts < num_running * 4:
        attempts += 1
        nodes = rng.choice((1, 1, 2, 2, 4, 4, 8))
        walltime = rng.uniform(0.5 * HOUR, 6 * HOUR)
        job = Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=nodes,
            walltime=walltime,
            runtime=walltime * rng.uniform(0.4, 0.95),
            mem_per_node=rng.choice((64, 96, 160, 224)) * GiB,
        )
        decision = scheduler.try_start_now(ctx, job)
        if decision is None:
            continue
        pressure = pool_pressure(cluster, decision.plan)
        dilation = scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )
        cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        cluster.allocate_pool(job.job_id, decision.plan)
        lifecycle.start_job(job, 0.0, decision, dilation)
        # Stagger history: the job has been running a while already.
        job.start_time = -rng.uniform(0.0, walltime * 0.8)
        running.append(job)
        job_id += 1
    # Queue head: a wide job that cannot start now (shadow under EASY).
    queue.append(
        Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=num_nodes - 8,
            walltime=4 * HOUR,
            runtime=3 * HOUR,
            mem_per_node=96 * GiB,
        )
    )
    job_id += 1
    for _ in range(num_pending - 1):
        long_candidate = rng.random() < 0.5
        walltime = (
            rng.uniform(5 * HOUR, 10 * HOUR)
            if long_candidate
            else rng.uniform(0.2 * HOUR, 1.5 * HOUR)
        )
        queue.append(
            Job(
                job_id=job_id,
                submit_time=0.0,
                nodes=rng.choice((1, 2, 2, 4, 8, 12, 16)),
                walltime=walltime,
                runtime=walltime * rng.uniform(0.4, 0.95),
                mem_per_node=rng.choice((64, 96, 160, 224, 320)) * GiB,
            )
        )
        job_id += 1
    return cluster, scheduler, running, queue


@lru_cache(maxsize=4)
def _e2e_workload(num_jobs: int) -> Tuple[Job, ...]:
    return tuple(
        generate_reference_jobs(
            "W-MIX",
            seed=_SEED,
            num_jobs=num_jobs,
            cluster_nodes=64,
            max_mem_per_node=512 * GiB,
            target_load=0.9,
        )
    )


# ----------------------------------------------------------------------
# case implementations (each returns (elapsed_seconds, events))
# ----------------------------------------------------------------------
def _run_profile_build(builds: int) -> Tuple[float, int]:
    cluster, scheduler, running, queue = _primed_state("easy", 40, 4)
    ctx = SchedulerContext(
        cluster=cluster, now=0.0, queue=queue, running=running,
        start_job=lambda decision: None,
    )
    t0 = time.perf_counter()
    for _ in range(builds):
        scheduler.build_profile(ctx)
    return time.perf_counter() - t0, builds


def _run_profile_queries(queries: int, window_queries: int) -> Tuple[float, int]:
    cluster, scheduler, running, queue = _primed_state("easy", 40, queries)
    ctx = SchedulerContext(
        cluster=cluster, now=0.0, queue=queue, running=running,
        start_job=lambda decision: None,
    )
    allocator = scheduler.resolve_allocator(cluster)
    profile = scheduler.build_profile(ctx)
    # A handful of standing reservations, like a conservative pass.
    for job in queue[:6]:
        split = scheduler.split_for(job, cluster)
        res = profile.earliest_start(
            job, scheduler.est_duration(job, cluster), split.remote,
            scheduler.placement, allocator,
        )
        if res is not None:
            profile.add_reservation(res)
    probes = profile.breakpoints()
    t0 = time.perf_counter()
    for job in queue[:queries]:
        split = scheduler.split_for(job, cluster)
        profile.earliest_start(
            job, scheduler.est_duration(job, cluster), split.remote,
            scheduler.placement, allocator,
        )
    for i in range(window_queries):
        t = probes[i % len(probes)]
        profile.window_free(t, 3600.0 + (i % 7) * 1800.0)
        profile.free_at(t)
    return time.perf_counter() - t0, queries + window_queries


def _run_pass(backfill: str, passes: int, num_pending: int) -> Tuple[float, int]:
    elapsed = 0.0
    for i in range(passes):
        cluster, scheduler, running, queue = _primed_state(
            backfill, 40, num_pending, seed=_SEED + i
        )
        ctx = SchedulerContext(
            cluster=cluster,
            now=0.0,
            queue=queue,
            running=running,
            start_job=_apply_start_like_engine(
                cluster, scheduler, queue, running, 0.0
            ),
        )
        t0 = time.perf_counter()
        scheduler.schedule(ctx)
        elapsed += time.perf_counter() - t0
    return elapsed, passes


def _run_e2e(backfill: str, num_jobs: int) -> Tuple[float, int]:
    jobs = [job.copy_request() for job in _e2e_workload(num_jobs)]
    cluster = _thin_cluster()
    scheduler = _scheduler(backfill)
    sim = SchedulerSimulation(cluster, scheduler, jobs)
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result.events


# ----------------------------------------------------------------------
# trace-scale cases: hundreds-of-breakpoints grids (the vector-kernel
# regime; see _VEC_FLOOR in sched.profile)
# ----------------------------------------------------------------------
_TRACE_NODES = 1024


def _percentile(sorted_vals: Sequence[int], q: float) -> Optional[int]:
    if not sorted_vals:
        return None
    return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]


def _trace_scan_batch(
    cluster: Cluster,
    scheduler: Scheduler,
    ctx: SchedulerContext,
    jobs: Sequence[Job],
) -> Tuple[float, int]:
    """Seconds for one ``earliest_start`` per job through a fresh
    sweep cursor, plus the grid size it scanned.  The profile (and so
    the cursor) is rebuilt per call, which is what lets callers flip
    the kernel between batches — kernel selection is sampled at cursor
    construction."""
    allocator = scheduler.resolve_allocator(cluster)
    profile = scheduler.build_profile(ctx)
    cursor = profile.sweep_cursor()
    t0 = time.perf_counter()
    for job in jobs:
        split = scheduler.split_for(job, cluster)
        cursor.earliest_start(
            job, scheduler.est_duration(job, cluster), split.remote,
            scheduler.placement, allocator,
        )
    return time.perf_counter() - t0, len(profile.breakpoints())


#: Query widths as machine fractions — EASY's shadow shape.  A scan
#: for a near-machine-width job on a saturated cluster must reject
#: breakpoints until almost every release has landed, which is the
#: walk the vectorized kernel collapses into array reductions.
_TRACE_SCAN_FRACS = (0.25, 0.5, 0.625, 0.75, 0.875, 0.99)


def _trace_scan_setup(
    num_running: int, queries: int
) -> Tuple[Cluster, Scheduler, SchedulerContext, List[Job]]:
    """A saturated trace-scale machine: mostly 1–2-node running jobs
    (the archive mix), so the release grid carries one breakpoint per
    job — hundreds of them — and wide shadow queries walk deep."""
    rng = random.Random(_SEED)
    cluster = _thin_cluster(_TRACE_NODES)
    scheduler = _scheduler("easy")
    running: List[Job] = []
    queue: List[Job] = []
    ctx = SchedulerContext(
        cluster=cluster, now=0.0, queue=queue, running=running,
        start_job=lambda decision: None,
    )
    job_id = 1
    attempts = 0
    while len(running) < num_running and attempts < num_running * 4:
        attempts += 1
        nodes = rng.choice((1, 1, 1, 1, 2, 2))
        walltime = rng.uniform(0.5 * HOUR, 6 * HOUR)
        job = Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=nodes,
            walltime=walltime,
            runtime=walltime * rng.uniform(0.4, 0.95),
            mem_per_node=rng.choice((48, 64, 96, 160)) * GiB,
        )
        decision = scheduler.try_start_now(ctx, job)
        if decision is None:
            continue
        pressure = pool_pressure(cluster, decision.plan)
        dilation = scheduler.penalty.dilation(
            decision.split.remote_fraction, pressure
        )
        cluster.allocate_nodes(job.job_id, decision.node_ids, decision.split.local)
        cluster.allocate_pool(job.job_id, decision.plan)
        lifecycle.start_job(job, 0.0, decision, dilation)
        job.start_time = -rng.uniform(0.0, walltime * 0.8)
        running.append(job)
        job_id += 1
    jobs = [
        Job(
            job_id=100_000 + i,
            submit_time=0.0,
            nodes=max(1, int(_TRACE_NODES * _TRACE_SCAN_FRACS[i % 6])),
            walltime=4 * HOUR,
            runtime=3 * HOUR,
            mem_per_node=96 * GiB,
        )
        for i in range(queries)
    ]
    return cluster, scheduler, ctx, jobs


def _run_trace_scans(num_running: int, queries: int) -> Tuple[float, int]:
    cluster, scheduler, ctx, jobs = _trace_scan_setup(num_running, queries)
    elapsed, _ = _trace_scan_batch(cluster, scheduler, ctx, jobs)
    return elapsed, len(jobs)


def _trace_scan_extra(num_running: int, queries: int) -> dict:
    """Scalar-vs-numpy split timing of the identical query batch.

    Informational (never gates): documents where the measured grid
    sits relative to the vector floor and what the vector paths buy
    at this scale.  Best-of-three per kernel to shed timer noise."""
    cluster, scheduler, ctx, jobs = _trace_scan_setup(num_running, queries)
    extras: dict = {"profile_kernel": get_kernel()}
    prev = set_kernel("scalar")
    try:
        runs = [
            _trace_scan_batch(cluster, scheduler, ctx, jobs)
            for _ in range(3)
        ]
        scalar_s = min(r[0] for r in runs)
        extras["breakpoints"] = runs[0][1]
        extras["scalar_ms"] = round(scalar_s * 1e3, 3)
        try:
            set_kernel("numpy")
        except ValueError:  # no numpy on this host
            extras["numpy_ms"] = None
            extras["numpy_speedup"] = None
        else:
            numpy_s = min(
                _trace_scan_batch(cluster, scheduler, ctx, jobs)[0]
                for _ in range(3)
            )
            extras["numpy_ms"] = round(numpy_s * 1e3, 3)
            extras["numpy_speedup"] = (
                round(scalar_s / numpy_s, 2) if numpy_s > 0 else None
            )
    finally:
        set_kernel(prev)
    return extras


@lru_cache(maxsize=2)
def _trace_swf(num_jobs: int) -> str:
    """A cached synthetic W-KTH trace in the temp dir (deterministic
    content, so an existing file from an earlier invocation is reused;
    generation goes through a same-dir temp + rename so a crashed
    writer never leaves a torn file behind)."""
    from ..runner.replay import generate_trace

    path = os.path.join(
        tempfile.gettempdir(),
        f"repro-perf-wkth-{num_jobs}-{_TRACE_NODES}-{_SEED}.swf",
    )
    if not os.path.exists(path):
        tmp = f"{path}.{os.getpid()}.tmp"
        generate_trace(
            tmp,
            num_jobs,
            reference="W-KTH",
            seed=_SEED,
            cluster_nodes=_TRACE_NODES,
            target_load=0.9,
        )
        os.replace(tmp, path)
    return path


def _trace_replay_parts(num_jobs: int):
    from ..runner.replay import ReplaySpec, plan_segments

    spec = ReplaySpec(
        trace=_trace_swf(num_jobs),
        cluster={
            "kind": "thin",
            "num_nodes": _TRACE_NODES,
            "nodes_per_rack": 16,
            "local_mem": "128GiB",
            "fat_local_mem": "512GiB",
            "pool_fraction": 0.5,
            "reach": "global",
            "name": f"PERF-TRACE-{_TRACE_NODES}",
        },
        scheduler={"backfill": "easy", "penalty": dict(_PENALTY)},
        seed=_SEED,
    )
    (seg,) = plan_segments(spec.trace, 1, spec.swf_fields())
    return spec, seg


def _run_trace_replay(num_jobs: int) -> Tuple[float, int]:
    spec, seg = _trace_replay_parts(num_jobs)
    cluster, scheduler = spec.build_engine_parts()
    sim = SchedulerSimulation(
        cluster,
        scheduler,
        [],
        online=True,
        start_time=seg.first_submit,
        job_source=spec.segment_stream(seg),
    )
    t0 = time.perf_counter()
    sim.drain()
    result = sim.online_result()
    return time.perf_counter() - t0, result.events


def _trace_replay_extra(num_jobs: int) -> dict:
    """One instrumented replay with the scan observer installed:
    reports the kernel mode and the grid-size distribution every
    cursor scan actually saw — the quantities that decide whether the
    ``auto`` kernel's vector paths engaged."""
    sizes: List[int] = []
    prev = set_scan_observer(sizes.append)
    try:
        _run_trace_replay(num_jobs)
    finally:
        set_scan_observer(prev)
    sizes.sort()
    return {
        "profile_kernel": get_kernel(),
        "scans": len(sizes),
        "grid_p50": _percentile(sizes, 0.50),
        "grid_p95": _percentile(sizes, 0.95),
        "grid_p99": _percentile(sizes, 0.99),
        "grid_max": sizes[-1] if sizes else None,
    }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def build_cases(
    quick: bool = False,
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> List[PerfCase]:
    """The case list for one harness invocation.

    ``scale`` multiplies workload sizes (the test suite uses tiny
    scales); ``names`` filters to a subset.
    """
    e2e_jobs = max(60, int((_E2E_JOBS_QUICK if quick else _E2E_JOBS_FULL) * scale))
    builds = max(10, int((500 if quick else 2_000) * scale))
    queries = max(5, int((40 if quick else 120) * scale))
    window_queries = max(20, int((500 if quick else 2_000) * scale))
    passes = max(2, int((8 if quick else 30) * scale))
    pending = max(8, int(48 * min(scale, 1.0)))
    trace_running = max(128, int((450 if quick else 750) * min(scale, 1.0)))
    trace_queries = max(12, int((30 if quick else 60) * scale))
    trace_jobs = max(120, int((600 if quick else 2_500) * scale))

    cases = [
        PerfCase(
            name="profile_build",
            description=f"AvailabilityProfile construction x{builds} "
            "(64 nodes, 40 running)",
            run_once=lambda: _run_profile_build(builds),
            repeats=5,
            tags=("micro",),
        ),
        PerfCase(
            name="profile_queries",
            description=f"earliest_start x{queries} + window/instant "
            f"queries x{window_queries} on a loaded profile",
            run_once=lambda: _run_profile_queries(queries, window_queries),
            repeats=5,
            tags=("micro",),
        ),
        PerfCase(
            name="easy_pass",
            description=f"full EASY scheduling pass x{passes} "
            f"(40 running, {pending} queued)",
            run_once=lambda: _run_pass("easy", passes, pending),
            repeats=5,
            tags=("pass",),
        ),
        PerfCase(
            name="conservative_pass",
            description=f"full conservative pass x{passes} "
            f"(40 running, {pending} queued)",
            run_once=lambda: _run_pass("conservative", passes, pending),
            repeats=5,
            tags=("pass",),
        ),
        PerfCase(
            name="e2e_easy",
            description=f"end-to-end {e2e_jobs}-job W-MIX simulation, "
            "EASY backfill",
            run_once=lambda: _run_e2e("easy", e2e_jobs),
            # Quick mode feeds the CI gate, where a noise burst on a
            # shared runner must lose the median vote: five repeats
            # are still cheap at 1.5k jobs.  Full mode keeps three
            # (comparable with the historical snapshots).
            repeats=5 if quick else 3,
            tags=("e2e",),
        ),
        PerfCase(
            name="e2e_conservative",
            description=f"end-to-end {e2e_jobs}-job W-MIX simulation, "
            "conservative backfill",
            run_once=lambda: _run_e2e("conservative", e2e_jobs),
            repeats=5 if quick else 3,
            tags=("e2e",),
        ),
        PerfCase(
            name="trace_scan_kernel",
            description=f"earliest_start x{trace_queries} on a "
            f"{_TRACE_NODES}-node grid ({trace_running} running; "
            "extra: scalar vs numpy split)",
            run_once=lambda: _run_trace_scans(trace_running, trace_queries),
            repeats=5,
            tags=("trace", "micro"),
            extra=lambda: _trace_scan_extra(trace_running, trace_queries),
        ),
        PerfCase(
            name="trace_replay",
            description=f"streaming replay of a {trace_jobs}-job W-KTH "
            f"trace on {_TRACE_NODES} nodes (extra: grid percentiles)",
            run_once=lambda: _run_trace_replay(trace_jobs),
            repeats=3,
            tags=("trace", "e2e"),
            extra=lambda: _trace_replay_extra(trace_jobs),
        ),
    ]
    if names:
        wanted = set(names)
        unknown = wanted - {case.name for case in cases}
        if unknown:
            raise KeyError(
                f"unknown perf case(s) {sorted(unknown)}; "
                f"choose from {sorted(case.name for case in cases)}"
            )
        cases = [case for case in cases if case.name in wanted]
    return cases


def case_names() -> List[str]:
    return [case.name for case in build_cases(quick=True)]

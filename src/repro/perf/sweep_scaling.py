"""Sweep-throughput scaling: cells/sec vs worker count.

`repro perf` measures single-process latency; the paper's result grids
are executed by :mod:`repro.runner`, whose wall-clock is governed by
*sweep throughput* — how many scenario cells the machine completes per
second as workers are added.  ``measure_sweep_throughput`` runs the
same seeded grid through :class:`~repro.runner.sweep.SweepRunner` at a
ladder of worker counts (1, 2, 4, … up to the requested N) with the
result cache disabled, and reports cells/sec plus speedup and parallel
efficiency relative to the serial run.

The records produced by every rung are identical (the runner's
determinism contract), so the ladder measures pure execution scaling,
not workload drift.  Throughput numbers are *not* part of the CI
regression gate — multiprocess scaling on shared CI runners is far too
noisy to gate on — but the payload rides along in ``BENCH_PERF.json``
for trend inspection.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..units import GiB

__all__ = [
    "measure_sweep_throughput",
    "worker_ladder",
    "render_throughput",
    "append_workers_history",
    "efficiency_regressions",
    "workers_trend",
    "render_workers_trend",
]

HISTORY_SCHEMA = 1
DEFAULT_HISTORY_PATH = "benchmarks/perf/workers_history.jsonl"


def worker_ladder(max_workers: int) -> List[int]:
    """Powers of two up to ``max_workers``, always ending at it.

    ``worker_ladder(6) == [1, 2, 4, 6]`` — enough rungs to see the
    scaling shape without rerunning the grid per worker count.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    ladder = []
    rung = 1
    while rung < max_workers:
        ladder.append(rung)
        rung *= 2
    ladder.append(max_workers)
    return ladder


def _scaling_grid(cells: int, jobs_per_cell: int, seed: int):
    """A seeded one-axis grid of ``cells`` scenarios.

    The axis is the workload seed, so every cell does comparable work
    (same mix, same machine) and the cell count is a free parameter —
    exactly what a throughput ladder wants.
    """
    from ..runner import ScenarioGrid

    return ScenarioGrid(
        name="perf-sweep-scaling",
        base={
            "workload": {"reference": "W-MIX", "num_jobs": jobs_per_cell,
                         "seed": seed, "load": 0.9},
            "cluster": {"kind": "thin", "num_nodes": 32, "nodes_per_rack": 16,
                        "local_mem": "128GiB", "fat_local_mem": "512GiB",
                        "pool_fraction": 0.5, "reach": "global"},
            "scheduler": {"queue": "fcfs", "backfill": "easy",
                          "placement": "first_fit",
                          "penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={"workload.seed": [seed + i for i in range(cells)]},
    )


def measure_sweep_throughput(
    max_workers: int,
    cells: int = 8,
    jobs_per_cell: int = 120,
    seed: int = 42,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the scaling ladder; returns the JSON-able payload section.

    Each rung executes the identical grid (no cache) and records
    elapsed wall-clock, cells/sec, speedup vs the serial rung, and
    parallel efficiency (speedup / workers).
    """
    from ..runner import SweepRunner

    grid = _scaling_grid(cells, jobs_per_cell, seed)
    rungs = []
    serial_elapsed: Optional[float] = None
    for workers in worker_ladder(max_workers):
        runner = SweepRunner(workers=workers, cache_dir=None)
        t0 = time.perf_counter()
        report = runner.run(grid)
        elapsed = time.perf_counter() - t0
        if serial_elapsed is None:
            serial_elapsed = elapsed
        speedup = serial_elapsed / elapsed if elapsed > 0 else None
        rung = {
            "workers": workers,
            "elapsed_s": round(elapsed, 3),
            "cells": report.total,
            "cells_per_sec": round(report.total / elapsed, 3)
            if elapsed > 0 else None,
            "speedup": round(speedup, 3) if speedup is not None else None,
            "efficiency": round(speedup / workers, 3)
            if speedup is not None else None,
        }
        rungs.append(rung)
        if progress is not None:
            progress(
                f"  sweep x{report.total} cells @ {workers} worker"
                f"{'s' if workers != 1 else ''}: {elapsed:.2f}s "
                f"({rung['cells_per_sec']:.2f} cells/s)"
            )
    return {
        "cells": cells,
        "jobs_per_cell": jobs_per_cell,
        "seed": seed,
        "rungs": rungs,
    }


def append_workers_history(
    payload: dict, path: str | Path = DEFAULT_HISTORY_PATH
) -> Optional[dict]:
    """Append one ladder run to the efficiency-trend history.

    The history is a JSON-lines file (one record per ``repro perf
    --workers`` invocation) so the parallel-efficiency *trajectory* is
    inspectable over time — a single run on a shared machine proves
    nothing, a drifting trend does.  Returns the appended record, or
    None when the parent directory does not exist (running outside a
    repo checkout must not scatter files).
    """
    path = Path(path)
    if not path.parent.is_dir():
        return None
    record = {
        "schema": HISTORY_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cells": payload.get("cells"),
        "jobs_per_cell": payload.get("jobs_per_cell"),
        "rungs": [
            {
                "workers": rung["workers"],
                "cells_per_sec": rung["cells_per_sec"],
                "speedup": rung["speedup"],
                "efficiency": rung["efficiency"],
            }
            for rung in payload.get("rungs", [])
        ],
    }
    with path.open("a") as handle:
        handle.write(json.dumps(record) + "\n")
    return record


def _read_history_baseline(path: str | Path) -> Optional[dict]:
    """The recorded baseline: the history's first record *for this
    platform* that carries usable rungs.

    Parallel efficiency is a property of the host (core count, VM
    neighbors), so a record from a different platform string is not a
    meaningful floor — a 1-core dev VM's degenerate scaling must not
    become the bar a multi-core CI runner is judged against.  With no
    same-platform record the trend check stays silent until one is
    recorded (and checked in, for CI).  Reads through
    :func:`_read_history`, so the warning baseline and the trend
    report share one parser and one corruption policy (torn lines are
    skipped, never fatal)."""
    here = platform.platform()
    for record in _read_history(path):
        if record.get("platform") == here and _valid_rungs(record):
            return record
    return None


def efficiency_regressions(
    payload: dict,
    history_path: str | Path = DEFAULT_HISTORY_PATH,
    max_regression: float = 0.25,
) -> List[dict]:
    """Parallel-efficiency regressions vs the recorded baseline.

    Rungs are matched by worker count; a rung regresses when its
    efficiency fell more than ``max_regression`` (relative) below the
    baseline's.  Serial rungs are skipped — efficiency is 1.0 there by
    construction.  Multiprocess scaling on shared machines is far too
    noisy to *fail* CI on, so callers surface these as warnings
    (flags), not gate errors.
    """
    baseline = _read_history_baseline(history_path)
    if baseline is None:
        return []
    base_by_workers = {
        rung["workers"]: rung for rung in _valid_rungs(baseline)
    }
    flags: List[dict] = []
    for rung in payload.get("rungs", []):
        workers = rung["workers"]
        if workers <= 1 or not rung.get("efficiency"):
            continue
        base = base_by_workers.get(workers)
        if base is None:
            continue
        floor = base["efficiency"] * (1.0 - max_regression)
        if rung["efficiency"] < floor:
            flags.append(
                {
                    "workers": workers,
                    "baseline_efficiency": base["efficiency"],
                    "current_efficiency": rung["efficiency"],
                    "floor": round(floor, 3),
                }
            )
    return flags


def _read_history(path: str | Path) -> List[dict]:
    """Every parseable record of the history file, in append order."""
    path = Path(path)
    if not path.is_file():
        return []
    records: List[dict] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn write must not hide the valid trend
            if not isinstance(record, dict):
                continue  # a stray scalar line is corruption, not data
            records.append(record)
    return records


def _valid_rungs(record: dict) -> List[dict]:
    """The record's rungs that carry a usable (workers, efficiency) pair.

    History files live across versions of this tool and survive torn
    writes and hand edits, so a rung may be a non-dict, lack a worker
    count, or carry a null/zero efficiency (serial rungs, aborted
    runs).  Every trend consumer filters through here so a single
    malformed record degrades to "ignored", never to a crash — a fresh
    clone's first ``repro perf --workers`` run must not die on
    whatever history it happens to find.
    """
    rungs = record.get("rungs", [])
    if not isinstance(rungs, list):
        return []
    return [
        rung
        for rung in rungs
        if isinstance(rung, dict)
        and isinstance(rung.get("workers"), (int, float))
        and not isinstance(rung.get("workers"), bool)
        and isinstance(rung.get("efficiency"), (int, float))
        and rung["efficiency"]
    ]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def workers_trend(history_path: str | Path = DEFAULT_HISTORY_PATH) -> Optional[dict]:
    """The efficiency *trend* over the whole ladder history.

    The regression flags compare only against the first recorded run;
    this aggregates every record into per-platform series (parallel
    efficiency is a host property, so platforms are never mixed): for
    each worker count, the full efficiency series in record order plus
    baseline (first), latest (last), median, and the latest-vs-
    baseline delta.  Returns ``None`` when the history has no records
    — callers print nothing rather than an empty table.
    """
    # Only records carrying usable rungs participate: the history file
    # is shared with non-ladder streams (trace-replay records have
    # ``rungs: []`` by construction), and an aborted ladder run
    # contributes nothing either way.
    records = [r for r in _read_history(history_path) if _valid_rungs(r)]
    if not records:
        return None
    by_platform: Dict[str, List[dict]] = {}
    for record in records:
        by_platform.setdefault(record.get("platform", "unknown"), []).append(record)
    platforms = []
    for platform_name, group in by_platform.items():
        series: Dict[int, List[dict]] = {}
        for record in group:
            for rung in _valid_rungs(record):
                series.setdefault(rung["workers"], []).append(rung)
        rungs = []
        for workers in sorted(series):
            effs = [rung["efficiency"] for rung in series[workers]]
            rungs.append({
                "workers": workers,
                "samples": len(effs),
                "efficiency_series": effs,
                "baseline_efficiency": effs[0],
                "latest_efficiency": effs[-1],
                "median_efficiency": round(_median(effs), 3),
                "delta_vs_baseline": round(effs[-1] - effs[0], 3),
                "latest_cells_per_sec": series[workers][-1].get("cells_per_sec"),
            })
        platforms.append({
            "platform": platform_name,
            "runs": len(group),
            "first_recorded": group[0].get("recorded_at") or "unknown",
            "last_recorded": group[-1].get("recorded_at") or "unknown",
            "rungs": rungs,
        })
    return {"records": len(records), "platforms": platforms}


def render_workers_trend(trend: dict) -> str:
    """ASCII rendering of a :func:`workers_trend` payload."""
    from ..metrics.report import ascii_table

    blocks = []
    for entry in trend["platforms"]:
        headers = ["workers", "runs", "baseline eff", "median eff",
                   "latest eff", "delta", "latest cells/s"]
        rows = []
        for rung in entry["rungs"]:
            if rung["workers"] <= 1:
                continue  # serial efficiency is 1.0 by construction
            delta = rung["delta_vs_baseline"]
            rows.append([
                str(rung["workers"]),
                str(rung["samples"]),
                f"{rung['baseline_efficiency']:.0%}",
                f"{rung['median_efficiency']:.0%}",
                f"{rung['latest_efficiency']:.0%}",
                f"{delta:+.0%}",
                f"{rung['latest_cells_per_sec']:.2f}"
                if rung["latest_cells_per_sec"] else "-",
            ])
        title = (
            f"efficiency trend: {entry['platform']} — {entry['runs']} runs "
            f"({entry['first_recorded']} .. {entry['last_recorded']})"
        )
        if rows:
            blocks.append(title + "\n" + ascii_table(headers, rows))
        else:
            blocks.append(title + "\n  (serial-only ladders; no parallel rungs)")
    return "\n\n".join(blocks)


def render_throughput(payload: dict) -> str:
    """ASCII table of a sweep-throughput payload (CLI output)."""
    from ..metrics.report import ascii_table

    headers = ["workers", "elapsed s", "cells/sec", "speedup", "efficiency"]
    rows = []
    for rung in payload.get("rungs", []):
        rows.append([
            str(rung["workers"]),
            f"{rung['elapsed_s']:.2f}",
            f"{rung['cells_per_sec']:.2f}" if rung["cells_per_sec"] else "-",
            f"{rung['speedup']:.2f}x" if rung["speedup"] else "-",
            f"{rung['efficiency']:.0%}" if rung["efficiency"] else "-",
        ])
    title = (
        f"sweep throughput: {payload['cells']} cells x "
        f"{payload['jobs_per_cell']} jobs (runner, cache disabled)"
    )
    return title + "\n" + ascii_table(headers, rows)

"""Sweep-throughput scaling: cells/sec vs worker count.

`repro perf` measures single-process latency; the paper's result grids
are executed by :mod:`repro.runner`, whose wall-clock is governed by
*sweep throughput* — how many scenario cells the machine completes per
second as workers are added.  ``measure_sweep_throughput`` runs the
same seeded grid through :class:`~repro.runner.sweep.SweepRunner` at a
ladder of worker counts (1, 2, 4, … up to the requested N) with the
result cache disabled, and reports cells/sec plus speedup and parallel
efficiency relative to the serial run.

The records produced by every rung are identical (the runner's
determinism contract), so the ladder measures pure execution scaling,
not workload drift.  Throughput numbers are *not* part of the CI
regression gate — multiprocess scaling on shared CI runners is far too
noisy to gate on — but the payload rides along in ``BENCH_PERF.json``
for trend inspection.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..units import GiB

__all__ = ["measure_sweep_throughput", "worker_ladder", "render_throughput"]


def worker_ladder(max_workers: int) -> List[int]:
    """Powers of two up to ``max_workers``, always ending at it.

    ``worker_ladder(6) == [1, 2, 4, 6]`` — enough rungs to see the
    scaling shape without rerunning the grid per worker count.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    ladder = []
    rung = 1
    while rung < max_workers:
        ladder.append(rung)
        rung *= 2
    ladder.append(max_workers)
    return ladder


def _scaling_grid(cells: int, jobs_per_cell: int, seed: int):
    """A seeded one-axis grid of ``cells`` scenarios.

    The axis is the workload seed, so every cell does comparable work
    (same mix, same machine) and the cell count is a free parameter —
    exactly what a throughput ladder wants.
    """
    from ..runner import ScenarioGrid

    return ScenarioGrid(
        name="perf-sweep-scaling",
        base={
            "workload": {"reference": "W-MIX", "num_jobs": jobs_per_cell,
                         "seed": seed, "load": 0.9},
            "cluster": {"kind": "thin", "num_nodes": 32, "nodes_per_rack": 16,
                        "local_mem": "128GiB", "fat_local_mem": "512GiB",
                        "pool_fraction": 0.5, "reach": "global"},
            "scheduler": {"queue": "fcfs", "backfill": "easy",
                          "placement": "first_fit",
                          "penalty": {"kind": "linear", "beta": 0.3}},
            "class_local_mem": 512 * GiB,
        },
        axes={"workload.seed": [seed + i for i in range(cells)]},
    )


def measure_sweep_throughput(
    max_workers: int,
    cells: int = 8,
    jobs_per_cell: int = 120,
    seed: int = 42,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the scaling ladder; returns the JSON-able payload section.

    Each rung executes the identical grid (no cache) and records
    elapsed wall-clock, cells/sec, speedup vs the serial rung, and
    parallel efficiency (speedup / workers).
    """
    from ..runner import SweepRunner

    grid = _scaling_grid(cells, jobs_per_cell, seed)
    rungs = []
    serial_elapsed: Optional[float] = None
    for workers in worker_ladder(max_workers):
        runner = SweepRunner(workers=workers, cache_dir=None)
        t0 = time.perf_counter()
        report = runner.run(grid)
        elapsed = time.perf_counter() - t0
        if serial_elapsed is None:
            serial_elapsed = elapsed
        speedup = serial_elapsed / elapsed if elapsed > 0 else None
        rung = {
            "workers": workers,
            "elapsed_s": round(elapsed, 3),
            "cells": report.total,
            "cells_per_sec": round(report.total / elapsed, 3)
            if elapsed > 0 else None,
            "speedup": round(speedup, 3) if speedup is not None else None,
            "efficiency": round(speedup / workers, 3)
            if speedup is not None else None,
        }
        rungs.append(rung)
        if progress is not None:
            progress(
                f"  sweep x{report.total} cells @ {workers} worker"
                f"{'s' if workers != 1 else ''}: {elapsed:.2f}s "
                f"({rung['cells_per_sec']:.2f} cells/s)"
            )
    return {
        "cells": cells,
        "jobs_per_cell": jobs_per_cell,
        "seed": seed,
        "rungs": rungs,
    }


def render_throughput(payload: dict) -> str:
    """ASCII table of a sweep-throughput payload (CLI output)."""
    from ..metrics.report import ascii_table

    headers = ["workers", "elapsed s", "cells/sec", "speedup", "efficiency"]
    rows = []
    for rung in payload.get("rungs", []):
        rows.append([
            str(rung["workers"]),
            f"{rung['elapsed_s']:.2f}",
            f"{rung['cells_per_sec']:.2f}" if rung["cells_per_sec"] else "-",
            f"{rung['speedup']:.2f}x" if rung["speedup"] else "-",
            f"{rung['efficiency']:.0%}" if rung["efficiency"] else "-",
        ])
    title = (
        f"sweep throughput: {payload['cells']} cells x "
        f"{payload['jobs_per_cell']} jobs (runner, cache disabled)"
    )
    return title + "\n" + ascii_table(headers, rows)

"""Wall-clock perf harness: `repro perf` and `benchmarks/perf/`.

The paper's result grids need thousands of simulation cells, so
scheduler cycle latency is a first-class deliverable.  This package
measures it: microbenchmarks for profile construction and queries,
primed single scheduling passes, and end-to-end 10k-job simulations —
each reported as median wall-clock, events/sec, and a
calibration-normalized score that survives machine changes (see
:mod:`repro.perf.core`).

Every PR is expected to keep ``BENCH_PERF.json`` fresh so the repo has
a perf trajectory, and CI gates on >25 % normalized regression against
``benchmarks/perf/baseline_quick.json``.
"""

from .cases import build_cases, case_names
from .core import (
    PerfCase,
    PerfReport,
    calibrate,
    compare_reports,
    render_report,
    run_perf,
)
from .sweep_scaling import (
    append_workers_history,
    efficiency_regressions,
    measure_sweep_throughput,
    render_throughput,
    render_workers_trend,
    worker_ladder,
    workers_trend,
)

__all__ = [
    "PerfCase",
    "PerfReport",
    "append_workers_history",
    "build_cases",
    "case_names",
    "calibrate",
    "compare_reports",
    "efficiency_regressions",
    "measure_sweep_throughput",
    "render_report",
    "render_throughput",
    "render_workers_trend",
    "run_perf",
    "worker_ladder",
    "workers_trend",
]

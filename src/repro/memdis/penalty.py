"""Remote-memory performance penalty models.

Accessing pooled memory over a fabric costs bandwidth and latency; the
net effect on a batch job is runtime **dilation**.  A penalty model
maps the job's remote fraction ``f = remote / (local + remote)`` (and,
for the contention model, current pool pressure) to a dilation
``d ≥ 0``; the engine then runs the job for ``runtime × (1 + d)``.

The dilation is fixed at job start.  That is a deliberate modeling
simplification (recomputing dilation as neighbours come and go would
make completion times history-dependent and reservations unstable);
the contention model captures the first-order effect by pricing the
pressure observed at start time.

All models are monotone in ``f`` — more remote memory never makes a
job faster — and return 0 for ``f = 0``; the property tests pin both.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping, Optional

from ..errors import ConfigurationError

__all__ = [
    "PenaltyModel",
    "NoPenalty",
    "LinearPenalty",
    "SaturatingPenalty",
    "ContentionPenalty",
    "penalty_from_dict",
]


class PenaltyModel(abc.ABC):
    """Maps remote fraction (and optional pool pressure) to dilation."""

    name: str = "abstract"

    @abc.abstractmethod
    def dilation(self, remote_fraction: float, pool_pressure: float = 0.0) -> float:
        """Dilation ``d ≥ 0``; realized runtime is ``runtime × (1+d)``.

        ``pool_pressure`` is the fraction of pool *bandwidth* already
        committed when the job starts (0 = idle fabric); only the
        contention model uses it.
        """

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.name}
        data.update(
            {k: v for k, v in self.__dict__.items() if not k.startswith("_")}
        )
        return data

    @staticmethod
    def _check_fraction(remote_fraction: float) -> float:
        if remote_fraction < 0.0 or remote_fraction > 1.0:
            raise ConfigurationError(
                f"remote fraction must be within [0, 1], got {remote_fraction}"
            )
        return remote_fraction


class NoPenalty(PenaltyModel):
    """Idealized fabric: remote memory is free (upper-bound arm)."""

    name = "none"

    def dilation(self, remote_fraction: float, pool_pressure: float = 0.0) -> float:
        self._check_fraction(remote_fraction)
        return 0.0


class LinearPenalty(PenaltyModel):
    """Dilation grows linearly with the remote fraction: ``β · f``.

    β is the dilation of a fully remote job; published CXL numbers put
    app-level slowdowns for fully pooled working sets around 1.2–1.5×,
    i.e. β in [0.2, 0.5], which is the range experiment F6 sweeps.
    """

    name = "linear"

    def __init__(self, beta: float = 0.3) -> None:
        if beta < 0:
            raise ConfigurationError("beta must be non-negative")
        self.beta = beta

    def dilation(self, remote_fraction: float, pool_pressure: float = 0.0) -> float:
        return self.beta * self._check_fraction(remote_fraction)


class SaturatingPenalty(PenaltyModel):
    """Concave dilation ``β·f / (1 + γ·f)``.

    Models working-set locality: the first remote gigabytes hold cold
    pages, so the marginal cost of remote memory falls with ``f``.
    """

    name = "saturating"

    def __init__(self, beta: float = 0.5, gamma: float = 1.0) -> None:
        if beta < 0 or gamma < 0:
            raise ConfigurationError("beta and gamma must be non-negative")
        self.beta = beta
        self.gamma = gamma

    def dilation(self, remote_fraction: float, pool_pressure: float = 0.0) -> float:
        f = self._check_fraction(remote_fraction)
        return self.beta * f / (1.0 + self.gamma * f)


class ContentionPenalty(PenaltyModel):
    """Linear penalty inflated by pool-bandwidth pressure.

    ``β · f · (1 + κ · max(0, pressure - threshold))`` — below the
    pressure threshold the fabric is uncongested and the model matches
    :class:`LinearPenalty`; above it, every unit of excess pressure
    adds κ·β·f of queueing surcharge.
    """

    name = "contention"

    def __init__(self, beta: float = 0.3, kappa: float = 2.0, threshold: float = 0.5) -> None:
        if beta < 0 or kappa < 0:
            raise ConfigurationError("beta and kappa must be non-negative")
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError("threshold must be within [0, 1]")
        self.beta = beta
        self.kappa = kappa
        self.threshold = threshold

    def dilation(self, remote_fraction: float, pool_pressure: float = 0.0) -> float:
        f = self._check_fraction(remote_fraction)
        surcharge = 1.0 + self.kappa * max(0.0, pool_pressure - self.threshold)
        return self.beta * f * surcharge


_MODELS = {
    "none": NoPenalty,
    "linear": LinearPenalty,
    "saturating": SaturatingPenalty,
    "contention": ContentionPenalty,
}


def penalty_from_dict(data: Mapping[str, Any] | str | None) -> PenaltyModel:
    """Build a penalty model from a config dict (or bare name)."""
    if data is None:
        return LinearPenalty()
    if isinstance(data, str):
        data = {"kind": data}
    data = dict(data)
    kind = data.pop("kind", "linear")
    cls = _MODELS.get(str(kind).lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown penalty model {kind!r}; choose from {sorted(_MODELS)}"
        )
    return cls(**data)

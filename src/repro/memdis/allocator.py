"""Pool allocation policies.

Given the nodes chosen for a job and its per-node remote share, an
allocator decides *which pools* supply the memory.  Three reaches:

* **global** — one system-wide pool serves everything (simplest,
  maximal statistical multiplexing, but the fabric hop is longest);
* **rack**  — each node draws only from its rack's pool (short reach,
  but pools can strand capacity when racks are imbalanced);
* **hybrid** — rack pool first, overflow to the global pool.

Every allocator exposes a *non-mutating* :meth:`PoolAllocator.plan`
used by the scheduler for feasibility and reservations, and the engine
applies a returned plan atomically through the cluster.  Plans map
``pool_id -> MiB``.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from ..cluster.cluster import Cluster
from ..errors import ConfigurationError

__all__ = [
    "PoolAllocator",
    "GlobalPoolAllocator",
    "RackLocalAllocator",
    "HybridAllocator",
    "allocator_for",
]


class PoolAllocator(abc.ABC):
    """Maps (nodes, per-node remote MiB) to pool grants."""

    name: str = "abstract"

    @abc.abstractmethod
    def plan(
        self,
        cluster: Cluster,
        node_ids: Sequence[int],
        remote_per_node: int,
        free_override: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, int]]:
        """Return ``{pool_id: MiB}`` or ``None`` when infeasible.

        ``free_override`` lets the backfill reservation logic evaluate
        feasibility against *hypothetical* pool availability (current
        free plus grants that will have been returned by some future
        time) without touching live pool state.
        """

    # ------------------------------------------------------------------
    def _free(
        self, cluster: Cluster, pool_id: str, free_override: Optional[Dict[str, int]]
    ) -> int:
        if free_override is not None and pool_id in free_override:
            return free_override[pool_id]
        return cluster.pool_by_id(pool_id).free

    def feasible(
        self,
        cluster: Cluster,
        node_ids: Sequence[int],
        remote_per_node: int,
        free_override: Optional[Dict[str, int]] = None,
    ) -> bool:
        """Convenience: is a plan possible for this demand?"""
        return self.plan(cluster, node_ids, remote_per_node, free_override) is not None


class GlobalPoolAllocator(PoolAllocator):
    """All remote memory comes from the system-wide pool."""

    name = "global"

    def plan(
        self,
        cluster: Cluster,
        node_ids: Sequence[int],
        remote_per_node: int,
        free_override: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, int]]:
        need = remote_per_node * len(node_ids)
        if need == 0:
            return {}
        if cluster.global_pool is None:
            return None
        if self._free(cluster, "global", free_override) < need:
            return None
        return {"global": need}


class RackLocalAllocator(PoolAllocator):
    """Each node draws its remote share from its own rack pool only."""

    name = "rack"

    def plan(
        self,
        cluster: Cluster,
        node_ids: Sequence[int],
        remote_per_node: int,
        free_override: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, int]]:
        if remote_per_node == 0:
            return {}
        demand_by_rack: Dict[int, int] = {}
        for node_id in node_ids:
            rack_id = cluster.node(node_id).rack_id
            demand_by_rack[rack_id] = demand_by_rack.get(rack_id, 0) + remote_per_node
        grants: Dict[str, int] = {}
        for rack_id, need in demand_by_rack.items():
            pool = cluster.rack(rack_id).pool
            if pool is None:
                return None
            if self._free(cluster, pool.pool_id, free_override) < need:
                return None
            grants[pool.pool_id] = need
        return grants


class HybridAllocator(PoolAllocator):
    """Rack pool first, overflow to the global pool.

    Overflow is computed per rack: a rack whose pool cannot cover its
    nodes' demand sends the remainder to the global pool.  This is the
    policy a tiered CXL fabric implements naturally.
    """

    name = "hybrid"

    def plan(
        self,
        cluster: Cluster,
        node_ids: Sequence[int],
        remote_per_node: int,
        free_override: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, int]]:
        if remote_per_node == 0:
            return {}
        demand_by_rack: Dict[int, int] = {}
        for node_id in node_ids:
            rack_id = cluster.node(node_id).rack_id
            demand_by_rack[rack_id] = demand_by_rack.get(rack_id, 0) + remote_per_node
        grants: Dict[str, int] = {}
        overflow = 0
        for rack_id, need in demand_by_rack.items():
            pool = cluster.rack(rack_id).pool
            if pool is None:
                overflow += need
                continue
            # A free_override from the reservation sweep can be
            # negative (the pool is hypothetically over-committed at
            # that instant); an unclamped take would then *inflate*
            # the global overflow past the actual demand.
            free = max(0, self._free(cluster, pool.pool_id, free_override))
            take = min(need, free)
            if take > 0:
                grants[pool.pool_id] = grants.get(pool.pool_id, 0) + take
            overflow += need - take
        if overflow > 0:
            if cluster.global_pool is None:
                return None
            if self._free(cluster, "global", free_override) < overflow:
                return None
            grants["global"] = grants.get("global", 0) + overflow
        return grants


_ALLOCATORS = {
    "global": GlobalPoolAllocator,
    "rack": RackLocalAllocator,
    "hybrid": HybridAllocator,
}


def allocator_for(name: str) -> PoolAllocator:
    """Construct an allocator by reach name."""
    cls = _ALLOCATORS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown pool allocator {name!r}; choose from {sorted(_ALLOCATORS)}"
        )
    return cls()

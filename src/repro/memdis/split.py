"""Local/remote memory split policies.

Given a job's per-node request ``m`` and the node's local capacity
``L``, a split policy decides how much is served from node DRAM and
how much must come from a pool.  The obvious policy — local first,
overflow remote — is also the right one for performance (local DRAM is
strictly faster), but alternatives exist for modeling studies:
reserving local headroom for the OS, or pinning a fixed tier ratio the
way static CXL interleaving does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "MemorySplit",
    "SplitPolicy",
    "LocalFirstSplit",
    "FixedRatioSplit",
    "local_first_split",
]


@dataclass(frozen=True)
class MemorySplit:
    """Per-node local/remote shares in MiB."""

    local: int
    remote: int

    @property
    def total(self) -> int:
        return self.local + self.remote

    @property
    def remote_fraction(self) -> float:
        return self.remote / self.total if self.total else 0.0


class SplitPolicy(abc.ABC):
    """Decides the per-node local/remote split for a request."""

    @abc.abstractmethod
    def split(self, mem_per_node: int, local_capacity: int) -> MemorySplit:
        ...


class LocalFirstSplit(SplitPolicy):
    """Fill local DRAM (minus optional headroom) first, overflow remote.

    ``headroom`` models memory the node cannot give to jobs (OS, file
    cache); production schedulers always keep some.
    """

    def __init__(self, headroom: int = 0) -> None:
        if headroom < 0:
            raise ConfigurationError("headroom must be non-negative")
        self.headroom = headroom

    def split(self, mem_per_node: int, local_capacity: int) -> MemorySplit:
        usable = max(0, local_capacity - self.headroom)
        local = min(mem_per_node, usable)
        return MemorySplit(local=local, remote=mem_per_node - local)


class FixedRatioSplit(SplitPolicy):
    """Serve a fixed fraction locally (static interleaving model).

    ``local_ratio`` of the request goes local, capped by capacity; the
    rest is remote *even when it would fit locally*, which is exactly
    how hardware-interleaved CXL configurations behave.
    """

    def __init__(self, local_ratio: float, headroom: int = 0) -> None:
        if not (0.0 <= local_ratio <= 1.0):
            raise ConfigurationError("local_ratio must be within [0, 1]")
        if headroom < 0:
            raise ConfigurationError("headroom must be non-negative")
        self.local_ratio = local_ratio
        self.headroom = headroom

    def split(self, mem_per_node: int, local_capacity: int) -> MemorySplit:
        usable = max(0, local_capacity - self.headroom)
        local = min(int(round(mem_per_node * self.local_ratio)), usable, mem_per_node)
        return MemorySplit(local=local, remote=mem_per_node - local)


def local_first_split(mem_per_node: int, local_capacity: int) -> MemorySplit:
    """Module-level shortcut for the default policy."""
    return LocalFirstSplit().split(mem_per_node, local_capacity)

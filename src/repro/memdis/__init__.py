"""Disaggregated-memory subsystem.

Four concerns, each in its own module:

* :mod:`~repro.memdis.split` — how a job's per-node footprint divides
  into a local and a remote share;
* :mod:`~repro.memdis.allocator` — which pool(s) serve the remote
  share (global / rack-local / hybrid), with non-mutating feasibility
  checks the scheduler uses for reservations;
* :mod:`~repro.memdis.penalty` — how the remote share dilates runtime;
* :mod:`~repro.memdis.ledger` — conservation accounting and an event
  trail for audits and time-series metrics.
"""

from .split import MemorySplit, SplitPolicy, LocalFirstSplit, FixedRatioSplit, local_first_split
from .allocator import (
    PoolAllocator,
    GlobalPoolAllocator,
    RackLocalAllocator,
    HybridAllocator,
    allocator_for,
)
from .penalty import (
    PenaltyModel,
    NoPenalty,
    LinearPenalty,
    SaturatingPenalty,
    ContentionPenalty,
    penalty_from_dict,
)
from .ledger import MemoryLedger, LedgerEntry

__all__ = [
    "MemorySplit",
    "SplitPolicy",
    "LocalFirstSplit",
    "FixedRatioSplit",
    "local_first_split",
    "PoolAllocator",
    "GlobalPoolAllocator",
    "RackLocalAllocator",
    "HybridAllocator",
    "allocator_for",
    "PenaltyModel",
    "NoPenalty",
    "LinearPenalty",
    "SaturatingPenalty",
    "ContentionPenalty",
    "penalty_from_dict",
    "MemoryLedger",
    "LedgerEntry",
]

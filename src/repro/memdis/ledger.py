"""Memory grant ledger: conservation accounting and an audit trail.

The cluster enforces capacity at the instant of each call; the ledger
provides the *history*: every grant and release, timestamped, with
per-job records.  The auditor replays it to prove conservation (every
MiB granted is released exactly once) and pool-capacity respect at all
times, and the metrics layer derives pool-occupancy time series from
it without having sampled during the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import AllocationError

__all__ = ["LedgerEntry", "MemoryLedger"]


@dataclass(frozen=True, slots=True)
class LedgerEntry:
    """One grant or release event (slotted: two per job per run)."""

    time: float
    job_id: int
    kind: str  # "grant" | "release"
    local_total: int  # MiB across all the job's nodes
    pool_grants: Tuple[Tuple[str, int], ...]  # sorted (pool_id, MiB)

    @property
    def remote_total(self) -> int:
        return sum(amount for _, amount in self.pool_grants)


class MemoryLedger:
    """Append-only record of memory grants."""

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []
        self._open: Dict[int, LedgerEntry] = {}

    @classmethod
    def from_entries(cls, entries: Iterable[LedgerEntry]) -> "MemoryLedger":
        """Rebuild a ledger (including its open-grant map) from saved
        entries — the checkpoint/restore path.  The entry list is the
        complete state: an open grant is exactly a grant entry without
        a later release for the same job."""
        ledger = cls()
        for entry in entries:
            ledger.entries.append(entry)
            if entry.kind == "grant":
                if entry.job_id in ledger._open:
                    raise AllocationError(
                        f"ledger restore: job {entry.job_id} granted twice"
                    )
                ledger._open[entry.job_id] = entry
            else:
                if ledger._open.pop(entry.job_id, None) is None:
                    raise AllocationError(
                        f"ledger restore: job {entry.job_id} released "
                        "without an open grant"
                    )
        return ledger

    # ------------------------------------------------------------------
    def record_grant(
        self,
        time: float,
        job_id: int,
        local_total: int,
        pool_grants: Dict[str, int],
    ) -> None:
        if job_id in self._open:
            raise AllocationError(f"ledger: job {job_id} already holds a grant")
        entry = LedgerEntry(
            time=time,
            job_id=job_id,
            kind="grant",
            local_total=local_total,
            pool_grants=tuple(sorted(pool_grants.items())),
        )
        self.entries.append(entry)
        self._open[job_id] = entry

    def record_grant_batch(
        self,
        time: float,
        grants: Iterable[Tuple[int, int, Dict[str, int]]],
    ) -> None:
        """Append one scheduling pass's grants in decision order.

        ``grants`` yields ``(job_id, local_total, pool_grants)``; the
        entry sequence and per-entry validation are exactly those of
        one :meth:`record_grant` call per started job.
        """
        for job_id, local_total, pool_grants in grants:
            self.record_grant(time, job_id, local_total, pool_grants)

    def record_release(self, time: float, job_id: int) -> LedgerEntry:
        """Close the job's open grant; returns the matching grant entry."""
        grant = self._open.pop(job_id, None)
        if grant is None:
            raise AllocationError(f"ledger: job {job_id} has no open grant")
        if time < grant.time:
            raise AllocationError(
                f"ledger: job {job_id} released at t={time} before grant t={grant.time}"
            )
        self.entries.append(
            LedgerEntry(
                time=time,
                job_id=job_id,
                kind="release",
                local_total=grant.local_total,
                pool_grants=grant.pool_grants,
            )
        )
        return grant

    # ------------------------------------------------------------------
    @property
    def open_jobs(self) -> List[int]:
        return sorted(self._open)

    def outstanding_remote(self) -> int:
        """Total pool MiB currently granted."""
        return sum(entry.remote_total for entry in self._open.values())

    def outstanding_local(self) -> int:
        return sum(entry.local_total for entry in self._open.values())

    def pool_occupancy_series(self, pool_id: str) -> List[Tuple[float, int]]:
        """(time, occupancy MiB) step series for one pool.

        Events at the same instant are netted before the point is
        emitted, so the series never shows a transient spike for a
        release-then-grant at one time.
        """
        deltas: Dict[float, int] = {}
        for entry in self.entries:
            amount = dict(entry.pool_grants).get(pool_id, 0)
            if amount == 0:
                continue
            sign = 1 if entry.kind == "grant" else -1
            deltas[entry.time] = deltas.get(entry.time, 0) + sign * amount
        series: List[Tuple[float, int]] = []
        level = 0
        for time in sorted(deltas):
            level += deltas[time]
            series.append((time, level))
        return series

    def verify_conservation(self) -> None:
        """Raise :class:`AllocationError` if any grant is unbalanced.

        Intended for end-of-run checks where all jobs have finished;
        open grants at call time count as violations.
        """
        if self._open:
            raise AllocationError(
                f"ledger: jobs {sorted(self._open)} still hold grants"
            )
        balance: Dict[int, int] = {}
        for entry in self.entries:
            sign = 1 if entry.kind == "grant" else -1
            key = entry.job_id
            balance[key] = balance.get(key, 0) + sign * (
                entry.local_total + entry.remote_total
            )
        bad = {job: value for job, value in balance.items() if value != 0}
        if bad:
            raise AllocationError(f"ledger: unbalanced jobs {bad}")

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

"""The assembled machine: nodes, racks, pools, and capacity queries."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from ..errors import AllocationError
from .fabric import Fabric
from .node import Node, NodeState
from .pool import MemoryPool
from .rack import Rack
from .spec import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """Instantiated hardware built from a :class:`ClusterSpec`.

    The cluster owns state (node ownership, pool grants) and enforces
    capacity; it performs no policy.  Node selection and local/remote
    splitting are decided by the scheduler stack and handed in as
    explicit grant maps.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        spec.validate()
        self.spec = spec
        self.nodes: List[Node] = []
        self.racks: List[Rack] = []
        rack_count = spec.num_racks
        for rack_id in range(rack_count):
            lo = rack_id * spec.nodes_per_rack
            hi = min(lo + spec.nodes_per_rack, spec.num_nodes)
            rack_nodes = [
                Node(node_id, rack_id, spec.node.cores, spec.node.local_mem)
                for node_id in range(lo, hi)
            ]
            self.nodes.extend(rack_nodes)
            pool: Optional[MemoryPool] = None
            if spec.pool.rack_pool > 0:
                pool = MemoryPool(
                    f"rack{rack_id}", spec.pool.rack_pool, spec.pool.rack_bandwidth
                )
            self.racks.append(Rack(rack_id, rack_nodes, pool))
        self.global_pool: Optional[MemoryPool] = None
        if spec.pool.global_pool > 0:
            self.global_pool = MemoryPool(
                "global", spec.pool.global_pool, spec.pool.global_bandwidth
            )
        self.fabric = Fabric(self)
        # Maintained capacity indexes: the scheduler hot path asks
        # "which nodes are free?" thousands of times per simulated
        # second, so the free set is kept incrementally instead of
        # re-scanned, and pool lookups are prebuilt (pool identity
        # never changes after construction).
        self._free_ids: set[int] = {node.node_id for node in self.nodes}
        self._free_frozen: Optional[FrozenSet[int]] = frozenset(self._free_ids)
        self._free_sorted: Optional[List[int]] = sorted(self._free_ids)
        #: Monotone state-change counter: bumped by every mutation that
        #: can affect availability (node ownership, node state, pool
        #: grants).  Consumers use it to validate availability caches;
        #: direct mutation of a ``MemoryPool``/``Node`` bypasses it, so
        #: always go through the cluster methods.
        self.version: int = 0
        # Version-batch state: within a batch (one scheduling pass)
        # the first mutation bumps the counter once and the rest are
        # absorbed — consumers only compare stamps for equality, and
        # a pass is one atomic decision unit.
        self._version_hold = False
        self._version_bumped = False
        self._all_ids: FrozenSet[int] = frozenset(n.node_id for n in self.nodes)
        self._all_sorted: List[int] = sorted(self._all_ids)
        self._pools: List[MemoryPool] = [
            rack.pool for rack in self.racks if rack.pool is not None
        ]
        if self.global_pool is not None:
            self._pools.append(self.global_pool)
        self._pools_by_id: Dict[str, MemoryPool] = {
            pool.pool_id: pool for pool in self._pools
        }
        self._pool_capacities: Dict[str, int] = {
            pool.pool_id: pool.capacity for pool in self._pools
        }
        #: Any pool with finite bandwidth?  When False, bandwidth
        #: pressure is identically zero and hot paths skip the scan.
        self.has_metered_pools: bool = any(
            pool.bandwidth != float("inf") for pool in self._pools
        )
        #: Pool-activity change stamps: monotone counters bumped when
        #: pool memory is granted (:meth:`allocate_pool` with a
        #: non-empty grant map) or returned (:meth:`release_pool`
        #: freeing anything).  Consumers cache derived views of the
        #: pool-holding running set — e.g. the start gates' next-pool-
        #: release estimate — keyed on the pair: while neither stamp
        #: moved, the set of pool-holding jobs is provably unchanged.
        self.pool_grant_count: int = 0
        self.pool_release_count: int = 0

    # ------------------------------------------------------------------
    # version batching (one bump per scheduling pass)
    # ------------------------------------------------------------------
    def begin_version_batch(self) -> None:
        """Coalesce version bumps until :meth:`end_version_batch`.

        The engine brackets each scheduling pass with a batch: the
        pass is one atomic decision unit, so its k starts (2k+
        mutations) advance the availability version once.  Cache
        consumers only ever compare stamps for equality, and a
        strategy that stamps its cache at pass teardown observes the
        final (post-bump) value either way — the coalescing is
        invisible except through the counter's arithmetic.
        """
        self._version_hold = True
        self._version_bumped = False

    def end_version_batch(self) -> None:
        self._version_hold = False

    def _bump_version(self) -> None:
        if self._version_hold:
            if self._version_bumped:
                return
            self._version_bumped = True
        self.version += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def rack(self, rack_id: int) -> Rack:
        return self.racks[rack_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    @property
    def free_node_count(self) -> int:
        return len(self._free_ids)

    @property
    def free_ids(self) -> FrozenSet[int]:
        """Maintained frozenset of idle node ids (no scan)."""
        if self._free_frozen is None:
            self._free_frozen = frozenset(self._free_ids)
        return self._free_frozen

    @property
    def all_node_ids(self) -> FrozenSet[int]:
        """Every node id, regardless of state (empty-machine queries)."""
        return self._all_ids

    def sorted_all_ids(self) -> List[int]:
        """Every node id ascending, cached (do not mutate)."""
        return self._all_sorted

    def sorted_free_ids(self) -> List[int]:
        """Idle node ids ascending, cached (do not mutate).

        Placement policies ask for the sorted free set on every
        feasibility probe; the cache turns that into a slice.
        """
        if self._free_sorted is None:
            self._free_sorted = sorted(self._free_ids)
        return self._free_sorted

    def free_nodes(self) -> List[Node]:
        """All idle nodes in node-id order (deterministic)."""
        return [self.nodes[node_id] for node_id in self.sorted_free_ids()]

    def all_pools(self) -> List[MemoryPool]:
        """Every pool, rack pools first then global (do not mutate)."""
        return self._pools

    def pool_capacities(self) -> Dict[str, int]:
        """``{pool_id: capacity MiB}`` — immutable after construction
        (do not mutate the returned dict)."""
        return self._pool_capacities

    def pool_by_id(self, pool_id: str) -> MemoryPool:
        try:
            return self._pools_by_id[pool_id]
        except KeyError:
            raise KeyError(pool_id) from None

    @property
    def total_pool_free(self) -> int:
        return sum(pool.free for pool in self.all_pools())

    @property
    def total_pool_capacity(self) -> int:
        return sum(pool.capacity for pool in self.all_pools())

    @property
    def total_pool_used(self) -> int:
        return sum(pool.used for pool in self.all_pools())

    # ------------------------------------------------------------------
    # allocation (called by the engine with scheduler-chosen grants)
    # ------------------------------------------------------------------
    def allocate_nodes(
        self,
        job_id: int,
        node_ids: Iterable[int],
        local_grant: int,
    ) -> None:
        """Assign ``node_ids`` exclusively to ``job_id``.

        ``local_grant`` is the per-node local-memory grant.  The call is
        atomic: on failure, nothing is allocated.
        """
        node_ids = list(node_ids)
        taken: List[Node] = []
        try:
            for node_id in node_ids:
                node = self.nodes[node_id]
                node.allocate(job_id, local_grant)
                taken.append(node)
        except AllocationError:
            for node in taken:
                node.release(job_id)
            raise
        self._free_ids.difference_update(node_ids)
        self._free_frozen = None
        self._free_sorted = None
        self._bump_version()

    def release_nodes(self, job_id: int, node_ids: Iterable[int]) -> None:
        node_ids = list(node_ids)
        for node_id in node_ids:
            self.nodes[node_id].release(job_id)
        self._free_ids.update(node_ids)
        self._free_frozen = None
        self._free_sorted = None
        self._bump_version()

    def take_down(self, node_id: int) -> None:
        """Remove an idle node from service (failure injection).

        The caller must release any running job first; taking down a
        busy node raises.
        """
        node = self.nodes[node_id]
        was_free = node.is_free
        node.mark_down()
        self._bump_version()
        if was_free:
            self._free_ids.discard(node_id)
            self._free_frozen = None
            self._free_sorted = None

    def bring_up(self, node_id: int) -> None:
        """Return a DOWN node to service."""
        node = self.nodes[node_id]
        if node.state is NodeState.DOWN:
            node.mark_up()
            self._bump_version()
            self._free_ids.add(node_id)
            self._free_frozen = None
            self._free_sorted = None

    def allocate_pool(self, job_id: int, grants: Dict[str, int]) -> None:
        """Apply pool grants ``{pool_id: MiB}`` atomically for ``job_id``."""
        applied: List[MemoryPool] = []
        try:
            for pool_id, amount in grants.items():
                if amount <= 0:
                    continue
                pool = self.pool_by_id(pool_id)
                pool.allocate(job_id, amount)
                applied.append(pool)
        except AllocationError:
            for pool in applied:
                pool.release_if_held(job_id)
            raise
        if applied:
            self.pool_grant_count += 1
        self._bump_version()

    def release_pool(self, job_id: int) -> int:
        """Release every pool grant held by ``job_id``; returns MiB freed."""
        freed = 0
        for pool in self.all_pools():
            freed += pool.release_if_held(job_id)
        if freed:
            self.pool_release_count += 1
        self._bump_version()
        return freed

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap state snapshot for metrics sampling."""
        free_count = len(self._free_ids)
        return {
            "free_nodes": free_count,
            "busy_nodes": self.num_nodes - free_count
            - sum(1 for node in self.nodes if node.state is NodeState.DOWN),
            "local_mem_granted": sum(
                node.local_grant for node in self.nodes if not node.is_free
            ),
            "pool_used": self.total_pool_used,
            "pool_capacity": self.total_pool_capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cluster({self.spec.name}: {self.num_nodes} nodes / "
            f"{self.num_racks} racks, pool={self.total_pool_capacity} MiB)"
        )

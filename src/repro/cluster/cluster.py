"""The assembled machine: nodes, racks, pools, and capacity queries."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import AllocationError
from .fabric import Fabric
from .node import Node, NodeState
from .pool import MemoryPool
from .rack import Rack
from .spec import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """Instantiated hardware built from a :class:`ClusterSpec`.

    The cluster owns state (node ownership, pool grants) and enforces
    capacity; it performs no policy.  Node selection and local/remote
    splitting are decided by the scheduler stack and handed in as
    explicit grant maps.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        spec.validate()
        self.spec = spec
        self.nodes: List[Node] = []
        self.racks: List[Rack] = []
        rack_count = spec.num_racks
        for rack_id in range(rack_count):
            lo = rack_id * spec.nodes_per_rack
            hi = min(lo + spec.nodes_per_rack, spec.num_nodes)
            rack_nodes = [
                Node(node_id, rack_id, spec.node.cores, spec.node.local_mem)
                for node_id in range(lo, hi)
            ]
            self.nodes.extend(rack_nodes)
            pool: Optional[MemoryPool] = None
            if spec.pool.rack_pool > 0:
                pool = MemoryPool(
                    f"rack{rack_id}", spec.pool.rack_pool, spec.pool.rack_bandwidth
                )
            self.racks.append(Rack(rack_id, rack_nodes, pool))
        self.global_pool: Optional[MemoryPool] = None
        if spec.pool.global_pool > 0:
            self.global_pool = MemoryPool(
                "global", spec.pool.global_pool, spec.pool.global_bandwidth
            )
        self.fabric = Fabric(self)
        self._free_count = len(self.nodes)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def rack(self, rack_id: int) -> Rack:
        return self.racks[rack_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    @property
    def free_node_count(self) -> int:
        return self._free_count

    def free_nodes(self) -> List[Node]:
        """All idle nodes in node-id order (deterministic)."""
        return [node for node in self.nodes if node.is_free]

    def all_pools(self) -> List[MemoryPool]:
        pools = [rack.pool for rack in self.racks if rack.pool is not None]
        if self.global_pool is not None:
            pools.append(self.global_pool)
        return pools

    def pool_by_id(self, pool_id: str) -> MemoryPool:
        for pool in self.all_pools():
            if pool.pool_id == pool_id:
                return pool
        raise KeyError(pool_id)

    @property
    def total_pool_free(self) -> int:
        return sum(pool.free for pool in self.all_pools())

    @property
    def total_pool_capacity(self) -> int:
        return sum(pool.capacity for pool in self.all_pools())

    @property
    def total_pool_used(self) -> int:
        return sum(pool.used for pool in self.all_pools())

    # ------------------------------------------------------------------
    # allocation (called by the engine with scheduler-chosen grants)
    # ------------------------------------------------------------------
    def allocate_nodes(
        self,
        job_id: int,
        node_ids: Iterable[int],
        local_grant: int,
    ) -> None:
        """Assign ``node_ids`` exclusively to ``job_id``.

        ``local_grant`` is the per-node local-memory grant.  The call is
        atomic: on failure, nothing is allocated.
        """
        node_ids = list(node_ids)
        taken: List[Node] = []
        try:
            for node_id in node_ids:
                node = self.nodes[node_id]
                node.allocate(job_id, local_grant)
                taken.append(node)
        except AllocationError:
            for node in taken:
                node.release(job_id)
            raise
        self._free_count -= len(node_ids)

    def release_nodes(self, job_id: int, node_ids: Iterable[int]) -> None:
        node_ids = list(node_ids)
        for node_id in node_ids:
            self.nodes[node_id].release(job_id)
        self._free_count += len(node_ids)

    def take_down(self, node_id: int) -> None:
        """Remove an idle node from service (failure injection).

        The caller must release any running job first; taking down a
        busy node raises.
        """
        node = self.nodes[node_id]
        was_free = node.is_free
        node.mark_down()
        if was_free:
            self._free_count -= 1

    def bring_up(self, node_id: int) -> None:
        """Return a DOWN node to service."""
        node = self.nodes[node_id]
        if node.state is NodeState.DOWN:
            node.mark_up()
            self._free_count += 1

    def allocate_pool(self, job_id: int, grants: Dict[str, int]) -> None:
        """Apply pool grants ``{pool_id: MiB}`` atomically for ``job_id``."""
        applied: List[MemoryPool] = []
        try:
            for pool_id, amount in grants.items():
                if amount <= 0:
                    continue
                pool = self.pool_by_id(pool_id)
                pool.allocate(job_id, amount)
                applied.append(pool)
        except AllocationError:
            for pool in applied:
                pool.release_if_held(job_id)
            raise

    def release_pool(self, job_id: int) -> int:
        """Release every pool grant held by ``job_id``; returns MiB freed."""
        freed = 0
        for pool in self.all_pools():
            freed += pool.release_if_held(job_id)
        return freed

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap state snapshot for metrics sampling."""
        return {
            "free_nodes": self._free_count,
            "busy_nodes": self.num_nodes - self._free_count
            - sum(1 for node in self.nodes if node.state is NodeState.DOWN),
            "local_mem_granted": sum(
                node.local_grant for node in self.nodes if not node.is_free
            ),
            "pool_used": self.total_pool_used,
            "pool_capacity": self.total_pool_capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cluster({self.spec.name}: {self.num_nodes} nodes / "
            f"{self.num_racks} racks, pool={self.total_pool_capacity} MiB)"
        )

"""Rack grouping of nodes with an optional rack-local memory pool."""

from __future__ import annotations

from typing import List, Optional

from .node import Node
from .pool import MemoryPool

__all__ = ["Rack"]


class Rack:
    """A rack: a set of nodes plus, optionally, a rack-local pool.

    Rack locality matters because a rack-local pool is only reachable
    from its own nodes; placement policies that pack jobs into racks
    keep remote memory close and leave other racks' pools free.
    """

    __slots__ = ("rack_id", "nodes", "pool")

    def __init__(self, rack_id: int, nodes: List[Node], pool: Optional[MemoryPool]) -> None:
        self.rack_id = rack_id
        self.nodes = nodes
        self.pool = pool

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def free_nodes(self) -> int:
        return sum(1 for node in self.nodes if node.is_free)

    @property
    def pool_free(self) -> int:
        return self.pool.free if self.pool is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Rack(id={self.rack_id}, nodes={self.num_nodes}, "
            f"free={self.free_nodes}, pool_free={self.pool_free} MiB)"
        )

"""Hardware model: nodes, racks, disaggregated memory pools, fabric.

The cluster is the passive substrate: it tracks which nodes are busy
and how much pool memory is granted, enforces capacity, and answers
feasibility queries.  *Choosing* nodes and pool grants is the job of
the scheduler (:mod:`repro.sched`) and the memory allocator
(:mod:`repro.memdis`).
"""

from .spec import ClusterSpec, PoolSpec, NodeSpec
from .node import Node, NodeState
from .rack import Rack
from .pool import MemoryPool
from .fabric import Fabric, PoolReach
from .cluster import Cluster

__all__ = [
    "ClusterSpec",
    "PoolSpec",
    "NodeSpec",
    "Node",
    "NodeState",
    "Rack",
    "MemoryPool",
    "Fabric",
    "PoolReach",
    "Cluster",
]

"""Disaggregated memory pool with per-job grant accounting."""

from __future__ import annotations

from typing import Dict

from ..errors import AllocationError

__all__ = ["MemoryPool"]


class MemoryPool:
    """A shared memory pool (rack-local or system-wide).

    Tracks per-job grants so release is exact and double-free is
    detectable.  Bandwidth is a *declared* capacity consumed by the
    contention penalty model; the pool itself only enforces capacity.
    """

    __slots__ = ("pool_id", "capacity", "bandwidth", "_grants", "_used")

    def __init__(self, pool_id: str, capacity: int, bandwidth: float = float("inf")) -> None:
        if capacity < 0:
            raise AllocationError(f"pool capacity must be non-negative, got {capacity}")
        self.pool_id = pool_id
        self.capacity = capacity  # MiB
        self.bandwidth = bandwidth
        self._grants: Dict[int, int] = {}
        self._used = 0

    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    @property
    def utilization(self) -> float:
        return self._used / self.capacity if self.capacity else 0.0

    def grant_of(self, job_id: int) -> int:
        return self._grants.get(job_id, 0)

    @property
    def active_jobs(self) -> int:
        return len(self._grants)

    # ------------------------------------------------------------------
    def allocate(self, job_id: int, amount: int) -> None:
        """Grant ``amount`` MiB to ``job_id`` (additive across calls)."""
        if amount < 0:
            raise AllocationError(f"negative pool allocation {amount} for job {job_id}")
        if amount == 0:
            return
        if amount > self.free:
            raise AllocationError(
                f"pool {self.pool_id}: job {job_id} requested {amount} MiB "
                f"but only {self.free} free of {self.capacity}"
            )
        self._grants[job_id] = self._grants.get(job_id, 0) + amount
        self._used += amount

    def release(self, job_id: int) -> int:
        """Return the whole grant of ``job_id``; returns the amount freed."""
        amount = self._grants.pop(job_id, None)
        if amount is None:
            raise AllocationError(
                f"pool {self.pool_id}: job {job_id} holds no grant to release"
            )
        self._used -= amount
        return amount

    def release_if_held(self, job_id: int) -> int:
        """Release ``job_id``'s grant if any; returns amount (0 if none)."""
        if job_id in self._grants:
            return self.release(job_id)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryPool({self.pool_id}, used={self._used}/{self.capacity} MiB, "
            f"jobs={len(self._grants)})"
        )

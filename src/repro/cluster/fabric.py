"""Pool reachability model.

The fabric answers one question: *which pools can a given set of nodes
draw remote memory from, and in what preference order?*  Two reach
domains exist:

* every node reaches its **rack pool** (if the spec defines one);
* every node reaches the **global pool** (if defined).

Preference order is rack-first (closer, cheaper) then global; the
hybrid allocator in :mod:`repro.memdis.allocator` exploits this.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import Cluster
    from .pool import MemoryPool

__all__ = ["PoolReach", "Fabric"]


class PoolReach(enum.Enum):
    """Which domain a pool belongs to."""

    RACK = "rack"
    GLOBAL = "global"


class Fabric:
    """Reachability and ordering of pools for node sets."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster

    def reachable_pools(self, node_ids: List[int]) -> List["MemoryPool"]:
        """Pools reachable by *all* of ``node_ids``, nearest first.

        A rack pool qualifies only when every node lives in that rack —
        a job spanning racks cannot stripe one logical grant across
        rack pools it cannot uniformly reach.  (Per-node grants across
        different rack pools are handled by the allocator, which calls
        :meth:`pools_for_node` instead.)
        """
        pools: List["MemoryPool"] = []
        racks = {self._cluster.node(nid).rack_id for nid in node_ids}
        if len(racks) == 1:
            rack = self._cluster.rack(next(iter(racks)))
            if rack.pool is not None:
                pools.append(rack.pool)
        if self._cluster.global_pool is not None:
            pools.append(self._cluster.global_pool)
        return pools

    def pools_for_node(self, node_id: int) -> List["MemoryPool"]:
        """Pools reachable by one node, nearest first."""
        pools: List["MemoryPool"] = []
        rack = self._cluster.rack(self._cluster.node(node_id).rack_id)
        if rack.pool is not None:
            pools.append(rack.pool)
        if self._cluster.global_pool is not None:
            pools.append(self._cluster.global_pool)
        return pools

"""Declarative cluster specifications.

A :class:`ClusterSpec` fully describes the hardware under test:
node count and shape, rack organization, and the disaggregated memory
pools (rack-local and/or global).  Specs are plain dataclasses with a
dict round-trip so experiment configurations can live in JSON.

The two canonical configurations of the evaluation are provided as
constructors: :func:`ClusterSpec.fat_node` (big local DRAM, no pool)
and :func:`ClusterSpec.thin_node` (small local DRAM plus pool capacity
expressed as a fraction of the DRAM removed from the nodes), which keeps
total-DRAM-preserving comparisons honest by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..units import GiB, parse_mem

__all__ = ["NodeSpec", "PoolSpec", "ClusterSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Shape of one compute node."""

    cores: int = 64
    local_mem: int = 256 * GiB  # MiB

    def validate(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.local_mem < 0:
            raise ConfigurationError(
                f"local_mem must be non-negative, got {self.local_mem}"
            )


@dataclass(frozen=True)
class PoolSpec:
    """Shape of the disaggregated memory pools.

    ``rack_pool`` is the capacity (MiB) of each per-rack pool;
    ``global_pool`` the capacity of the single system-wide pool.  Either
    may be zero.  ``rack_bandwidth`` / ``global_bandwidth`` are relative
    bandwidth capacities (jobs' remote demand in GiB counts against
    them) used only by the contention penalty model.
    """

    rack_pool: int = 0  # MiB per rack
    global_pool: int = 0  # MiB total
    rack_bandwidth: float = float("inf")
    global_bandwidth: float = float("inf")

    def validate(self) -> None:
        if self.rack_pool < 0 or self.global_pool < 0:
            raise ConfigurationError("pool capacities must be non-negative")
        if self.rack_bandwidth <= 0 or self.global_bandwidth <= 0:
            raise ConfigurationError("pool bandwidths must be positive")

    @property
    def disaggregated(self) -> bool:
        return self.rack_pool > 0 or self.global_pool > 0


@dataclass(frozen=True)
class ClusterSpec:
    """Complete description of a simulated machine."""

    name: str = "cluster"
    num_nodes: int = 128
    nodes_per_rack: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    pool: PoolSpec = field(default_factory=PoolSpec)

    def validate(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.nodes_per_rack <= 0:
            raise ConfigurationError(
                f"nodes_per_rack must be positive, got {self.nodes_per_rack}"
            )
        self.node.validate()
        self.pool.validate()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_racks(self) -> int:
        return -(-self.num_nodes // self.nodes_per_rack)  # ceil division

    @property
    def total_local_mem(self) -> int:
        """Total node-local DRAM in MiB."""
        return self.num_nodes * self.node.local_mem

    @property
    def total_pool_mem(self) -> int:
        """Total disaggregated DRAM in MiB."""
        return self.num_racks * self.pool.rack_pool + self.pool.global_pool

    @property
    def total_mem(self) -> int:
        return self.total_local_mem + self.total_pool_mem

    # ------------------------------------------------------------------
    # canonical configurations
    # ------------------------------------------------------------------
    @classmethod
    def fat_node(
        cls,
        num_nodes: int = 128,
        local_mem: int | str = 512 * GiB,
        cores: int = 64,
        nodes_per_rack: int = 16,
        name: str = "FAT",
    ) -> "ClusterSpec":
        """Traditional provisioning: all DRAM is node-local, no pool."""
        return cls(
            name=name,
            num_nodes=num_nodes,
            nodes_per_rack=nodes_per_rack,
            node=NodeSpec(cores=cores, local_mem=parse_mem(local_mem)),
            pool=PoolSpec(),
        )

    @classmethod
    def thin_node(
        cls,
        num_nodes: int = 128,
        local_mem: int | str = 128 * GiB,
        fat_local_mem: int | str = 512 * GiB,
        pool_fraction: float = 1.0,
        reach: str = "global",
        cores: int = 64,
        nodes_per_rack: int = 16,
        name: str | None = None,
        rack_bandwidth: float = float("inf"),
        global_bandwidth: float = float("inf"),
    ) -> "ClusterSpec":
        """Disaggregated provisioning at controlled total-DRAM budget.

        The DRAM removed from each node relative to the fat baseline
        (``fat_local_mem - local_mem``) is returned to the system as
        pool capacity scaled by ``pool_fraction``; ``pool_fraction=1``
        keeps total DRAM identical to the fat baseline,
        ``pool_fraction<1`` models the cost-saving configurations the
        paper's economics argument rests on.  ``reach`` is ``"global"``
        (one system-wide pool) or ``"rack"`` (per-rack pools).
        """
        local = parse_mem(local_mem)
        fat = parse_mem(fat_local_mem)
        if local > fat:
            raise ConfigurationError(
                f"thin-node local_mem {local} exceeds fat baseline {fat}"
            )
        if pool_fraction < 0:
            raise ConfigurationError("pool_fraction must be non-negative")
        removed_total = (fat - local) * num_nodes
        pool_total = int(round(removed_total * pool_fraction))
        num_racks = -(-num_nodes // nodes_per_rack)
        if reach == "global":
            pool = PoolSpec(global_pool=pool_total, global_bandwidth=global_bandwidth)
        elif reach == "rack":
            pool = PoolSpec(
                rack_pool=pool_total // num_racks, rack_bandwidth=rack_bandwidth
            )
        else:
            raise ConfigurationError(f"unknown pool reach {reach!r}")
        if name is None:
            name = f"THIN-{reach.upper()}-{int(pool_fraction * 100)}"
        return cls(
            name=name,
            num_nodes=num_nodes,
            nodes_per_rack=nodes_per_rack,
            node=NodeSpec(cores=cores, local_mem=local),
            pool=pool,
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        node_data = dict(data.get("node", {}))
        pool_data = dict(data.get("pool", {}))
        if "local_mem" in node_data:
            node_data["local_mem"] = parse_mem(node_data["local_mem"])
        if "rack_pool" in pool_data:
            pool_data["rack_pool"] = parse_mem(pool_data["rack_pool"])
        if "global_pool" in pool_data:
            pool_data["global_pool"] = parse_mem(pool_data["global_pool"])
        spec = cls(
            name=data.get("name", "cluster"),
            num_nodes=int(data.get("num_nodes", 128)),
            nodes_per_rack=int(data.get("nodes_per_rack", 16)),
            node=NodeSpec(**node_data),
            pool=PoolSpec(**pool_data),
        )
        spec.validate()
        return spec

"""Compute-node state tracking."""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import AllocationError

__all__ = ["Node", "NodeState"]


class NodeState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    DOWN = "down"


class Node:
    """One exclusively scheduled compute node.

    HPC batch systems allocate whole nodes to jobs, so a node is either
    idle or owned by exactly one job.  The node records the owning job
    id and the local-memory grant (which may be less than capacity when
    the job's footprint fits partially and the remainder is remote).
    """

    __slots__ = ("node_id", "rack_id", "cores", "local_mem", "state",
                 "job_id", "local_grant")

    def __init__(self, node_id: int, rack_id: int, cores: int, local_mem: int) -> None:
        self.node_id = node_id
        self.rack_id = rack_id
        self.cores = cores
        self.local_mem = local_mem  # capacity, MiB
        self.state = NodeState.IDLE
        self.job_id: Optional[int] = None
        self.local_grant = 0  # MiB currently granted to the owning job

    @property
    def is_free(self) -> bool:
        return self.state is NodeState.IDLE

    def allocate(self, job_id: int, local_grant: int) -> None:
        """Give this node to ``job_id`` with ``local_grant`` MiB local memory."""
        if self.state is not NodeState.IDLE:
            raise AllocationError(
                f"node {self.node_id} is {self.state.value}, cannot allocate "
                f"to job {job_id} (currently owned by {self.job_id})"
            )
        if local_grant < 0 or local_grant > self.local_mem:
            raise AllocationError(
                f"local grant {local_grant} MiB outside [0, {self.local_mem}] "
                f"on node {self.node_id}"
            )
        self.state = NodeState.BUSY
        self.job_id = job_id
        self.local_grant = local_grant

    def release(self, job_id: int) -> None:
        """Return the node from ``job_id``; must match the owner."""
        if self.state is not NodeState.BUSY or self.job_id != job_id:
            raise AllocationError(
                f"node {self.node_id} not held by job {job_id} "
                f"(state={self.state.value}, owner={self.job_id})"
            )
        self.state = NodeState.IDLE
        self.job_id = None
        self.local_grant = 0

    def mark_down(self) -> None:
        """Take an idle node out of service (failure-injection support)."""
        if self.state is NodeState.BUSY:
            raise AllocationError(
                f"node {self.node_id} is busy with job {self.job_id}; "
                "release before marking down"
            )
        self.state = NodeState.DOWN

    def mark_up(self) -> None:
        if self.state is NodeState.DOWN:
            self.state = NodeState.IDLE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node(id={self.node_id}, rack={self.rack_id}, "
            f"state={self.state.value}, job={self.job_id})"
        )

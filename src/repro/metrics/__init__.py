"""Metrics: per-job statistics, system utilization, summaries, reports."""

from .jobstats import JobFrame, collect_jobs, aggregate
from .sysstats import SystemStats, compute_system_stats, stranded_memory_fraction
from .timeseries import step_integral, step_series_from_jobs, resample_step
from .summary import ResultSummary, summarize
from .report import ascii_table, rows_to_csv, format_row
from .userstats import UserStats, per_user_stats, jain_index
from .gantt import render_gantt

__all__ = [
    "JobFrame",
    "collect_jobs",
    "aggregate",
    "SystemStats",
    "compute_system_stats",
    "stranded_memory_fraction",
    "step_integral",
    "step_series_from_jobs",
    "resample_step",
    "ResultSummary",
    "summarize",
    "ascii_table",
    "rows_to_csv",
    "format_row",
    "UserStats",
    "per_user_stats",
    "jain_index",
    "render_gantt",
]

"""Per-user statistics and fairness indices.

Fair-share evaluation needs two views: how much each user *consumed*
(node-seconds, pool-MiB-seconds) and how each user was *served* (mean
wait/slowdown).  The classic scalar for "how even is this" is Jain's
fairness index: 1.0 when perfectly even, 1/n when one user takes all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..workload.job import Job, JobState

__all__ = ["UserStats", "per_user_stats", "jain_index"]


@dataclass(frozen=True)
class UserStats:
    """Aggregated outcomes for one user."""

    user: str
    jobs: int
    node_seconds: float
    pool_mib_seconds: float
    mean_wait: float
    mean_bsld: float


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``; 1.0 is perfectly fair.

    Empty input or all-zero input returns 1.0 (nothing to be unfair
    about).
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 1.0
    total = array.sum()
    squares = float(np.dot(array, array))
    if squares == 0.0:
        return 1.0
    return float(total * total / (array.size * squares))


def per_user_stats(jobs: Iterable[Job], tau: float = 10.0) -> List[UserStats]:
    """Per-user aggregation over finished jobs, sorted by user name."""
    buckets: Dict[str, List[Job]] = {}
    for job in jobs:
        if job.state in (JobState.COMPLETED, JobState.KILLED) \
                and job.start_time is not None and job.end_time is not None:
            buckets.setdefault(job.user, []).append(job)
    stats: List[UserStats] = []
    for user in sorted(buckets):
        mine = buckets[user]
        durations = [j.end_time - j.start_time for j in mine]
        node_seconds = sum(j.nodes * d for j, d in zip(mine, durations))
        pool_mib_seconds = sum(
            sum(j.pool_grants.values()) * d for j, d in zip(mine, durations)
        )
        waits = [j.wait_time for j in mine]
        bslds = [j.bounded_slowdown(tau) for j in mine]
        stats.append(
            UserStats(
                user=user,
                jobs=len(mine),
                node_seconds=node_seconds,
                pool_mib_seconds=pool_mib_seconds,
                mean_wait=float(np.mean(waits)),
                mean_bsld=float(np.mean(bslds)),
            )
        )
    return stats

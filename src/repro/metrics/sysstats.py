"""System-level statistics: utilization, memory stranding, throughput.

All integrals are exact step-function integrals over the measurement
horizon ``[first submit, last terminal event]`` (no sampling error).

Memory accounting vocabulary (per DESIGN.md / experiment F1):

* **granted local** — node DRAM promised to running jobs (their
  requested footprint clipped to node capacity);
* **used local** — the part of granted local the jobs actually touch
  (their high-water usage, local share first);
* **stranded** — powered node DRAM that is *not used* at an instant:
  idle-node DRAM plus the granted-but-untouched and ungranted slack on
  busy nodes.  The stranded fraction on a fat-node machine is the
  quantitative motivation for disaggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cluster.spec import ClusterSpec
from .timeseries import step_integral, step_series_from_jobs
from ..engine.results import SimulationResult

__all__ = ["SystemStats", "compute_system_stats", "stranded_memory_fraction"]


@dataclass(frozen=True)
class SystemStats:
    """Horizon-integrated system metrics."""

    horizon: float  # seconds measured
    node_utilization: float  # busy node-seconds / capacity node-seconds
    local_mem_granted_util: float  # granted local MiB-s / capacity MiB-s
    local_mem_used_util: float  # used local MiB-s / capacity MiB-s
    stranded_fraction: float  # 1 - used-local utilization
    pool_utilization: float  # pool MiB-s used / pool capacity MiB-s (0 if no pool)
    throughput_jobs_per_hour: float
    delivered_node_hours: float
    completed: int
    killed: int
    rejected: int


def compute_system_stats(result: SimulationResult) -> SystemStats:
    spec = result.cluster_spec
    t0, t1 = result.started_at, result.finished_at
    horizon = max(t1 - t0, 1e-9)
    finished = result.finished

    # Node occupancy ---------------------------------------------------
    times, busy = step_series_from_jobs(finished, lambda job: float(job.nodes))
    busy_node_seconds = step_integral(times, busy, t0, t1)
    node_util = busy_node_seconds / (spec.num_nodes * horizon)

    # Local memory -----------------------------------------------------
    local_capacity = spec.total_local_mem  # MiB
    times_g, granted = step_series_from_jobs(
        finished, lambda job: float(job.local_grant_per_node * job.nodes)
    )
    granted_integral = step_integral(times_g, granted, t0, t1)
    granted_util = (
        granted_integral / (local_capacity * horizon) if local_capacity else 0.0
    )

    def used_local(job) -> float:
        # Usage fills the local share first (local DRAM is faster).
        return float(min(job.mem_used_per_node, job.local_grant_per_node) * job.nodes)

    times_u, used = step_series_from_jobs(finished, used_local)
    used_integral = step_integral(times_u, used, t0, t1)
    used_util = used_integral / (local_capacity * horizon) if local_capacity else 0.0

    # Pool -------------------------------------------------------------
    pool_capacity = spec.total_pool_mem
    pool_util = 0.0
    if pool_capacity > 0:
        pool_ids = [f"rack{r}" for r in range(spec.num_racks)] if spec.pool.rack_pool else []
        if spec.pool.global_pool:
            pool_ids.append("global")
        pool_integral = 0.0
        for pool_id in pool_ids:
            series = result.ledger.pool_occupancy_series(pool_id)
            if series:
                times_p = [t for t, _ in series]
                levels = [v for _, v in series]
                pool_integral += step_integral(times_p, levels, t0, t1)
        pool_util = pool_integral / (pool_capacity * horizon)

    completed = len(result.completed)
    return SystemStats(
        horizon=horizon,
        node_utilization=node_util,
        local_mem_granted_util=granted_util,
        local_mem_used_util=used_util,
        stranded_fraction=1.0 - used_util,
        pool_utilization=pool_util,
        throughput_jobs_per_hour=completed / (horizon / 3600.0),
        delivered_node_hours=busy_node_seconds / 3600.0,
        completed=completed,
        killed=len(result.killed),
        rejected=len(result.rejected),
    )


def stranded_memory_fraction(result: SimulationResult) -> float:
    """Fraction of machine DRAM (node-local) not actually used, time-
    averaged over the horizon — the F1 motivation number."""
    return compute_system_stats(result).stranded_fraction

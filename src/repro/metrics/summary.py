"""One-stop result summarization.

:func:`summarize` condenses a :class:`SimulationResult` into the flat
:class:`ResultSummary` record that tables, benches, and sweeps consume:
headline job metrics (wait / response / bounded slowdown aggregates),
system utilization, kill/reject counts, and optional per-memory-class
breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..engine.results import SimulationResult
from ..units import GiB
from .jobstats import JobFrame, aggregate, collect_jobs
from .sysstats import SystemStats, compute_system_stats

__all__ = ["ResultSummary", "summarize", "memory_class_of"]


def memory_class_of(mem_per_node: int, local_mem: int) -> str:
    """Classify a job by per-node footprint relative to node DRAM.

    * ``light`` — fits in half the node's local memory;
    * ``mid``   — fits locally but uses more than half;
    * ``heavy`` — exceeds local memory (needs the pool on this machine).
    """
    if mem_per_node <= local_mem // 2:
        return "light"
    if mem_per_node <= local_mem:
        return "mid"
    return "heavy"


@dataclass
class ResultSummary:
    """Flat summary of one simulation run."""

    label: str
    jobs_total: int
    jobs_completed: int
    jobs_killed: int
    jobs_rejected: int
    wait: Dict[str, float]
    response: Dict[str, float]
    bsld: Dict[str, float]
    node_utilization: float
    local_mem_used_util: float
    stranded_fraction: float
    pool_utilization: float
    throughput_jobs_per_hour: float
    makespan: float
    mean_remote_fraction: float
    mean_dilation: float
    by_class: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_tag: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def row(self) -> Dict[str, float | str | int]:
        """Flat dict for CSV/tables."""
        return {
            "label": self.label,
            "jobs": self.jobs_total,
            "completed": self.jobs_completed,
            "killed": self.jobs_killed,
            "rejected": self.jobs_rejected,
            "wait_mean": self.wait["mean"],
            "wait_p95": self.wait["p95"],
            "resp_mean": self.response["mean"],
            "bsld_mean": self.bsld["mean"],
            "bsld_p95": self.bsld["p95"],
            "node_util": self.node_utilization,
            "mem_used_util": self.local_mem_used_util,
            "stranded": self.stranded_fraction,
            "pool_util": self.pool_utilization,
            "jobs_per_hour": self.throughput_jobs_per_hour,
            "makespan_h": self.makespan / 3600.0,
            "remote_frac": self.mean_remote_fraction,
            "dilation": self.mean_dilation,
        }


def _class_breakdown(frame: JobFrame, local_mem: int) -> Dict[str, Dict[str, float]]:
    import numpy as np

    out: Dict[str, Dict[str, float]] = {}
    classes = np.array(
        [memory_class_of(int(m), local_mem) for m in frame.mem_per_node]
    )
    for cls in ("light", "mid", "heavy"):
        sub = frame.mask(classes == cls)
        if len(sub) == 0:
            continue
        out[cls] = {
            "jobs": float(len(sub)),
            "wait_mean": float(sub.wait.mean()),
            "bsld_mean": float(sub.bounded_slowdown.mean()),
            "remote_frac_mean": float(sub.remote_fraction.mean()),
        }
    return out


def summarize(
    result: SimulationResult,
    label: str = "",
    class_local_mem: int | None = None,
) -> ResultSummary:
    """Summarize a run.

    ``class_local_mem`` sets the node-DRAM reference for the
    light/mid/heavy breakdown; defaults to the run's own node size, but
    cross-configuration tables should pass the *fat baseline* size so
    classes mean the same thing in every column.
    """
    frame = collect_jobs(result.jobs)
    stats: SystemStats = compute_system_stats(result)
    local_mem = (
        class_local_mem
        if class_local_mem is not None
        else result.cluster_spec.node.local_mem
    )
    by_tag: Dict[str, Dict[str, float]] = {}
    for tag, sub in frame.by_tag().items():
        by_tag[tag] = {
            "jobs": float(len(sub)),
            "wait_mean": float(sub.wait.mean()) if len(sub) else 0.0,
            "bsld_mean": float(sub.bounded_slowdown.mean()) if len(sub) else 0.0,
        }
    return ResultSummary(
        label=label or result.cluster_spec.name,
        jobs_total=len(result.jobs),
        jobs_completed=stats.completed,
        jobs_killed=stats.killed,
        jobs_rejected=stats.rejected,
        wait=aggregate(frame.wait),
        response=aggregate(frame.response),
        bsld=aggregate(frame.bounded_slowdown),
        node_utilization=stats.node_utilization,
        local_mem_used_util=stats.local_mem_used_util,
        stranded_fraction=stats.stranded_fraction,
        pool_utilization=stats.pool_utilization,
        throughput_jobs_per_hour=stats.throughput_jobs_per_hour,
        makespan=result.makespan,
        mean_remote_fraction=(
            float(frame.remote_fraction.mean()) if len(frame) else 0.0
        ),
        mean_dilation=float(frame.dilation.mean()) if len(frame) else 0.0,
        by_class=_class_breakdown(frame, local_mem),
        by_tag=by_tag,
    )

"""Plain-text tables and CSV output.

Benches print paper-style tables to stdout; sweeps write CSVs.  No
plotting dependency is assumed — figures are emitted as aligned series
tables (x column plus one column per curve), which is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["ascii_table", "rows_to_csv", "format_row", "series_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_row(row: Mapping[str, object], columns: Sequence[str]) -> List[str]:
    return [_fmt(row.get(col, "")) for col in columns]


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """CSV text from a list of flat dicts (union of keys, stable order)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        out.write(",".join(str(row.get(col, "")) for col in columns) + "\n")
    return out.getvalue()


def series_table(
    x_name: str,
    x_values: Sequence,
    series: Dict[str, Sequence],
) -> str:
    """Figure-as-table: x column plus one column per named curve."""
    headers = [x_name] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return ascii_table(headers, rows)

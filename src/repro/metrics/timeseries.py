"""Step-function time series utilities.

Everything a batch simulation produces is piecewise constant between
events, so the natural series representation is ``(times, values)``
with ``values[i]`` holding on ``[times[i], times[i+1])``.  These
helpers build such series from job records and integrate them exactly
(no sampling error), per the numerics guidance of doing the math on
arrays rather than in Python loops.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

from ..workload.job import Job

__all__ = ["step_series_from_jobs", "step_integral", "resample_step"]


def step_series_from_jobs(
    jobs: Iterable[Job],
    weight: Callable[[Job], float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Step series of ``sum(weight(job))`` over all running jobs.

    Builds the +weight at start / -weight at end event sequence and
    returns ``(times, values)`` where ``values[i]`` holds on
    ``[times[i], times[i+1])``.  Jobs without an execution record are
    ignored.
    """
    events: List[Tuple[float, float]] = []
    for job in jobs:
        if job.start_time is None or job.end_time is None:
            continue
        w = weight(job)
        if w == 0.0:
            continue
        events.append((job.start_time, w))
        events.append((job.end_time, -w))
    if not events:
        return np.array([]), np.array([])
    events.sort(key=lambda item: item[0])
    times_raw = np.array([time for time, _ in events])
    deltas = np.array([delta for _, delta in events])
    # Collapse identical timestamps so the series is a function.
    times, index = np.unique(times_raw, return_inverse=True)
    merged = np.zeros_like(times, dtype=float)
    np.add.at(merged, index, deltas)
    values = np.cumsum(merged)
    # Clamp float dust: occupancy is a sum of +w/-w pairs.
    values[np.abs(values) < 1e-9] = 0.0
    return times, values


def step_integral(
    times: Sequence[float],
    values: Sequence[float],
    t0: float,
    t1: float,
) -> float:
    """Exact integral of a step series over ``[t0, t1]``.

    ``values[i]`` holds on ``[times[i], times[i+1])``; the level before
    ``times[0]`` is zero and the last level extends to ``t1``.
    """
    if t1 <= t0 or len(times) == 0:
        return 0.0
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    # Segment boundaries clipped to the window.
    starts = np.clip(times, t0, t1)
    ends = np.clip(np.append(times[1:], t1), t0, t1)
    widths = np.maximum(0.0, ends - starts)
    return float(np.dot(widths, values))


def resample_step(
    times: Sequence[float],
    values: Sequence[float],
    sample_times: Sequence[float],
) -> np.ndarray:
    """Evaluate a step series at arbitrary instants (level is zero
    before the first breakpoint)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    sample_times = np.asarray(sample_times, dtype=float)
    if len(times) == 0:
        return np.zeros_like(sample_times)
    idx = np.searchsorted(times, sample_times, side="right") - 1
    out = np.where(idx >= 0, values[np.clip(idx, 0, len(values) - 1)], 0.0)
    return out

"""Per-job metric extraction and aggregation.

:func:`collect_jobs` turns a list of finished jobs into a
:class:`JobFrame` of parallel numpy arrays — the vectorized form every
aggregate below consumes.  The frame keeps request attributes (nodes,
memory) alongside outcome metrics (wait, slowdown, dilation) so
breakdowns by job class are one boolean mask away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..workload.job import Job, JobState

__all__ = ["JobFrame", "collect_jobs", "aggregate", "BSLD_TAU"]

BSLD_TAU = 10.0  # classic bounded-slowdown threshold, seconds


@dataclass
class JobFrame:
    """Columnar view of finished jobs."""

    job_ids: np.ndarray
    submit: np.ndarray
    start: np.ndarray
    end: np.ndarray
    nodes: np.ndarray
    runtime: np.ndarray  # base (undilated)
    walltime: np.ndarray
    mem_per_node: np.ndarray
    mem_used_per_node: np.ndarray
    remote_per_node: np.ndarray
    dilation: np.ndarray
    killed: np.ndarray  # bool
    tags: List[str]

    def __len__(self) -> int:
        return len(self.job_ids)

    # Derived metrics --------------------------------------------------
    @property
    def wait(self) -> np.ndarray:
        return self.start - self.submit

    @property
    def response(self) -> np.ndarray:
        return self.end - self.submit

    @property
    def bounded_slowdown(self) -> np.ndarray:
        denom = np.maximum(BSLD_TAU, self.runtime)
        return np.maximum(1.0, self.response / denom)

    @property
    def remote_fraction(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(
                self.mem_per_node > 0, self.remote_per_node / self.mem_per_node, 0.0
            )
        return frac

    @property
    def node_seconds(self) -> np.ndarray:
        return self.nodes * (self.end - self.start)

    def mask(self, predicate: np.ndarray) -> "JobFrame":
        """Sub-frame selected by a boolean mask."""
        idx = np.asarray(predicate, dtype=bool)
        return JobFrame(
            job_ids=self.job_ids[idx],
            submit=self.submit[idx],
            start=self.start[idx],
            end=self.end[idx],
            nodes=self.nodes[idx],
            runtime=self.runtime[idx],
            walltime=self.walltime[idx],
            mem_per_node=self.mem_per_node[idx],
            mem_used_per_node=self.mem_used_per_node[idx],
            remote_per_node=self.remote_per_node[idx],
            dilation=self.dilation[idx],
            killed=self.killed[idx],
            tags=[tag for tag, keep in zip(self.tags, idx) if keep],
        )

    def by_tag(self) -> Dict[str, "JobFrame"]:
        out: Dict[str, JobFrame] = {}
        for tag in sorted(set(self.tags)):
            out[tag] = self.mask(np.array([t == tag for t in self.tags]))
        return out


def collect_jobs(jobs: Iterable[Job]) -> JobFrame:
    """Build a frame from every job with a complete execution record."""
    ran = [
        job
        for job in jobs
        if job.state in (JobState.COMPLETED, JobState.KILLED)
        and job.start_time is not None
        and job.end_time is not None
    ]
    return JobFrame(
        job_ids=np.array([j.job_id for j in ran], dtype=np.int64),
        submit=np.array([j.submit_time for j in ran], dtype=float),
        start=np.array([j.start_time for j in ran], dtype=float),
        end=np.array([j.end_time for j in ran], dtype=float),
        nodes=np.array([j.nodes for j in ran], dtype=np.int64),
        runtime=np.array([j.runtime for j in ran], dtype=float),
        walltime=np.array([j.walltime for j in ran], dtype=float),
        mem_per_node=np.array([j.mem_per_node for j in ran], dtype=np.int64),
        mem_used_per_node=np.array([j.mem_used_per_node for j in ran], dtype=np.int64),
        remote_per_node=np.array([j.remote_per_node for j in ran], dtype=np.int64),
        dilation=np.array([j.dilation for j in ran], dtype=float),
        killed=np.array([j.state is JobState.KILLED for j in ran], dtype=bool),
        tags=[j.tag for j in ran],
    )


def aggregate(values: Sequence[float]) -> Dict[str, float]:
    """mean / median / p95 / max of a metric column (0s when empty)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(array)),
        "median": float(np.median(array)),
        "p95": float(np.percentile(array, 95)),
        "max": float(np.max(array)),
    }

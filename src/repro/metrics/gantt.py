"""ASCII Gantt rendering of small schedules.

For debugging scenarios and for the examples: one row per node, time
binned into fixed-width columns, each cell showing the job occupying
the node (last hex digit of the job id) or ``.`` for idle.  Pool
occupancy is rendered as a percentage sparkline row underneath when
the machine has pools.

This is intentionally a *small-schedule* tool (≤ ~64 nodes and ~120
columns read well); the real figures come from the metrics layer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..engine.results import SimulationResult
from ..workload.job import Job, JobState

__all__ = ["render_gantt"]

_SPARK = " .:-=+*#%@"


def _cell_char(job_id: int) -> str:
    return format(job_id % 16, "x")


def render_gantt(
    result: SimulationResult,
    width: int = 80,
    max_nodes: Optional[int] = 64,
) -> str:
    """Render the run as an ASCII node-time chart.

    ``width`` is the number of time columns; each column covers
    ``horizon / width`` seconds and shows the job occupying the node
    at the column's midpoint.
    """
    jobs: List[Job] = [
        job for job in result.jobs
        if job.state in (JobState.COMPLETED, JobState.KILLED)
        and job.start_time is not None and job.end_time is not None
    ]
    t0, t1 = result.started_at, result.finished_at
    horizon = max(t1 - t0, 1e-9)
    num_nodes = result.cluster_spec.num_nodes
    shown_nodes = num_nodes if max_nodes is None else min(num_nodes, max_nodes)
    step = horizon / width
    midpoints = [t0 + (i + 0.5) * step for i in range(width)]

    # node -> list of (start, end, job_id), sorted
    by_node: dict[int, List[tuple]] = {}
    for job in jobs:
        for node_id in job.assigned_nodes:
            if node_id < shown_nodes:
                by_node.setdefault(node_id, []).append(
                    (job.start_time, job.end_time, job.job_id)
                )
    for spans in by_node.values():
        spans.sort()

    lines = [
        f"gantt: {result.cluster_spec.name}  "
        f"t0={t0:.0f}s  horizon={horizon:.0f}s  "
        f"({step:.0f}s/column)"
    ]
    for node_id in range(shown_nodes):
        spans = by_node.get(node_id, [])
        row = []
        for t in midpoints:
            char = "."
            for start, end, job_id in spans:
                if start <= t < end:
                    char = _cell_char(job_id)
                    break
                if start > t:
                    break
            row.append(char)
        lines.append(f"n{node_id:03d} |{''.join(row)}|")
    if shown_nodes < num_nodes:
        lines.append(f"... ({num_nodes - shown_nodes} more nodes)")

    # Pool occupancy sparkline from the ledger.
    pool_capacity = result.cluster_spec.total_pool_mem
    if pool_capacity > 0:
        level_points: List[tuple] = []
        for pool in _pool_ids(result):
            for time, level in result.ledger.pool_occupancy_series(pool):
                level_points.append((time, pool, level))
        if level_points:
            # Evaluate total occupancy at each column midpoint.
            per_pool: dict[str, List[tuple]] = {}
            for time, pool, level in level_points:
                per_pool.setdefault(pool, []).append((time, level))
            row = []
            for t in midpoints:
                total = 0
                for series in per_pool.values():
                    current = 0
                    for time, level in series:
                        if time <= t:
                            current = level
                        else:
                            break
                    total += current
                frac = min(1.0, total / pool_capacity)
                row.append(_SPARK[int(frac * (len(_SPARK) - 1))])
            lines.append(f"pool |{''.join(row)}| (0..100% of "
                         f"{pool_capacity} MiB)")
    return "\n".join(lines)


def _pool_ids(result: SimulationResult) -> Iterable[str]:
    spec = result.cluster_spec
    if spec.pool.rack_pool > 0:
        for rack_id in range(spec.num_racks):
            yield f"rack{rack_id}"
    if spec.pool.global_pool > 0:
        yield "global"

"""Experiment configuration: one JSON document describes a full run.

Schema (all sections optional except ``cluster``):

.. code-block:: json

    {
      "name": "thin-vs-fat",
      "cluster": {"num_nodes": 128, "nodes_per_rack": 16,
                   "node": {"local_mem": "128GiB"},
                   "pool": {"global_pool": "48TiB"}},
      "workload": {"reference": "W-MIX", "num_jobs": 1000,
                    "load": 0.85, "seed": 1},
      "scheduler": {"queue": "fcfs", "backfill": "easy",
                     "placement": "first_fit",
                     "penalty": {"kind": "linear", "beta": 0.3}},
      "sample_interval": 600
    }

``workload`` alternatively takes ``{"swf": "path/to/trace.swf",
"cores_per_node": 1}`` to replay a real trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from .cluster.cluster import Cluster
from .cluster.spec import ClusterSpec
from .errors import ConfigurationError
from .sched.base import Scheduler, build_scheduler
from .sim.rng import RandomStreams
from .units import GiB
from .workload.job import Job
from .workload.reference import reference_workload
from .workload.swf import SWFFields, read_swf
from .workload.synthetic import SyntheticWorkload

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """A parsed, validated experiment description."""

    name: str
    cluster: ClusterSpec
    workload: Dict[str, Any] = field(default_factory=dict)
    scheduler: Dict[str, Any] = field(default_factory=dict)
    sample_interval: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        if "cluster" not in data:
            raise ConfigurationError("config requires a 'cluster' section")
        return cls(
            name=str(data.get("name", "experiment")),
            cluster=ClusterSpec.from_dict(data["cluster"]),
            workload=dict(data.get("workload", {})),
            scheduler=dict(data.get("scheduler", {})),
            sample_interval=data.get("sample_interval"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid config JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentConfig":
        return cls.from_json(Path(path).read_text())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cluster": self.cluster.to_dict(),
            "workload": self.workload,
            "scheduler": self.scheduler,
            "sample_interval": self.sample_interval,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    # ------------------------------------------------------------------
    def build_cluster(self) -> Cluster:
        return Cluster(self.cluster)

    def build_scheduler(self) -> Scheduler:
        return build_scheduler(**self.scheduler)

    def build_jobs(self) -> List[Job]:
        """Materialize the workload section into jobs."""
        spec = dict(self.workload)
        seed = int(spec.pop("seed", 0))
        if "swf" in spec:
            fields = SWFFields(cores_per_node=int(spec.get("cores_per_node", 1)))
            jobs, _header = read_swf(
                spec["swf"], fields=fields, streams=RandomStreams(seed)
            )
            max_jobs = spec.get("num_jobs")
            if max_jobs is not None:
                jobs = jobs[: int(max_jobs)]
            return jobs
        reference = spec.pop("reference", "W-MIX")
        num_jobs = int(spec.pop("num_jobs", 1000))
        load = spec.pop("load", 0.85)
        params = reference_workload(
            reference,
            num_jobs=num_jobs,
            cluster_nodes=self.cluster.num_nodes,
            max_mem_per_node=int(spec.pop("max_mem_per_node", 512 * GiB)),
            target_load=load,
        )
        return SyntheticWorkload(params).generate(RandomStreams(seed))

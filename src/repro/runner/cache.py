"""On-disk JSON result cache keyed by scenario hash.

Each completed scenario is stored as ``<cache_dir>/<key>.json`` holding
the scenario document (for provenance/debugging), the summary record,
and a cache-format version.  Repeated sweeps skip cells whose key is
already present; bumping :data:`CACHE_VERSION` invalidates everything
when the record schema changes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["CACHE_VERSION", "ResultCache"]

CACHE_VERSION = 1


class ResultCache:
    """Directory of per-scenario result records."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on miss."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        return entry.get("record")

    def put(
        self,
        key: str,
        record: Dict[str, Any],
        scenario: Optional[Dict[str, Any]] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        """Store a record atomically (write-to-temp + rename)."""
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "scenario": scenario,
            "elapsed": elapsed,
            "record": record,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=2, default=str)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

"""Parallel scenario-sweep execution.

:class:`SweepRunner` takes a :class:`~repro.runner.scenario.ScenarioGrid`
(or an explicit scenario list), consults the on-disk result cache, and
executes the remaining cells — in parallel via ``multiprocessing`` when
``workers > 1``, serially otherwise.  Execution is deterministic: every
scenario generates its own workload from its own seed inside the worker,
so a 4-worker run and a 1-worker run of the same grid produce identical
records, and records are always returned in grid order regardless of
completion order.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import run_config
from ..metrics.summary import ResultSummary
from ..units import parse_mem
from .cache import ResultCache
from .scenario import Scenario, ScenarioGrid

__all__ = [
    "SweepRunner",
    "SweepReport",
    "PoolTask",
    "run_scenario",
    "default_workers",
]

ProgressFn = Callable[[str], None]


def default_workers(fallback: int = 1) -> int:
    """Worker count from the ``REPRO_SWEEP_WORKERS`` env var.

    The one knob shared by every sweep surface (examples, benches,
    scripts); each caller picks its own ``fallback`` when it is unset.
    """
    import os

    return int(os.environ.get("REPRO_SWEEP_WORKERS", str(fallback)))


def run_scenario(scenario: Scenario, deep_audit: bool = False) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-able summary record.

    The record deliberately contains no wall-clock timing or host
    details, so records are bitwise-comparable across runs, worker
    counts, and cache round-trips.  ``deep_audit`` additionally runs
    the full invariant validator on the raw result and attaches its
    report under an ``"audit"`` key; the key never enters the result
    cache, so audited and unaudited sweeps share cache entries.
    """
    spec = scenario.build_cluster_spec()
    jobs = scenario.build_jobs()
    class_local_mem = scenario.class_local_mem
    if class_local_mem is not None:
        # Directly-constructed Scenario objects may carry the "512GiB"
        # string form; from_dict normalizes, this covers the rest.
        class_local_mem = parse_mem(class_local_mem)
    result, summary = run_config(
        spec,
        jobs,
        label=scenario.name or spec.name,
        audit=scenario.audit,
        sample_interval=scenario.sample_interval,
        class_local_mem=class_local_mem,
        **scenario.scheduler,
    )
    record = {
        "key": scenario.key(),
        "name": scenario.name,
        "coords": dict(scenario.coords),
        "seed": scenario.effective_seed(),
        "summary": asdict(summary),
    }
    if deep_audit:
        from ..audit import deep_audit as run_deep_audit

        record["audit"] = run_deep_audit(result).to_dict()
    return record


def _execute_indexed(
    item: Tuple[int, Scenario, bool]
) -> Tuple[int, Dict[str, Any], float]:
    """Worker entry point: run one cell, keep its grid position."""
    index, scenario, deep_audit = item
    start = time.perf_counter()
    record = run_scenario(scenario, deep_audit=deep_audit)
    return index, record, time.perf_counter() - start


@dataclass(frozen=True)
class PoolTask:
    """One node of a :meth:`SweepRunner.run_task_graph` dependency graph.

    ``func`` must be a module-level (picklable) callable; ``args`` its
    positional arguments.  ``after`` names tasks that must complete
    before this one is dispatched — the shape sharded trace replay
    needs, where segment *i* of a chain consumes segment *i-1*'s
    checkpoint while unrelated chains run concurrently.
    """

    key: str
    func: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    after: Tuple[str, ...] = ()


@dataclass
class SweepReport:
    """Everything a sweep produced, in grid order."""

    grid_name: str
    records: List[Dict[str, Any]]
    executed: int
    cached: int
    elapsed: float
    workers: int

    @property
    def total(self) -> int:
        return len(self.records)

    def summaries(self) -> List[ResultSummary]:
        """Rehydrated :class:`ResultSummary` objects, grid order."""
        from .aggregate import summary_from_record

        return [summary_from_record(record) for record in self.records]

    def rows(self) -> List[Dict[str, Any]]:
        """Tidy rows: axis coordinates + flat summary metrics."""
        from .aggregate import records_to_rows

        return records_to_rows(self.records)

    def status_line(self) -> str:
        return (
            f"{self.grid_name}: {self.executed} executed / {self.cached} cached "
            f"of {self.total} scenarios ({self.workers} worker"
            f"{'s' if self.workers != 1 else ''}, {self.elapsed:.1f}s)"
        )


class SweepRunner:
    """Runs scenario grids with caching, parallelism, and progress.

    Parameters
    ----------
    workers:
        Process count for the execution pool.  ``1`` (default) runs
        serially in-process; higher values fan cells out over a
        ``multiprocessing`` pool.  The results are identical either way.
    cache_dir:
        Directory for the JSON result cache.  ``None`` disables caching.
    progress:
        Optional callable receiving one human-readable line per
        completed cell (and per cache hit).
    deep_audit:
        Run the full invariant validator on every *executed* cell and
        attach its report to the record (cache hits were validated when
        first executed and carry no report — the ``"audit"`` key is
        stripped before a record enters the cache, keeping cache
        entries and the default sweep output byte-identical).
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str | Path] = None,
        progress: Optional[ProgressFn] = None,
        deep_audit: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.deep_audit = deep_audit

    # ------------------------------------------------------------------
    def run(self, grid: Union[ScenarioGrid, Sequence[Scenario]]) -> SweepReport:
        """Run every cell of ``grid``; return records in grid order."""
        if isinstance(grid, ScenarioGrid):
            name = grid.name
            scenarios = grid.scenarios()
        else:
            name = "scenarios"
            scenarios = list(grid)
        total = len(scenarios)
        start = time.perf_counter()

        records: List[Optional[Dict[str, Any]]] = [None] * total
        pending: List[Tuple[int, Scenario, bool]] = []
        cached = 0
        for index, scenario in enumerate(scenarios):
            hit = self.cache.get(scenario.key()) if self.cache is not None else None
            if hit is not None:
                # Presentation fields may have changed without touching
                # the physics; refresh them from the live scenario.
                hit["name"] = scenario.name
                hit["coords"] = dict(scenario.coords)
                if isinstance(hit.get("summary"), dict):
                    hit["summary"]["label"] = scenario.name
                records[index] = hit
                cached += 1
                self._report(cached, 0, total, scenario, "cached")
            else:
                pending.append((index, scenario, self.deep_audit))

        executed = 0
        for index, record, cell_elapsed in self._execute(pending):
            records[index] = record
            executed += 1
            if self.cache is not None:
                # The audit report describes one execution, not the
                # scenario's physics; cache entries stay audit-free so
                # cached reruns reproduce the pre-audit bytes exactly.
                self.cache.put(
                    record["key"],
                    {k: v for k, v in record.items() if k != "audit"},
                    scenario=scenarios[index].to_dict(),
                    elapsed=cell_elapsed,
                )
            self._report(
                cached, executed, total, scenarios[index], f"{cell_elapsed:.1f}s"
            )

        assert all(record is not None for record in records)
        return SweepReport(
            grid_name=name,
            records=records,  # type: ignore[arg-type]
            executed=executed,
            cached=cached,
            elapsed=time.perf_counter() - start,
            workers=self.workers,
        )

    # ------------------------------------------------------------------
    def run_task_graph(self, tasks: Sequence[PoolTask]) -> Dict[str, Any]:
        """Execute a dependency graph of tasks; return ``{key: result}``.

        Ready tasks (all ``after`` dependencies completed) are
        dispatched to the sweep's process pool as slots free up, so
        independent chains overlap while each chain's internal order is
        preserved.  With ``workers == 1`` the graph runs serially in
        topological order — results are identical either way (each task
        owns its outputs; the graph only sequences them).

        A worker exception propagates to the caller with the failing
        task's key attached; tasks already dispatched run to completion,
        tasks not yet dispatched are abandoned.
        """
        by_key = {task.key: task for task in tasks}
        if len(by_key) != len(tasks):
            raise ValueError("task graph has duplicate keys")
        for task in tasks:
            for dep in task.after:
                if dep not in by_key:
                    raise ValueError(
                        f"task {task.key!r} depends on unknown task {dep!r}"
                    )

        results: Dict[str, Any] = {}
        done: set = set()

        if self.workers == 1 or len(tasks) == 1:
            remaining = list(tasks)
            while remaining:
                ready = [t for t in remaining if all(d in done for d in t.after)]
                if not ready:
                    raise ValueError("task graph has a cycle")
                for task in ready:
                    start = time.perf_counter()
                    results[task.key] = task.func(*task.args)
                    done.add(task.key)
                    remaining.remove(task)
                    if self.progress is not None:
                        self.progress(
                            f"  [{len(done)}/{len(tasks)}] {task.key} "
                            f"({time.perf_counter() - start:.1f}s)"
                        )
            return results

        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        pending = dict(by_key)
        inflight: Dict[str, Any] = {}
        with context.Pool(processes=min(self.workers, len(tasks))) as pool:
            while pending or inflight:
                for key, task in list(pending.items()):
                    if all(dep in done for dep in task.after):
                        inflight[key] = pool.apply_async(task.func, task.args)
                        del pending[key]
                if not inflight:
                    raise ValueError("task graph has a cycle")
                settled = [key for key, res in inflight.items() if res.ready()]
                if not settled:
                    time.sleep(0.005)
                    continue
                for key in settled:
                    try:
                        results[key] = inflight.pop(key).get()
                    except Exception as exc:
                        raise RuntimeError(f"task {key!r} failed: {exc}") from exc
                    done.add(key)
                    if self.progress is not None:
                        self.progress(f"  [{len(done)}/{len(tasks)}] {key}")
        return results

    # ------------------------------------------------------------------
    def _execute(self, pending: List[Tuple[int, Scenario, bool]]):
        """Yield ``(index, record, elapsed)`` for every pending cell."""
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for item in pending:
                yield _execute_indexed(item)
            return
        import multiprocessing

        workers = min(self.workers, len(pending))
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            yield from pool.imap_unordered(_execute_indexed, pending)

    def _report(
        self, cached: int, executed: int, total: int, scenario: Scenario, status: str
    ) -> None:
        if self.progress is None:
            return
        done = cached + executed
        self.progress(f"[{done}/{total}] {scenario.name} ({status})")

"""Collapsing sweep records into tidy tables and comparison inputs.

Sweep records are plain dicts (JSON round-trippable); this module turns
them back into the shapes the rest of the analysis stack consumes:

* :func:`summary_from_record` — rehydrate a :class:`ResultSummary`, so
  :func:`repro.analysis.compare.compare_table` works on sweep output;
* :func:`records_to_rows` — tidy rows (one per scenario: axis
  coordinates + flat metrics) for CSV export and pivoting;
* :func:`series_from_rows` — (x, y) series along one axis for
  :func:`repro.analysis.compare.crossover_point` and trend assertions;
* :func:`aggregate_rows` — collapse replicate axes (e.g. seeds) into
  mean / 95% CI per group, the replication pattern of the pool-sizing
  study.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.stats import mean_ci
from ..metrics.report import ascii_table
from ..metrics.summary import ResultSummary

__all__ = [
    "summary_from_record",
    "records_to_rows",
    "rows_table",
    "series_from_rows",
    "aggregate_rows",
]


def summary_from_record(record: Mapping[str, Any]) -> ResultSummary:
    """Rebuild the :class:`ResultSummary` stored in a sweep record."""
    return ResultSummary(**record["summary"])


def records_to_rows(records: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """One tidy row per record: coords, then the flat summary metrics."""
    rows: List[Dict[str, Any]] = []
    for record in records:
        summary = summary_from_record(record)
        row: Dict[str, Any] = {"scenario": record["name"]}
        row.update(record.get("coords", {}))
        metrics = summary.row()
        metrics.pop("label", None)
        row.update(metrics)
        row["key"] = record["key"]
        rows.append(row)
    return rows


def rows_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """ASCII table over tidy rows (all columns by default)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = [key for key in rows[0] if key != "key"]
    body = [[row.get(col, "") for col in columns] for row in rows]
    return ascii_table(list(columns), body)


def series_from_rows(
    rows: Sequence[Mapping[str, Any]],
    x: str,
    y: str,
    where: Optional[Mapping[str, Any]] = None,
) -> Tuple[List[Any], List[float]]:
    """Extract a ``y``-vs-``x`` series, optionally filtered by coords.

    Rows are sorted by ``x``; duplicated x values (an unaggregated
    replicate axis, or a forgotten filter) raise, because a series with
    repeated x coordinates almost always means a bug in the caller.
    """
    selected = [
        row
        for row in rows
        if all(row.get(k) == v for k, v in (where or {}).items())
    ]
    selected.sort(key=lambda row: row[x])
    xs = [row[x] for row in selected]
    if len(set(xs)) != len(xs):
        raise ValueError(
            f"duplicate {x!r} values in series; aggregate or filter first"
        )
    return xs, [float(row[y]) for row in selected]


def aggregate_rows(
    rows: Sequence[Mapping[str, Any]],
    by: Sequence[str],
    metrics: Sequence[str],
    sums: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Collapse replicates: group rows by ``by``, reduce the rest.

    Each ``metrics`` column becomes ``<name>_mean`` / ``<name>_ci95``
    (95% t-interval half-width across the group's replicates); each
    ``sums`` column becomes a plain total.  Group order follows first
    appearance, so grid ordering is preserved.
    """
    groups: Dict[Tuple[Any, ...], List[Mapping[str, Any]]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(k) for k in by), []).append(row)
    out: List[Dict[str, Any]] = []
    for group_key, members in groups.items():
        aggregated: Dict[str, Any] = dict(zip(by, group_key))
        aggregated["replicates"] = len(members)
        for metric in metrics:
            mean, half = mean_ci([float(m[metric]) for m in members])
            aggregated[f"{metric}_mean"] = mean
            aggregated[f"{metric}_ci95"] = half
        for column in sums:
            aggregated[column] = sum(m[column] for m in members)
        out.append(aggregated)
    return out

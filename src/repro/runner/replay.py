"""Checkpointed shard-parallel trace replay.

Million-job SWF replays are the scale test of the whole stack.  Three
pieces make them first-class:

* **planning** — :func:`plan_segments` splits a trace file into
  byte-addressed, resumable segments in one cheap binary pass (no
  :class:`~repro.workload.job.Job` construction), cutting only at
  strictly-increasing submit times so every segment's stream is fully
  admitted before its boundary;
* **execution** — each segment runs as a bounded-memory engine window:
  segment 0 is a fresh online engine fed by a streaming
  :func:`~repro.workload.swf.iter_swf` source with rolling aggregation,
  segment *i>0* restores segment *i-1*'s checkpoint
  (:mod:`repro.engine.snapshot`) and attaches the next slice of the
  stream.  Segments of one chain are sequenced through
  :meth:`~repro.runner.sweep.SweepRunner.run_task_graph`; independent
  chains (replicate seeds, the unsharded verification run) overlap
  across workers.  Every segment is idempotent via an on-disk done
  marker, so a killed replay resumes where it stopped;
* **stitching** — per-segment JSONL record spills are concatenated in
  segment order and re-folded *sequentially* through a fresh
  :class:`~repro.engine.results.RollingStats`.  Because the restored
  calendar fires the identical event sequence the uninterrupted run
  would have, the stitched byte stream is bit-identical to the
  single-segment run's — ``--verify`` proves it by sha256 and
  field-for-field accumulator equality.

:func:`generate_trace` rounds the module out: a streaming synthetic
SWF writer (batched generation, O(batch) memory) so arbitrarily long
archive-shaped traces can be produced on demand for benches and CI.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..cluster.cluster import Cluster
from ..engine.results import RollingResults, RollingStats
from ..engine.simulation import SchedulerSimulation
from ..errors import ConfigurationError, TraceFormatError
from ..sched.base import Scheduler, build_scheduler
from ..sim.rng import RandomStreams
from ..units import GiB
from ..workload.job import Job
from ..workload.models import Constant, Distribution, LogNormal, Uniform
from ..workload.swf import SWFCursor, SWFFields, iter_swf, swf_line_submit, write_swf
from .scenario import build_cluster_spec
from .sweep import PoolTask, SweepRunner

__all__ = [
    "REPLAY_SCHEMA",
    "SegmentBounds",
    "ReplaySpec",
    "plan_segments",
    "run_segment",
    "stitch_chain",
    "replay_trace",
    "generate_trace",
    "append_replay_history",
]

REPLAY_SCHEMA = 1

# The default replay machine: a large thin-node cluster in the KTH/ANL
# size class — enough nodes that deep backfill queues carry hundreds of
# availability breakpoints, the regime the vectorized kernel targets.
_DEFAULT_CLUSTER: Dict[str, Any] = {
    "kind": "thin",
    "num_nodes": 256,
    "nodes_per_rack": 16,
    "local_mem": "128GiB",
    "fat_local_mem": "512GiB",
    "pool_fraction": 0.5,
    "reach": "global",
    "name": "TRACE-THIN-256",
}


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass
class SegmentBounds:
    """One resumable slice of an SWF trace.

    ``byte_offset``/``line_count`` address the raw file slice;
    ``lineno``/``emitted`` are the :class:`~repro.workload.swf.SWFCursor`
    resume point (lines and jobs *before* the segment), which keeps
    fallback job ids and per-line synthesis draws identical to one
    uninterrupted read.  ``first_submit`` strictly exceeds the previous
    segment's ``last_submit`` — the invariant that makes the boundary
    clock (just below ``first_submit``) a legal checkpoint instant.
    """

    index: int
    byte_offset: int
    lineno: int
    emitted: int
    line_count: int
    jobs: int
    first_submit: float
    last_submit: float


def plan_segments(
    path: str | Path, segments: int, fields: Optional[SWFFields] = None
) -> List[SegmentBounds]:
    """Split a trace into ~equal-byte resumable segments, one cheap pass.

    Lines are classified with :func:`~repro.workload.swf.swf_line_submit`
    (no job construction, no synthesis).  A cut happens at the first
    emitting line past each byte target whose submit time *strictly*
    exceeds the previous segment's last submit — ties must stay in one
    segment so the boundary clock sits between distinct submit instants.
    Traces whose submits never advance yield fewer segments than
    requested; a trace with no jobs at all is a configuration error.
    """
    if segments < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")
    path = Path(path)
    fields = fields or SWFFields()
    size = os.path.getsize(path)
    targets = [size * k / segments for k in range(1, segments)]

    bounds: List[SegmentBounds] = []
    cur: Optional[Dict[str, Any]] = None

    def close(end_line: int) -> SegmentBounds:
        return SegmentBounds(
            index=cur["index"],
            byte_offset=cur["byte_offset"],
            lineno=cur["lineno"],
            emitted=cur["emitted"],
            line_count=end_line - cur["lineno"],
            jobs=cur["jobs"],
            first_submit=cur["first_submit"],
            last_submit=cur["last_submit"],
        )

    offset = 0
    lineno = 0
    emitted = 0
    with open(path, "rb") as fh:
        while True:
            raw = fh.readline()
            if not raw:
                break
            lineno += 1
            try:
                submit = swf_line_submit(
                    raw.decode("utf-8", errors="replace"), lineno, fields
                )
            except TraceFormatError:
                if raw.endswith(b"\n") or fh.peek(1):
                    raise
                break  # torn tail; iter_swf drops it the same way
            if submit is not None:
                if cur is None:
                    cur = {
                        "index": 0,
                        "byte_offset": 0,
                        "lineno": 0,
                        "emitted": 0,
                        "jobs": 0,
                        "first_submit": submit,
                        "last_submit": submit,
                    }
                elif (
                    targets
                    and offset >= targets[0]
                    and submit > cur["last_submit"]
                ):
                    bounds.append(close(end_line=lineno - 1))
                    while targets and offset >= targets[0]:
                        targets.pop(0)
                    cur = {
                        "index": len(bounds),
                        "byte_offset": offset,
                        "lineno": lineno - 1,
                        "emitted": emitted,
                        "jobs": 0,
                        "first_submit": submit,
                        "last_submit": submit,
                    }
                cur["jobs"] += 1
                cur["last_submit"] = submit
                emitted += 1
            offset += len(raw)
    if cur is None:
        raise ConfigurationError(f"{path}: trace contains no jobs")
    bounds.append(close(end_line=lineno))
    return bounds


def _segment_lines(path: str | Path, seg: SegmentBounds) -> Iterator[str]:
    """The raw line slice of one segment (seek + bounded readline)."""
    with open(path, "rb") as fh:
        fh.seek(seg.byte_offset)
        for _ in range(seg.line_count):
            raw = fh.readline()
            if not raw:
                return
            yield raw.decode("utf-8", errors="replace")


# ----------------------------------------------------------------------
# the replay specification (JSON-round-trippable; crosses process pools)
# ----------------------------------------------------------------------
def _dist_from_doc(doc: Optional[Dict[str, Any]]) -> Optional[Distribution]:
    if doc is None:
        return None
    kind = doc.get("kind")
    if kind == "constant":
        return Constant(float(doc["value"]))
    if kind == "uniform":
        return Uniform(float(doc["low"]), float(doc["high"]))
    if kind == "lognormal":
        return LogNormal(
            mu=float(doc["mu"]),
            sigma=float(doc["sigma"]),
            low=float(doc.get("low", 1.0)),
            high=float(doc.get("high", 1e12)),
        )
    raise ConfigurationError(f"unknown distribution kind {kind!r}")


@dataclass
class ReplaySpec:
    """Everything a replay worker needs to run one trace segment.

    Plain JSON-able data (dicts, not live objects) so the identical
    spec crosses the process pool and reconstructs bit-identical
    cluster, scheduler, and synthesis state in every worker.
    """

    trace: str
    cluster: Dict[str, Any] = field(
        default_factory=lambda: dict(_DEFAULT_CLUSTER)
    )
    scheduler: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    cores_per_node: int = 1
    keep_failed: bool = False
    mem_synth: Optional[Dict[str, Any]] = None
    usage_ratio_synth: Optional[Dict[str, Any]] = None

    def swf_fields(self) -> SWFFields:
        return SWFFields(
            cores_per_node=self.cores_per_node, keep_failed=self.keep_failed
        )

    def build_engine_parts(self) -> tuple[Cluster, Scheduler]:
        spec = build_cluster_spec(self.cluster)
        return Cluster(spec), build_scheduler(**self.scheduler)

    def segment_stream(self, seg: SegmentBounds) -> Iterator[Job]:
        """The segment's job stream, resumed at its cursor position."""
        return iter_swf(
            _segment_lines(self.trace, seg),
            fields=self.swf_fields(),
            mem_synth=_dist_from_doc(self.mem_synth),
            usage_ratio_synth=_dist_from_doc(self.usage_ratio_synth),
            streams=RandomStreams(self.seed),
            cursor=SWFCursor(lineno=seg.lineno, emitted=seg.emitted),
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ReplaySpec":
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


# ----------------------------------------------------------------------
# segment execution (module-level: crosses the process pool)
# ----------------------------------------------------------------------
def _segment_paths(out_dir: Path, chain: str, index: int):
    stem = f"{chain}-seg{index:03d}"
    return (
        out_dir / f"{stem}.records.jsonl",
        out_dir / f"{stem}.ckpt.json",
        out_dir / f"{stem}.done.json",
    )


def _file_sha256(path: Path) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


def run_segment(
    spec_doc: Dict[str, Any],
    seg_doc: Dict[str, Any],
    boundary: Optional[float],
    out_dir: str,
    chain: str,
) -> Dict[str, Any]:
    """Execute one trace segment in bounded memory; idempotent.

    Writes three artifacts into ``out_dir``: the rolling record spill
    (``.records.jsonl``), the boundary checkpoint (``.ckpt.json``,
    absent for the final segment, which drains instead), and a done
    marker (``.done.json``) written last — its presence means the
    other two are complete, so a re-run returns the recorded marker
    without touching the engine (crash-resumable replay).

    ``boundary`` is the clock to advance to before checkpointing —
    just below the next segment's first submit, so every event of this
    window (and nothing of the next) has fired.
    """
    out = Path(out_dir)
    spec = ReplaySpec.from_dict(spec_doc)
    seg = SegmentBounds(**seg_doc)
    records_path, ckpt_path, done_path = _segment_paths(out, chain, seg.index)

    if done_path.is_file():
        try:
            marker = json.loads(done_path.read_text())
        except json.JSONDecodeError:
            marker = None  # torn marker: the segment re-runs
        if marker is not None and marker.get("schema") == REPLAY_SCHEMA:
            marker["resumed"] = True
            return marker

    start = time.perf_counter()
    cluster, scheduler = spec.build_engine_parts()
    stream = spec.segment_stream(seg)
    tmp_records = Path(str(records_path) + ".tmp")
    rolling = RollingResults(spill_path=tmp_records)
    try:
        if seg.index == 0:
            sim = SchedulerSimulation(
                cluster,
                scheduler,
                [],
                online=True,
                start_time=seg.first_submit,
                job_source=stream,
                rolling=rolling,
            )
        else:
            _, prev_ckpt, _ = _segment_paths(out, chain, seg.index - 1)
            snapshot = json.loads(prev_ckpt.read_text())
            sim = SchedulerSimulation.restore(
                cluster, scheduler, snapshot, rolling=rolling, job_source=stream
            )
        if boundary is None:
            sim.drain()
            snapshot_doc = None
        else:
            sim.advance_to(boundary)
            snapshot_doc = sim.checkpoint()
        stats = rolling.stats
    finally:
        rolling.close()
    os.replace(tmp_records, records_path)
    if snapshot_doc is not None:
        tmp_ckpt = Path(str(ckpt_path) + ".tmp")
        tmp_ckpt.write_text(json.dumps(snapshot_doc))
        os.replace(tmp_ckpt, ckpt_path)

    marker = {
        "schema": REPLAY_SCHEMA,
        "chain": chain,
        "segment": seg.index,
        "stream_jobs": seg.jobs,
        "records": stats.jobs,
        "sha256": _file_sha256(records_path),
        "stats": stats.to_dict(),
        "elapsed_s": round(time.perf_counter() - start, 3),
        "resumed": False,
    }
    tmp_done = Path(str(done_path) + ".tmp")
    tmp_done.write_text(json.dumps(marker))
    os.replace(tmp_done, done_path)
    return marker


def stitch_chain(
    out_dir: str | Path,
    chain: str,
    plan: List[SegmentBounds],
    stitched_path: Path,
) -> Dict[str, Any]:
    """Concatenate a chain's segment records; re-fold sequentially.

    The fold runs over the stitched stream in order — *not* by merging
    per-segment partial sums — so floating-point accumulation order
    matches a live single-run fold exactly and the resulting stats are
    bit-identical, not merely close.
    """
    stats = RollingStats()
    sha = hashlib.sha256()
    records = 0
    with open(stitched_path, "wb") as out:
        for seg in plan:
            records_path, _, _ = _segment_paths(Path(out_dir), chain, seg.index)
            with open(records_path, "rb") as fh:
                for raw in fh:
                    out.write(raw)
                    sha.update(raw)
                    stats.add_record(json.loads(raw))
                    records += 1
    return {
        "chain": chain,
        "segments": len(plan),
        "records": records,
        "sha256": sha.hexdigest(),
        "stats": stats.to_dict(),
        "summary": stats.summary_dict(),
        "path": str(stitched_path),
    }


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------
def replay_trace(
    spec: ReplaySpec,
    *,
    segments: int = 4,
    workers: int = 1,
    out_dir: str | Path,
    verify: bool = False,
    progress=None,
) -> Dict[str, Any]:
    """Replay a trace in checkpointed segments; optionally prove identity.

    Plans the segment split, runs each chain's segments in dependency
    order over the sweep pool (``verify`` adds an independent
    single-segment chain that overlaps the sharded one across workers),
    stitches every chain, and — in verify mode — compares the sharded
    chain against the unsharded one by record-stream sha256 and exact
    accumulator equality.  All segment work is idempotent: re-invoking
    on the same ``out_dir`` resumes after a crash instead of redoing
    finished segments.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    plan = plan_segments(spec.trace, segments, spec.swf_fields())
    chains: Dict[str, List[SegmentBounds]] = {"sharded": plan}
    if verify:
        chains["unsharded"] = plan_segments(spec.trace, 1, spec.swf_fields())

    spec_doc = spec.to_dict()
    tasks: List[PoolTask] = []
    for chain, segs in chains.items():
        for i, seg in enumerate(segs):
            boundary = (
                math.nextafter(segs[i + 1].first_submit, -math.inf)
                if i + 1 < len(segs)
                else None
            )
            tasks.append(
                PoolTask(
                    key=f"{chain}/seg{i:03d}",
                    func=run_segment,
                    args=(spec_doc, asdict(seg), boundary, str(out), chain),
                    after=(f"{chain}/seg{i - 1:03d}",) if i else (),
                )
            )
    runner = SweepRunner(workers=workers, progress=progress)
    markers = runner.run_task_graph(tasks)

    chain_reports: Dict[str, Dict[str, Any]] = {}
    for chain, segs in chains.items():
        report = stitch_chain(out, chain, segs, out / f"{chain}.stitched.jsonl")
        report["segment_markers"] = [
            markers[f"{chain}/seg{i:03d}"] for i in range(len(segs))
        ]
        chain_reports[chain] = report

    payload: Dict[str, Any] = {
        "schema": REPLAY_SCHEMA,
        "trace": str(spec.trace),
        "trace_bytes": os.path.getsize(spec.trace),
        "spec": spec_doc,
        "segments_requested": segments,
        "segments_planned": len(plan),
        "workers": workers,
        "plan": [asdict(seg) for seg in plan],
        "chains": chain_reports,
        "elapsed_s": round(time.perf_counter() - t0, 3),
    }
    if verify:
        sharded = chain_reports["sharded"]
        unsharded = chain_reports["unsharded"]
        sha_match = sharded["sha256"] == unsharded["sha256"]
        stats_match = sharded["stats"] == unsharded["stats"]
        payload["verify"] = {
            "sha256_match": sha_match,
            "stats_match": stats_match,
            "identical": sha_match and stats_match,
        }
    return payload


# ----------------------------------------------------------------------
# history + trace generation
# ----------------------------------------------------------------------
def append_replay_history(
    payload: Dict[str, Any],
    path: str | Path = "benchmarks/perf/workers_history.jsonl",
) -> Optional[Dict[str, Any]]:
    """Append a replay run to the perf history stream.

    Shares the file (and torn-line tolerance) with the sweep-scaling
    ladder; replay records carry ``kind: "trace-replay"`` and no
    ladder rungs, so every trend consumer ignores them by construction
    while the segment boundaries and throughput stay inspectable next
    to the scaling trajectory.  Returns None outside a repo checkout.
    """
    path = Path(path)
    if not path.parent.is_dir():
        return None
    sharded = payload.get("chains", {}).get("sharded", {})
    elapsed = payload.get("elapsed_s") or 0
    record = {
        "schema": 1,
        "kind": "trace-replay",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "trace_bytes": payload.get("trace_bytes"),
        "segments": payload.get("segments_planned"),
        "workers": payload.get("workers"),
        "records": sharded.get("records"),
        "records_per_sec": round(sharded.get("records", 0) / elapsed, 3)
        if elapsed
        else None,
        "segment_boundaries": [
            seg["first_submit"] for seg in payload.get("plan", [])
        ],
        "identical": payload.get("verify", {}).get("identical"),
        "rungs": [],
    }
    with path.open("a") as handle:
        handle.write(json.dumps(record) + "\n")
    return record


def generate_trace(
    path: str | Path,
    num_jobs: int,
    *,
    reference: str = "W-KTH",
    seed: int = 0,
    cluster_nodes: int = 256,
    max_mem_per_node: int = 512 * GiB,
    target_load: float = 0.9,
    batch_jobs: int = 20_000,
    include_memory: bool = True,
    fields: Optional[SWFFields] = None,
) -> Dict[str, Any]:
    """Write a synthetic archive-shaped SWF trace of any length, streaming.

    Jobs are generated in batches of ``batch_jobs`` (each batch from
    its own derived seed), renumbered sequentially, and time-shifted so
    each batch's arrivals follow the previous batch's — a 1M-job trace
    costs O(batch) memory end to end because :func:`write_swf` consumes
    the generator directly.  ``include_memory=False`` writes ``-1``
    memory columns the way real archives ship, which exercises the
    parser's deterministic synthesis path on replay.
    """
    from ..workload.reference import generate_reference_jobs

    if num_jobs < 1:
        raise ConfigurationError(f"num_jobs must be >= 1, got {num_jobs}")
    batch_jobs = max(1, int(batch_jobs))

    def jobs() -> Iterator[Job]:
        offset = 0.0
        next_id = 1
        done = 0
        batch_index = 0
        while done < num_jobs:
            count = min(batch_jobs, num_jobs - done)
            batch = generate_reference_jobs(
                reference,
                seed=seed + batch_index,
                num_jobs=count,
                cluster_nodes=cluster_nodes,
                max_mem_per_node=max_mem_per_node,
                target_load=target_load,
            )
            batch.sort(key=lambda job: job.submit_time)
            last = offset
            for job in batch:
                job.job_id = next_id
                next_id += 1
                job.submit_time += offset
                last = job.submit_time
                yield job
            offset = last
            done += count
            batch_index += 1

    header = {
        "Computer": f"synthetic {reference}",
        "MaxNodes": str(cluster_nodes),
        "Note": f"generated trace, {num_jobs} jobs, seed {seed}",
    }
    write_swf(
        jobs(),
        path,
        fields=fields or SWFFields(),
        header=header,
        include_memory=include_memory,
    )
    return {
        "path": str(path),
        "jobs": num_jobs,
        "reference": reference,
        "seed": seed,
        "bytes": os.path.getsize(path),
    }

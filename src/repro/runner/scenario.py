"""Declarative scenarios and scenario grids.

A :class:`Scenario` is one fully-specified simulation cell — workload,
cluster, scheduler stack, and summarization options — expressed as
plain JSON-able dictionaries so scenarios can live in files, travel
across process boundaries, and hash stably for result caching.

A :class:`ScenarioGrid` expands a cartesian product of axes over a
base scenario.  Axis keys are dotted paths into the scenario document
(``"scheduler.penalty.beta"``); axis values are either plain values, or
labelled points ``{"label": ..., "value": ...}``, or labelled
*set-points* ``{"label": ..., "set": {path: value, ...}}`` that
override several paths at once (for linked parameters such as pool
reach + placement policy).

Every scenario carries ``coords`` — its axis coordinates — so the
aggregation layer can produce tidy tables without re-parsing labels.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..cluster.spec import ClusterSpec
from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import GiB, parse_mem
from ..workload.job import Job
from ..workload.reference import generate_reference_jobs

__all__ = [
    "Scenario",
    "ScenarioGrid",
    "build_cluster_spec",
    "scenario_key",
]


# ----------------------------------------------------------------------
# dotted-path helpers
# ----------------------------------------------------------------------
def _set_path(doc: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``doc[a][b][c] = value`` for ``path == "a.b.c"``.

    Missing intermediates are created; an intermediate that exists but
    is not a mapping is a conflict between the axis and the base
    document, and silently overwriting it would make every cell
    simulate something other than what was declared — so it raises.
    """
    parts = path.split(".")
    node = doc
    for i, part in enumerate(parts[:-1]):
        nxt = node.get(part)
        if nxt is None:
            nxt = {}
            node[part] = nxt
        elif not isinstance(nxt, dict):
            raise ConfigurationError(
                f"cannot set {path!r}: {'.'.join(parts[: i + 1])!r} is "
                f"{nxt!r}, not a mapping"
            )
        node = nxt
    node[parts[-1]] = value


def _canonical_json(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)


def scenario_key(doc: Mapping[str, Any]) -> str:
    """Stable 16-hex digest of a scenario's physical content."""
    return hashlib.sha256(_canonical_json(doc).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# cluster construction from a declarative dict
# ----------------------------------------------------------------------
def build_cluster_spec(data: Mapping[str, Any]) -> ClusterSpec:
    """Build a :class:`ClusterSpec` from a scenario's ``cluster`` section.

    Three forms are accepted:

    * ``{"kind": "fat", "num_nodes": 64, "local_mem": "512GiB", ...}``
    * ``{"kind": "thin", "pool_fraction": 0.5, "reach": "global", ...}``
    * ``{"spec": {...}}`` — a raw :meth:`ClusterSpec.from_dict` document.
    """
    data = dict(data)
    if "spec" in data:
        return ClusterSpec.from_dict(data["spec"])
    kind = data.pop("kind", "fat")
    if kind == "fat":
        return ClusterSpec.fat_node(
            num_nodes=int(data.get("num_nodes", 128)),
            local_mem=data.get("local_mem", 512 * GiB),
            cores=int(data.get("cores", 64)),
            nodes_per_rack=int(data.get("nodes_per_rack", 16)),
            name=data.get("name", "FAT"),
        )
    if kind == "thin":
        return ClusterSpec.thin_node(
            num_nodes=int(data.get("num_nodes", 128)),
            local_mem=data.get("local_mem", 128 * GiB),
            fat_local_mem=data.get("fat_local_mem", 512 * GiB),
            pool_fraction=float(data.get("pool_fraction", 1.0)),
            reach=data.get("reach", "global"),
            cores=int(data.get("cores", 64)),
            nodes_per_rack=int(data.get("nodes_per_rack", 16)),
            name=data.get("name"),
            rack_bandwidth=float(data.get("rack_bandwidth", float("inf"))),
            global_bandwidth=float(data.get("global_bandwidth", float("inf"))),
        )
    raise ConfigurationError(f"unknown cluster kind {kind!r}")


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """One runnable simulation cell.

    ``workload``, ``cluster`` and ``scheduler`` are plain dicts (the
    schemas of :func:`generate_reference_jobs`, :func:`build_cluster_spec`
    and :func:`repro.sched.base.build_scheduler` respectively) so the
    whole scenario is picklable and JSON round-trippable.
    """

    name: str = "scenario"
    workload: Dict[str, Any] = field(default_factory=dict)
    cluster: Dict[str, Any] = field(default_factory=dict)
    scheduler: Dict[str, Any] = field(default_factory=dict)
    sample_interval: Optional[float] = None
    class_local_mem: Optional[int] = None
    audit: bool = True
    coords: Dict[str, Any] = field(default_factory=dict)

    # -- identity -----------------------------------------------------
    def physics_dict(self) -> Dict[str, Any]:
        """The content that determines the simulation outcome.

        Excludes ``name`` and ``coords`` (pure presentation), so
        relabelling a grid does not invalidate cached results.
        """
        return {
            "workload": self.workload,
            "cluster": self.cluster,
            "scheduler": self.scheduler,
            "sample_interval": self.sample_interval,
            "class_local_mem": self.class_local_mem,
            "audit": self.audit,
            "seed": self.effective_seed(),
        }

    def key(self) -> str:
        return scenario_key(self.physics_dict())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "cluster": self.cluster,
            "scheduler": self.scheduler,
            "sample_interval": self.sample_interval,
            "class_local_mem": self.class_local_mem,
            "audit": self.audit,
            "coords": self.coords,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        class_local_mem = data.get("class_local_mem")
        if class_local_mem is not None:
            # Accept the "512GiB" string form like every other memory
            # field (and normalize it so the scenario hash is stable
            # across the two spellings).
            class_local_mem = parse_mem(class_local_mem)
        return cls(
            name=str(data.get("name", "scenario")),
            workload=dict(data.get("workload", {})),
            cluster=dict(data.get("cluster", {})),
            scheduler=dict(data.get("scheduler", {})),
            sample_interval=data.get("sample_interval"),
            class_local_mem=class_local_mem,
            audit=bool(data.get("audit", True)),
            coords=dict(data.get("coords", {})),
        )

    # -- deterministic seeding ----------------------------------------
    def effective_seed(self) -> int:
        """The RNG seed this scenario's workload is generated with.

        ``workload.seed`` may be an integer (used as-is) or the string
        ``"auto"``: a seed derived from the scenario's non-seed content,
        so every grid cell gets a distinct but fully reproducible stream
        regardless of execution order or worker count.
        """
        seed = self.workload.get("seed", 0)
        if seed == "auto":
            doc = {
                "workload": {k: v for k, v in self.workload.items() if k != "seed"},
                "cluster": self.cluster,
                "scheduler": self.scheduler,
            }
            return int(scenario_key(doc)[:8], 16)
        return int(seed)

    # -- builders -----------------------------------------------------
    def build_cluster_spec(self) -> ClusterSpec:
        return build_cluster_spec(self.cluster)

    def build_jobs(self) -> List[Job]:
        """Materialize the workload section (deterministic per seed)."""
        spec = dict(self.workload)
        seed = self.effective_seed()
        spec.pop("seed", None)
        if "swf" in spec:
            from ..workload.swf import SWFFields, read_swf

            fields = SWFFields(cores_per_node=int(spec.get("cores_per_node", 1)))
            jobs, _header = read_swf(
                spec["swf"], fields=fields, streams=RandomStreams(seed)
            )
            max_jobs = spec.get("num_jobs")
            if max_jobs is not None:
                jobs = jobs[: int(max_jobs)]
            return jobs
        cluster_spec = self.build_cluster_spec()
        return generate_reference_jobs(
            spec.get("reference", "W-MIX"),
            seed=seed,
            num_jobs=int(spec.get("num_jobs", 1000)),
            cluster_nodes=int(spec.get("cluster_nodes", cluster_spec.num_nodes)),
            max_mem_per_node=parse_mem(spec.get("max_mem_per_node", 512 * GiB)),
            target_load=spec.get("load", 0.85),
        )


# ----------------------------------------------------------------------
# axis points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _AxisPoint:
    """One normalized value on one axis."""

    label: str
    value: Any = None
    overrides: Tuple[Tuple[str, Any], ...] = ()


def _normalize_point(axis: str, raw: Any) -> _AxisPoint:
    if isinstance(raw, Mapping):
        if "set" in raw:
            overrides = tuple(sorted(raw["set"].items()))
            label = str(raw.get("label", "/".join(str(v) for _, v in overrides)))
            return _AxisPoint(label=label, overrides=overrides)
        if "value" in raw:
            return _AxisPoint(
                label=str(raw.get("label", raw["value"])),
                value=raw["value"],
                overrides=((axis, raw["value"]),),
            )
        raise ConfigurationError(
            f"axis {axis!r}: mapping points need a 'value' or 'set' key"
        )
    return _AxisPoint(label=str(raw), value=raw, overrides=((axis, raw),))


# ----------------------------------------------------------------------
# ScenarioGrid
# ----------------------------------------------------------------------
@dataclass
class ScenarioGrid:
    """A cartesian product of axes over a base scenario document."""

    name: str = "grid"
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")

    # -- size & expansion ---------------------------------------------
    @property
    def size(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def iter_scenarios(self) -> Iterator[Scenario]:
        axis_names = list(self.axes)
        normalized = [
            [_normalize_point(axis, raw) for raw in self.axes[axis]]
            for axis in axis_names
        ]
        for combo in itertools.product(*normalized) if axis_names else iter([()]):
            doc = copy.deepcopy(self.base)
            coords: Dict[str, Any] = {}
            labels: List[str] = []
            for axis, point in zip(axis_names, combo):
                # Tidy coordinate: the raw value for value axes, the
                # label for set-point axes (which have no single value).
                coords[axis] = point.value if point.value is not None else point.label
                labels.append(point.label)
                for path, value in point.overrides:
                    _set_path(doc, path, value)
            name = "/".join(labels) if labels else self.name
            scenario = Scenario.from_dict(doc)
            scenario.name = name
            scenario.coords = coords
            yield scenario

    def scenarios(self) -> List[Scenario]:
        return list(self.iter_scenarios())

    # -- (de)serialization --------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "base": self.base, "axes": self.axes}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        return cls(
            name=str(data.get("name", "grid")),
            base=dict(data.get("base", {})),
            axes={k: list(v) for k, v in dict(data.get("axes", {})).items()},
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioGrid":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read grid file {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid grid JSON in {path}: {exc}") from exc
        return cls.from_dict(data)

"""Scenario-sweep runner: declarative grids, parallel execution, caching.

The paper's results are grids — pool sizes × penalties × policies ×
workloads.  This subsystem makes those grids first-class:

* :class:`ScenarioGrid` / :class:`Scenario` — declarative cartesian
  products over a base scenario document (JSON round-trippable);
* :class:`SweepRunner` — cached, parallel (``multiprocessing``) or
  serial execution with deterministic per-scenario seeding; identical
  records regardless of worker count;
* :mod:`~repro.runner.aggregate` — collapse records into tidy rows,
  rehydrated summaries for ``compare_table``, series for crossover
  analysis, and replicate aggregation with confidence intervals.

Exposed on the CLI as ``repro sweep`` / ``dismem-sched sweep``.
"""

from .aggregate import (
    aggregate_rows,
    records_to_rows,
    rows_table,
    series_from_rows,
    summary_from_record,
)
from .cache import CACHE_VERSION, ResultCache
from .replay import (
    ReplaySpec,
    SegmentBounds,
    generate_trace,
    plan_segments,
    replay_trace,
)
from .scenario import Scenario, ScenarioGrid, build_cluster_spec, scenario_key
from .sweep import PoolTask, SweepReport, SweepRunner, default_workers, run_scenario

__all__ = [
    "Scenario",
    "ScenarioGrid",
    "build_cluster_spec",
    "scenario_key",
    "SweepRunner",
    "SweepReport",
    "PoolTask",
    "run_scenario",
    "default_workers",
    "ReplaySpec",
    "SegmentBounds",
    "plan_segments",
    "replay_trace",
    "generate_trace",
    "ResultCache",
    "CACHE_VERSION",
    "summary_from_record",
    "records_to_rows",
    "rows_table",
    "series_from_rows",
    "aggregate_rows",
]

"""dismem-sched: HPC job scheduling with disaggregated memory resources.

A trace-driven discrete-event simulation library reproducing the
CLUSTER 2024 study "Job Scheduling in High Performance Computing
Systems with Disaggregated Memory Resources".  See README.md for a
tour and DESIGN.md for the system inventory.

Public API highlights
---------------------
- :class:`repro.cluster.ClusterSpec` / :class:`repro.cluster.Cluster` —
  the machine (nodes, racks, memory pools);
- :mod:`repro.workload` — jobs, SWF traces, synthetic generators;
- :mod:`repro.memdis` — local/remote splits, pool allocators, penalty
  models;
- :mod:`repro.sched` — queue policies, EASY/conservative backfill,
  placement, memory-aware decision policies;
- :class:`repro.engine.SchedulerSimulation` — run a workload on a
  machine under a policy stack;
- :mod:`repro.metrics` / :mod:`repro.analysis` — metrics, summaries,
  sweeps, reports.
"""

from ._version import __version__

__all__ = ["__version__"]

"""Standard Workload Format (SWF) parsing and writing.

SWF is the lingua franca of the job-scheduling literature (Feitelson's
Parallel Workloads Archive): one line per job, 18 whitespace-separated
fields, ``;`` comment/header lines, ``-1`` for unknown values.  The
original study replayed production traces; this module lets any SWF
trace drop into our simulator unchanged, and — because most public SWF
traces lack memory columns — supports *memory synthesis*: missing
requested/used memory fields are drawn from a caller-supplied
distribution so memory-aware policies stay exercised.

Trace-scale traces (month-long, million-job archives) do not fit the
"read the whole file into a list" model, so the parser is built around
:func:`iter_swf`, a chunked streaming iterator that never materializes
the trace.  Three properties make the stream safe to shard and resume:

* **Chunk-boundary-invariant synthesis** — the synthesis RNG for line
  *N* is derived from ``(root seed, N)`` alone, so the same line yields
  the same job whether the file is read in chunks of 1, 64, or whole.
* **Resumable** — an :class:`SWFCursor` carries ``(lineno, emitted)``;
  feeding the tail of a file plus the cursor of the consumed prefix
  continues the stream bit-identically (fallback job ids and synthesis
  included).
* **Torn-tail tolerance** — a final line without a trailing newline
  that fails numeric parsing (a truncated download, a writer killed
  mid-line) is dropped instead of raised; mid-file garbage still
  raises :class:`TraceFormatError`.

Field map (1-based, per the SWF standard):

==  =============================  =========================================
 1  job number                     ``job_id``
 2  submit time (s)                ``submit_time``
 4  run time (s)                   ``runtime``
 7  used memory (KB per proc)      ``mem_used_per_node`` (converted)
 8  requested processors           ``nodes`` (ceil-divided by cores/node)
 9  requested time (s)             ``walltime``
10  requested memory (KB per proc) ``mem_per_node`` (converted)
11  status                         terminal-state filter
12  user id                        ``user``
13  group id                       ``group``
==  =============================  =========================================
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, Union

import numpy as np

from ..errors import TraceFormatError
from ..sim.rng import RandomStreams
from .job import Job
from .models import Distribution

__all__ = [
    "SWFFields",
    "SWFCursor",
    "iter_swf",
    "read_swf",
    "write_swf",
    "jobs_from_swf_text",
    "jobs_to_swf_text",
    "swf_line_submit",
]

_NUM_FIELDS = 18

#: Stream name whose crc32 keys the per-line synthesis seed — the same
#: name the pre-streaming parser drew its (sequential) generator from.
_SYNTH_STREAM = "swf-mem-synth"
_SYNTH_KEY = zlib.crc32(_SYNTH_STREAM.encode("utf-8"))

#: Default lines per chunk pulled from the underlying stream.  Purely a
#: throughput knob: results are chunk-size-invariant by construction.
DEFAULT_CHUNK_LINES = 8192


@dataclass
class SWFFields:
    """Conversion conventions between SWF fields and our job model.

    ``cores_per_node`` converts SWF "processors" to whole nodes
    (ceiling) and scales the per-processor memory columns to per-node
    MiB.  Traces that already count nodes use the default of 1.
    """

    cores_per_node: int = 1
    keep_failed: bool = False  # SWF status 0 = failed; keep as jobs?

    def procs_to_nodes(self, procs: int) -> int:
        return -(-procs // self.cores_per_node)

    def kb_per_proc_to_mib_per_node(self, kb: float) -> int:
        return int(round(kb * self.cores_per_node / 1024.0))

    def mib_per_node_to_kb_per_proc(self, mib: int) -> int:
        return int(round(mib * 1024.0 / self.cores_per_node))


@dataclass
class SWFCursor:
    """Resumable position in an SWF stream.

    ``lineno`` counts physical lines consumed (1-based for the next
    line), ``emitted`` counts jobs yielded so far — the state that
    feeds fallback job ids and the per-line synthesis seed, so a
    stream resumed from a cursor is bit-identical to one long read.
    """

    lineno: int = 0
    emitted: int = 0

    def copy(self) -> "SWFCursor":
        return SWFCursor(lineno=self.lineno, emitted=self.emitted)


def _parse_line(line: str, lineno: int) -> List[float]:
    parts = line.split()
    if len(parts) < _NUM_FIELDS:
        # Tolerate short lines by padding with -1 (some archive traces
        # drop trailing unknown fields).
        parts = parts + ["-1"] * (_NUM_FIELDS - len(parts))
    try:
        return [float(p) for p in parts[:_NUM_FIELDS]]
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: non-numeric SWF field: {exc}") from exc


def _emits(vals: List[float], fields: SWFFields) -> bool:
    """Whether a parsed data line produces a job under ``fields``.

    Mirrors the archive conventions: non-positive processor counts fall
    back to the allocated column, zero-runtime and cancelled (status 5)
    entries are dropped, failed (status 0) entries are dropped unless
    ``keep_failed``.
    """
    procs_req = vals[7] if vals[7] > 0 else vals[4]
    if procs_req <= 0 or vals[3] <= 0:
        return False
    if vals[10] == 5:  # cancelled before start
        return False
    if vals[10] == 0 and not fields.keep_failed:  # failed
        return False
    return True


def _synth_rng(seed: int, lineno: int) -> np.random.Generator:
    """Per-line synthesis generator: a pure function of (seed, line).

    Spawn-key derivation keeps the stream independent of every named
    :class:`RandomStreams` stream while making each line's draws
    invariant to how the trace was chunked or where a shard resumed.
    """
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(_SYNTH_KEY, lineno))
    return np.random.default_rng(seq)


def _build_job(
    vals: List[float],
    lineno: int,
    emitted: int,
    fields: SWFFields,
    mem_synth: Optional[Distribution],
    usage_ratio_synth: Optional[Distribution],
    synth_seed: int,
) -> Job:
    (
        job_num,
        submit,
        _wait,
        run_time,
        _procs_alloc,
        _avg_cpu,
        used_kb,
        procs_req,
        req_time,
        req_kb,
        _status,
        user_id,
        group_id,
        _app,
        _queue,
        _partition,
        _prec,
        _think,
    ) = vals
    if procs_req <= 0:
        procs_req = _procs_alloc

    nodes = fields.procs_to_nodes(int(procs_req))
    walltime = req_time if req_time > 0 else run_time
    runtime = min(run_time, walltime)

    rng: Optional[np.random.Generator] = None
    if req_kb > 0:
        mem_req = max(1, fields.kb_per_proc_to_mib_per_node(req_kb))
    elif mem_synth is not None:
        rng = _synth_rng(synth_seed, lineno)
        mem_req = max(1, int(round(mem_synth.sample(rng))))
    else:
        mem_req = 1
    if used_kb > 0:
        mem_used = min(mem_req, max(1, fields.kb_per_proc_to_mib_per_node(used_kb)))
    elif usage_ratio_synth is not None:
        if rng is None:
            rng = _synth_rng(synth_seed, lineno)
        ratio = min(1.0, max(0.0, usage_ratio_synth.sample(rng)))
        mem_used = max(1, int(round(mem_req * ratio)))
    else:
        mem_used = mem_req

    return Job(
        job_id=int(job_num) if job_num > 0 else emitted + 1,
        submit_time=max(0.0, submit),
        nodes=nodes,
        walltime=float(walltime),
        runtime=float(runtime),
        mem_per_node=mem_req,
        mem_used_per_node=mem_used,
        user=f"user{int(user_id)}" if user_id >= 0 else "user0",
        group=f"group{int(group_id)}" if group_id >= 0 else "group0",
    )


def swf_line_submit(
    line: str, lineno: int, fields: Optional[SWFFields] = None
) -> Optional[float]:
    """Submit time of a raw SWF line iff it would emit a job, else None.

    The shard planner's cheap single pass: classifies a line (header,
    blank, skipped, emitting) without constructing a :class:`Job` or
    touching synthesis.  Raises :class:`TraceFormatError` exactly where
    :func:`iter_swf` would.
    """
    fields = fields or SWFFields()
    stripped = line.strip()
    if not stripped or stripped.startswith(";"):
        return None
    vals = _parse_line(stripped, lineno)
    if not _emits(vals, fields):
        return None
    return max(0.0, vals[1])


def _line_chunks(lines: Iterator[str], chunk_lines: int) -> Iterator[List[str]]:
    while True:
        chunk = list(islice(lines, chunk_lines))
        if not chunk:
            return
        yield chunk


def iter_swf(
    source: Union[str, Path, TextIO, Iterable[str]],
    fields: Optional[SWFFields] = None,
    mem_synth: Optional[Distribution] = None,
    usage_ratio_synth: Optional[Distribution] = None,
    streams: Optional[RandomStreams] = None,
    chunk_lines: int = DEFAULT_CHUNK_LINES,
    header: Optional[dict] = None,
    cursor: Optional[SWFCursor] = None,
) -> Iterator[Job]:
    """Stream jobs out of an SWF source without materializing the trace.

    ``source`` may be a path (opened and closed internally), an open
    text file, or any iterable of lines.  Lines are pulled in chunks of
    ``chunk_lines``; the chunk size is invisible in the output.  Header
    comments are written into ``header`` (in place) as they stream by;
    ``cursor`` is advanced in place per line so a caller can record a
    resume point at any moment — see :class:`SWFCursor`.

    Jobs are yielded in **file order**, not submit order; archive
    traces are submit-sorted already, and :func:`read_swf` re-sorts for
    callers that need the guarantee.

    ``streams`` contributes only its root seed: synthesis draws are
    derived per line from ``(seed, lineno)``, never from a shared
    sequential generator, which is what makes the stream chunk- and
    shard-invariant.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            yield from iter_swf(
                fh,
                fields=fields,
                mem_synth=mem_synth,
                usage_ratio_synth=usage_ratio_synth,
                streams=streams,
                chunk_lines=chunk_lines,
                header=header,
                cursor=cursor,
            )
        return

    fields = fields or SWFFields()
    synth_seed = (streams or RandomStreams(0)).seed
    cursor = cursor if cursor is not None else SWFCursor()
    chunk_lines = max(1, int(chunk_lines))

    lines = iter(source)
    for chunk in _line_chunks(lines, chunk_lines):
        for i, raw in enumerate(chunk):
            cursor.lineno += 1
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";"):
                if header is not None:
                    body = line.lstrip("; ")
                    if ":" in body:
                        key, _, value = body.partition(":")
                        header[key.strip()] = value.strip()
                continue
            try:
                vals = _parse_line(line, cursor.lineno)
            except TraceFormatError:
                if raw.endswith("\n"):
                    raise
                # No newline terminator: only the physically last line
                # of a stream can lack one.  Confirm nothing follows,
                # then treat it as a torn tail (truncated download,
                # writer killed mid-line) and end the stream cleanly.
                rest = chunk[i + 1] if i + 1 < len(chunk) else next(lines, None)
                if rest is not None:
                    raise
                return
            if not _emits(vals, fields):
                continue
            job = _build_job(
                vals,
                cursor.lineno,
                cursor.emitted,
                fields,
                mem_synth,
                usage_ratio_synth,
                synth_seed,
            )
            cursor.emitted += 1
            yield job


def jobs_from_swf_text(
    text: str,
    fields: Optional[SWFFields] = None,
    mem_synth: Optional[Distribution] = None,
    usage_ratio_synth: Optional[Distribution] = None,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[Job], dict]:
    """Parse SWF text into jobs plus the header comment dict.

    ``mem_synth`` supplies requested per-node MiB when field 10 is
    missing; ``usage_ratio_synth`` supplies used/requested ratios when
    field 7 is missing.  Both default to "requested == synthesized,
    used == requested".  Jobs with non-positive runtime or processor
    count are skipped (archive traces contain cancelled entries).

    Thin collector over :func:`iter_swf`; jobs come back sorted by
    ``(submit_time, job_id)``.
    """
    header: dict = {}
    jobs = list(
        iter_swf(
            io.StringIO(text),
            fields=fields,
            mem_synth=mem_synth,
            usage_ratio_synth=usage_ratio_synth,
            streams=streams,
            header=header,
        )
    )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs, header


def read_swf(
    path: str | Path,
    fields: Optional[SWFFields] = None,
    mem_synth: Optional[Distribution] = None,
    usage_ratio_synth: Optional[Distribution] = None,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[Job], dict]:
    """Parse an SWF file; see :func:`jobs_from_swf_text`.

    Streams through :func:`iter_swf` line-chunk by line-chunk — the
    file is never held in memory twice (once as text, once as jobs)
    the way the pre-streaming reader did; only the job list itself is
    materialized.
    """
    header: dict = {}
    jobs = list(
        iter_swf(
            path,
            fields=fields,
            mem_synth=mem_synth,
            usage_ratio_synth=usage_ratio_synth,
            streams=streams,
            header=header,
        )
    )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs, header


def jobs_to_swf_text(
    jobs: Iterable[Job],
    fields: Optional[SWFFields] = None,
    header: Optional[dict] = None,
    include_memory: bool = True,
) -> str:
    """Serialize jobs as SWF.

    Execution-record fields (wait time, status) are emitted when the
    job has run; otherwise ``-1`` per the standard.  With
    ``include_memory=False`` the memory columns are written as ``-1``
    the way most archive traces ship — useful for producing fixtures
    that exercise the memory-synthesis path of the parser.
    """
    fields = fields or SWFFields()
    out = io.StringIO()
    _write_swf_stream(out, jobs, fields, header, include_memory)
    return out.getvalue()


def _write_swf_stream(
    out: TextIO,
    jobs: Iterable[Job],
    fields: SWFFields,
    header: Optional[dict],
    include_memory: bool,
) -> int:
    """Write jobs to an open stream; returns the number of lines."""
    lines = 0
    for key, value in (header or {}).items():
        out.write(f"; {key}: {value}\n")
        lines += 1
    for job in jobs:
        wait = job.start_time - job.submit_time if job.start_time is not None else -1
        if job.state.name == "COMPLETED":
            status = 1
        elif job.state.name == "KILLED":
            status = 0
        else:
            status = -1
        run_time = (
            job.end_time - job.start_time
            if job.end_time is not None and job.start_time is not None
            else job.runtime
        )
        procs = job.nodes * fields.cores_per_node
        used_kb = (
            fields.mib_per_node_to_kb_per_proc(job.mem_used_per_node)
            if include_memory
            else -1
        )
        req_kb = (
            fields.mib_per_node_to_kb_per_proc(job.mem_per_node)
            if include_memory
            else -1
        )
        row = [
            job.job_id,
            int(job.submit_time),
            int(wait) if wait != -1 else -1,
            int(round(run_time)),
            procs if status == 1 else -1,
            -1,
            used_kb,
            procs,
            int(round(job.walltime)),
            req_kb,
            status,
            int(job.user.removeprefix("user") or 0) if job.user.startswith("user") else -1,
            int(job.group.removeprefix("group") or 0) if job.group.startswith("group") else -1,
            -1,
            -1,
            -1,
            -1,
            -1,
        ]
        out.write(" ".join(str(v) for v in row) + "\n")
        lines += 1
    return lines


def write_swf(
    jobs: Iterable[Job],
    path: str | Path,
    fields: Optional[SWFFields] = None,
    header: Optional[dict] = None,
    include_memory: bool = True,
) -> None:
    """Write jobs to ``path`` as SWF, streaming — works for any
    iterable, including generators yielding millions of jobs."""
    fields = fields or SWFFields()
    with open(path, "w", encoding="utf-8") as out:
        _write_swf_stream(out, jobs, fields, header, include_memory)

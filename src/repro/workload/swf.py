"""Standard Workload Format (SWF) parsing and writing.

SWF is the lingua franca of the job-scheduling literature (Feitelson's
Parallel Workloads Archive): one line per job, 18 whitespace-separated
fields, ``;`` comment/header lines, ``-1`` for unknown values.  The
original study replayed production traces; this module lets any SWF
trace drop into our simulator unchanged, and — because most public SWF
traces lack memory columns — supports *memory synthesis*: missing
requested/used memory fields are drawn from a caller-supplied
distribution so memory-aware policies stay exercised.

Field map (1-based, per the SWF standard):

==  =============================  =========================================
 1  job number                     ``job_id``
 2  submit time (s)                ``submit_time``
 4  run time (s)                   ``runtime``
 7  used memory (KB per proc)      ``mem_used_per_node`` (converted)
 8  requested processors           ``nodes`` (ceil-divided by cores/node)
 9  requested time (s)             ``walltime``
10  requested memory (KB per proc) ``mem_per_node`` (converted)
11  status                         terminal-state filter
12  user id                        ``user``
13  group id                       ``group``
==  =============================  =========================================
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Tuple

import numpy as np

from ..errors import TraceFormatError
from ..sim.rng import RandomStreams
from .job import Job
from .models import Distribution

__all__ = [
    "SWFFields",
    "read_swf",
    "write_swf",
    "jobs_from_swf_text",
    "jobs_to_swf_text",
]

_NUM_FIELDS = 18


@dataclass
class SWFFields:
    """Conversion conventions between SWF fields and our job model.

    ``cores_per_node`` converts SWF "processors" to whole nodes
    (ceiling) and scales the per-processor memory columns to per-node
    MiB.  Traces that already count nodes use the default of 1.
    """

    cores_per_node: int = 1
    keep_failed: bool = False  # SWF status 0 = failed; keep as jobs?

    def procs_to_nodes(self, procs: int) -> int:
        return -(-procs // self.cores_per_node)

    def kb_per_proc_to_mib_per_node(self, kb: float) -> int:
        return int(round(kb * self.cores_per_node / 1024.0))

    def mib_per_node_to_kb_per_proc(self, mib: int) -> int:
        return int(round(mib * 1024.0 / self.cores_per_node))


def _parse_line(line: str, lineno: int) -> List[float]:
    parts = line.split()
    if len(parts) < _NUM_FIELDS:
        # Tolerate short lines by padding with -1 (some archive traces
        # drop trailing unknown fields).
        parts = parts + ["-1"] * (_NUM_FIELDS - len(parts))
    try:
        return [float(p) for p in parts[:_NUM_FIELDS]]
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: non-numeric SWF field: {exc}") from exc


def jobs_from_swf_text(
    text: str,
    fields: Optional[SWFFields] = None,
    mem_synth: Optional[Distribution] = None,
    usage_ratio_synth: Optional[Distribution] = None,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[Job], dict]:
    """Parse SWF text into jobs plus the header comment dict.

    ``mem_synth`` supplies requested per-node MiB when field 10 is
    missing; ``usage_ratio_synth`` supplies used/requested ratios when
    field 7 is missing.  Both default to "requested == synthesized,
    used == requested".  Jobs with non-positive runtime or processor
    count are skipped (archive traces contain cancelled entries).
    """
    fields = fields or SWFFields()
    streams = streams or RandomStreams(0)
    rng: np.random.Generator = streams.get("swf-mem-synth")

    header: dict = {}
    jobs: List[Job] = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip("; ")
            if ":" in body:
                key, _, value = body.partition(":")
                header[key.strip()] = value.strip()
            continue
        vals = _parse_line(line, lineno)
        (
            job_num,
            submit,
            _wait,
            run_time,
            _procs_alloc,
            _avg_cpu,
            used_kb,
            procs_req,
            req_time,
            req_kb,
            status,
            user_id,
            group_id,
            _app,
            _queue,
            _partition,
            _prec,
            _think,
        ) = vals

        if procs_req <= 0:
            procs_req = _procs_alloc
        if procs_req <= 0 or run_time <= 0:
            continue
        if status == 5:  # cancelled before start
            continue
        if status == 0 and not fields.keep_failed:  # failed
            continue

        nodes = fields.procs_to_nodes(int(procs_req))
        walltime = req_time if req_time > 0 else run_time
        runtime = min(run_time, walltime)

        if req_kb > 0:
            mem_req = max(1, fields.kb_per_proc_to_mib_per_node(req_kb))
        elif mem_synth is not None:
            mem_req = max(1, int(round(mem_synth.sample(rng))))
        else:
            mem_req = 1
        if used_kb > 0:
            mem_used = min(mem_req, max(1, fields.kb_per_proc_to_mib_per_node(used_kb)))
        elif usage_ratio_synth is not None:
            ratio = min(1.0, max(0.0, usage_ratio_synth.sample(rng)))
            mem_used = max(1, int(round(mem_req * ratio)))
        else:
            mem_used = mem_req

        jobs.append(
            Job(
                job_id=int(job_num) if job_num > 0 else len(jobs) + 1,
                submit_time=max(0.0, submit),
                nodes=nodes,
                walltime=float(walltime),
                runtime=float(runtime),
                mem_per_node=mem_req,
                mem_used_per_node=mem_used,
                user=f"user{int(user_id)}" if user_id >= 0 else "user0",
                group=f"group{int(group_id)}" if group_id >= 0 else "group0",
            )
        )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs, header


def read_swf(
    path: str | Path,
    fields: Optional[SWFFields] = None,
    mem_synth: Optional[Distribution] = None,
    usage_ratio_synth: Optional[Distribution] = None,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[Job], dict]:
    """Parse an SWF file; see :func:`jobs_from_swf_text`."""
    text = Path(path).read_text()
    return jobs_from_swf_text(
        text,
        fields=fields,
        mem_synth=mem_synth,
        usage_ratio_synth=usage_ratio_synth,
        streams=streams,
    )


def jobs_to_swf_text(
    jobs: Iterable[Job],
    fields: Optional[SWFFields] = None,
    header: Optional[dict] = None,
    include_memory: bool = True,
) -> str:
    """Serialize jobs as SWF.

    Execution-record fields (wait time, status) are emitted when the
    job has run; otherwise ``-1`` per the standard.  With
    ``include_memory=False`` the memory columns are written as ``-1``
    the way most archive traces ship — useful for producing fixtures
    that exercise the memory-synthesis path of the parser.
    """
    fields = fields or SWFFields()
    out = io.StringIO()
    for key, value in (header or {}).items():
        out.write(f"; {key}: {value}\n")
    for job in jobs:
        wait = job.start_time - job.submit_time if job.start_time is not None else -1
        if job.state.name == "COMPLETED":
            status = 1
        elif job.state.name == "KILLED":
            status = 0
        else:
            status = -1
        run_time = (
            job.end_time - job.start_time
            if job.end_time is not None and job.start_time is not None
            else job.runtime
        )
        procs = job.nodes * fields.cores_per_node
        used_kb = (
            fields.mib_per_node_to_kb_per_proc(job.mem_used_per_node)
            if include_memory
            else -1
        )
        req_kb = (
            fields.mib_per_node_to_kb_per_proc(job.mem_per_node)
            if include_memory
            else -1
        )
        row = [
            job.job_id,
            int(job.submit_time),
            int(wait) if wait != -1 else -1,
            int(round(run_time)),
            procs if status == 1 else -1,
            -1,
            used_kb,
            procs,
            int(round(job.walltime)),
            req_kb,
            status,
            int(job.user.removeprefix("user") or 0) if job.user.startswith("user") else -1,
            int(job.group.removeprefix("group") or 0) if job.group.startswith("group") else -1,
            -1,
            -1,
            -1,
            -1,
            -1,
        ]
        out.write(" ".join(str(v) for v in row) + "\n")
    return out.getvalue()


def write_swf(
    jobs: Iterable[Job],
    path: str | Path,
    fields: Optional[SWFFields] = None,
    header: Optional[dict] = None,
    include_memory: bool = True,
) -> None:
    Path(path).write_text(
        jobs_to_swf_text(
            jobs, fields=fields, header=header, include_memory=include_memory
        )
    )

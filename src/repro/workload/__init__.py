"""Workload substrate: jobs, traces, and synthetic generators."""

from .job import Job, JobState
from .models import (
    LogNormal,
    Exponential,
    Weibull,
    BoundedPareto,
    Choice,
    Distribution,
)
from .synthetic import SyntheticWorkload, WorkloadParams
from .swf import (
    read_swf,
    write_swf,
    iter_swf,
    jobs_from_swf_text,
    jobs_to_swf_text,
    SWFFields,
    SWFCursor,
)
from .reference import reference_workload, REFERENCE_WORKLOADS
from .filters import (
    scale_load,
    truncate_jobs,
    filter_jobs,
    shift_submit_times,
    cap_memory,
)

__all__ = [
    "Job",
    "JobState",
    "Distribution",
    "LogNormal",
    "Exponential",
    "Weibull",
    "BoundedPareto",
    "Choice",
    "SyntheticWorkload",
    "WorkloadParams",
    "read_swf",
    "write_swf",
    "iter_swf",
    "SWFCursor",
    "jobs_from_swf_text",
    "jobs_to_swf_text",
    "SWFFields",
    "reference_workload",
    "REFERENCE_WORKLOADS",
    "scale_load",
    "truncate_jobs",
    "filter_jobs",
    "shift_submit_times",
    "cap_memory",
]

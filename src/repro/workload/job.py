"""The job model.

A :class:`Job` carries the immutable request (what the user submitted)
plus the mutable execution record filled in by the engine (start/end,
node assignment, memory grants, dilation).  Keeping both on one object
makes post-hoc auditing straightforward: the auditor can re-derive
every invariant from the jobs alone.

Requested vs used memory: ``mem_per_node`` is what the job *asked for*
(and what the scheduler must reserve); ``mem_used_per_node`` is the
high-water mark it actually touches.  The gap between the two, summed
over a machine, is the **stranded memory** that motivates
disaggregation (experiment F1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"  # exceeded its (possibly dilated) walltime bound
    REJECTED = "rejected"  # can never fit the machine; refused at submit
    CANCELLED = "cancelled"  # withdrawn by its owner before it started

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.KILLED,
            JobState.REJECTED,
            JobState.CANCELLED,
        )


_job_counter = itertools.count(1)


@dataclass
class Job:
    """One batch job: the request plus its execution record."""

    # ----- request (immutable by convention) --------------------------
    job_id: int
    submit_time: float
    nodes: int
    walltime: float  # user estimate / kill bound, seconds
    runtime: float  # true base runtime on all-local memory, seconds
    mem_per_node: int  # requested MiB per node
    mem_used_per_node: int = -1  # actual high-water MiB; -1 = same as requested
    user: str = "user0"
    group: str = "group0"
    tag: str = ""  # free-form class label (e.g. "data", "compute")
    # Checkpointing: when set, the application writes a checkpoint
    # every ``checkpoint_interval`` seconds of *base* (undilated)
    # progress; after a node-failure kill the engine resubmits a
    # continuation job that resumes from the last checkpoint.
    checkpoint_interval: Optional[float] = None
    restart_of: Optional[int] = None  # original job id for continuations
    restart_count: int = 0

    # ----- execution record (filled by the engine) --------------------
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    assigned_nodes: List[int] = field(default_factory=list)
    local_grant_per_node: int = 0
    remote_per_node: int = 0
    pool_grants: Dict[str, int] = field(default_factory=dict)  # pool_id -> MiB total
    dilation: float = 0.0  # penalty(f); realized runtime = runtime * (1 + dilation)
    kill_reason: str = ""  # "walltime" | "node_failure" | "" when not killed

    def __post_init__(self) -> None:
        if self.mem_used_per_node < 0:
            self.mem_used_per_node = self.mem_per_node
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError(f"job {self.job_id}: nodes must be positive")
        if self.submit_time < 0:
            raise ConfigurationError(f"job {self.job_id}: negative submit time")
        if self.walltime <= 0:
            raise ConfigurationError(f"job {self.job_id}: walltime must be positive")
        if self.runtime <= 0:
            raise ConfigurationError(f"job {self.job_id}: runtime must be positive")
        if self.mem_per_node < 0:
            raise ConfigurationError(f"job {self.job_id}: negative memory request")
        if self.mem_used_per_node > self.mem_per_node:
            raise ConfigurationError(
                f"job {self.job_id}: used memory {self.mem_used_per_node} exceeds "
                f"requested {self.mem_per_node}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"job {self.job_id}: checkpoint interval must be positive"
            )

    # ------------------------------------------------------------------
    # request-side derived quantities
    # ------------------------------------------------------------------
    @property
    def total_mem(self) -> int:
        """Total requested memory across all nodes (MiB)."""
        return self.nodes * self.mem_per_node

    @property
    def node_seconds(self) -> float:
        """Requested node-time by user estimate (for load computations)."""
        return self.nodes * self.walltime

    @property
    def estimate_accuracy(self) -> float:
        """actual / estimate, the classic user-estimate accuracy metric."""
        return min(1.0, self.runtime / self.walltime)

    # ------------------------------------------------------------------
    # execution-side derived quantities (valid once started/finished)
    # ------------------------------------------------------------------
    @property
    def remote_fraction(self) -> float:
        """Fraction of the per-node footprint served remotely."""
        if self.mem_per_node == 0:
            return 0.0
        return self.remote_per_node / self.mem_per_node

    @property
    def dilated_runtime(self) -> float:
        return self.runtime * (1.0 + self.dilation)

    @property
    def dilated_walltime(self) -> float:
        return self.walltime * (1.0 + self.dilation)

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.submit_time

    @property
    def actual_runtime(self) -> float:
        if self.end_time is None or self.start_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.start_time

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        """Bounded slowdown, the standard job-scheduling metric.

        ``max(1, response / max(tau, base_runtime))`` with the usual
        10-second bound so sub-second jobs do not dominate the mean.
        The *base* (undilated) runtime is the denominator, so dilation
        shows up as increased slowdown — deliberately, since the user
        experiences it as lost time.
        """
        return max(1.0, self.response_time / max(tau, self.runtime))

    # ------------------------------------------------------------------
    def copy_request(self) -> "Job":
        """Fresh PENDING job with the same request (re-run support)."""
        return Job(
            job_id=self.job_id,
            submit_time=self.submit_time,
            nodes=self.nodes,
            walltime=self.walltime,
            runtime=self.runtime,
            mem_per_node=self.mem_per_node,
            mem_used_per_node=self.mem_used_per_node,
            user=self.user,
            group=self.group,
            tag=self.tag,
            checkpoint_interval=self.checkpoint_interval,
            restart_of=self.restart_of,
            restart_count=self.restart_count,
        )

    @classmethod
    def next_id(cls) -> int:
        """Process-wide unique id for ad-hoc job construction in tests."""
        return next(_job_counter)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Job(#{self.job_id} n={self.nodes} m={self.mem_per_node}MiB "
            f"rt={self.runtime:.0f}s wt={self.walltime:.0f}s {self.state.value})"
        )

"""Reference workload mixes used throughout the evaluation.

Three mixes span the memory-intensity spectrum (experiment T1
characterizes them quantitatively):

* ``W-COMP`` — compute-heavy: 85% low-memory jobs; the fat-node
  baseline strands most of its DRAM here, so disaggregation saves
  hardware at no performance cost;
* ``W-MIX``  — balanced: the default mix;
* ``W-DATA`` — data-intensive: over half the jobs carry a heavy-tailed
  memory footprint that exceeds thin-node local capacity, so
  scheduling policy and pool sizing dominate.

A fourth mix targets *trace-scale* replay rather than memory
intensity:

* ``W-KTH`` — archive-trace shaped (KTH SP2 / ANL Intrepid style):
  floods of small power-of-two jobs with heavy-tailed runtimes, loose
  walltime estimates, and bursty arrivals.  Deep backfill queues and
  fragmented free-windows are exactly the regime where the scheduler's
  vectorized breakpoint kernel has hundreds of breakpoints to chew on,
  so this mix drives the large-cluster replay benches.

Each factory returns :class:`~repro.workload.synthetic.WorkloadParams`
pre-capped to the target machine and calibrated to a requested offered
load; generation still requires a seed via ``RandomStreams``.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import GiB, HOUR
from .job import Job
from .models import LogNormal, Uniform, Weibull
from .synthetic import MemoryClass, SyntheticWorkload, WorkloadParams, power_of_two_nodes

__all__ = ["reference_workload", "generate_reference_jobs", "REFERENCE_WORKLOADS"]


def _base_params(num_jobs: int, max_nodes: int, max_mem_per_node: int) -> WorkloadParams:
    return WorkloadParams(
        num_jobs=num_jobs,
        nodes=power_of_two_nodes(max(1, max_nodes // 2)),
        runtime=LogNormal(mu=math.log(1.0 * HOUR), sigma=1.1, low=120.0, high=12 * HOUR),
        estimate_inflation=Uniform(1.2, 4.0),
        exact_estimate_prob=0.15,
        max_walltime=24 * HOUR,
        max_nodes=max_nodes,
        max_mem_per_node=max_mem_per_node,
    )


def _w_comp(num_jobs: int, max_nodes: int, max_mem_per_node: int) -> WorkloadParams:
    params = _base_params(num_jobs, max_nodes, max_mem_per_node)
    return replace(
        params,
        memory_classes=[
            MemoryClass(
                "compute",
                0.85,
                LogNormal(mu=math.log(6 * GiB), sigma=0.6, low=256, high=48 * GiB),
                usage_ratio=Uniform(0.55, 0.95),
            ),
            MemoryClass(
                "data",
                0.15,
                LogNormal(mu=math.log(64 * GiB), sigma=0.6, low=8 * GiB, high=256 * GiB),
                usage_ratio=Uniform(0.6, 1.0),
            ),
        ],
    )


def _w_mix(num_jobs: int, max_nodes: int, max_mem_per_node: int) -> WorkloadParams:
    params = _base_params(num_jobs, max_nodes, max_mem_per_node)
    return replace(
        params,
        memory_classes=[
            MemoryClass(
                "compute",
                0.6,
                LogNormal(mu=math.log(8 * GiB), sigma=0.7, low=256, high=64 * GiB),
                usage_ratio=Uniform(0.5, 0.95),
            ),
            MemoryClass(
                "data",
                0.4,
                LogNormal(mu=math.log(112 * GiB), sigma=0.7, low=16 * GiB, high=448 * GiB),
                usage_ratio=Uniform(0.6, 1.0),
            ),
        ],
    )


def _w_data(num_jobs: int, max_nodes: int, max_mem_per_node: int) -> WorkloadParams:
    params = _base_params(num_jobs, max_nodes, max_mem_per_node)
    return replace(
        params,
        # Bursty arrivals: data-analysis campaigns come in waves.
        interarrival=Weibull(shape=0.7, scale=45.0),
        memory_classes=[
            MemoryClass(
                "compute",
                0.45,
                LogNormal(mu=math.log(10 * GiB), sigma=0.7, low=512, high=64 * GiB),
                usage_ratio=Uniform(0.5, 0.95),
            ),
            MemoryClass(
                "data",
                0.55,
                LogNormal(mu=math.log(160 * GiB), sigma=0.8, low=32 * GiB, high=504 * GiB),
                usage_ratio=Uniform(0.65, 1.0),
            ),
        ],
    )


def _w_kth(num_jobs: int, max_nodes: int, max_mem_per_node: int) -> WorkloadParams:
    params = _base_params(num_jobs, max_nodes, max_mem_per_node)
    return replace(
        params,
        # Archive shape: many small power-of-two jobs, runtimes spanning
        # seconds to a day, estimates far above actuals, bursty arrivals.
        nodes=power_of_two_nodes(max(1, max_nodes // 4), tail_weight=0.04),
        runtime=LogNormal(
            mu=math.log(15 * 60.0), sigma=1.8, low=30.0, high=24 * HOUR
        ),
        estimate_inflation=Uniform(1.5, 8.0),
        exact_estimate_prob=0.05,
        interarrival=Weibull(shape=0.65, scale=30.0),
        memory_classes=[
            MemoryClass(
                "compute",
                0.9,
                LogNormal(mu=math.log(2 * GiB), sigma=0.8, low=128, high=16 * GiB),
                usage_ratio=Uniform(0.5, 0.95),
            ),
            MemoryClass(
                "data",
                0.1,
                LogNormal(mu=math.log(24 * GiB), sigma=0.7, low=4 * GiB, high=128 * GiB),
                usage_ratio=Uniform(0.6, 1.0),
            ),
        ],
    )


REFERENCE_WORKLOADS: Dict[str, Callable[[int, int, int], WorkloadParams]] = {
    "W-COMP": _w_comp,
    "W-MIX": _w_mix,
    "W-DATA": _w_data,
    "W-KTH": _w_kth,
}


def reference_workload(
    name: str,
    num_jobs: int = 1000,
    cluster_nodes: int = 128,
    max_mem_per_node: int = 512 * GiB,
    target_load: float | None = 0.85,
) -> WorkloadParams:
    """Build one of the reference mixes, optionally load-calibrated.

    ``max_mem_per_node`` caps requested memory at the *fat* baseline so
    every job is feasible on every configuration compared (thin nodes
    rely on the pool for the excess).
    """
    try:
        factory = REFERENCE_WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown reference workload {name!r}; "
            f"choose from {sorted(REFERENCE_WORKLOADS)}"
        ) from None
    params = factory(num_jobs, cluster_nodes, max_mem_per_node)
    if target_load is not None:
        params = params.calibrated_for_load(cluster_nodes, target_load)
    return params


def generate_reference_jobs(
    name: str,
    seed: int,
    num_jobs: int = 1000,
    cluster_nodes: int = 128,
    max_mem_per_node: int = 512 * GiB,
    target_load: float | None = 0.85,
) -> List[Job]:
    """One-call convenience: parameters + generation."""
    params = reference_workload(
        name,
        num_jobs=num_jobs,
        cluster_nodes=cluster_nodes,
        max_mem_per_node=max_mem_per_node,
        target_load=target_load,
    )
    return SyntheticWorkload(params).generate(RandomStreams(seed))

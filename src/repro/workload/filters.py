"""Trace surgery utilities: slicing, scaling, and capping job lists.

All functions return *new* job lists built from fresh PENDING copies;
input jobs are never mutated, so a trace can be reused across
experiment arms without state leaking between runs.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..errors import ConfigurationError
from .job import Job

__all__ = [
    "scale_load",
    "truncate_jobs",
    "filter_jobs",
    "shift_submit_times",
    "cap_memory",
    "cap_nodes",
    "reset_jobs",
]


def reset_jobs(jobs: Iterable[Job]) -> List[Job]:
    """Fresh PENDING copies of every job (reuse a trace across runs)."""
    return [job.copy_request() for job in jobs]


def scale_load(jobs: Iterable[Job], factor: float) -> List[Job]:
    """Compress (factor > 1) or stretch (factor < 1) arrivals.

    Dividing inter-arrival gaps by ``factor`` multiplies offered load
    by ``factor`` while preserving arrival-order and burst structure.
    """
    if factor <= 0:
        raise ConfigurationError("load factor must be positive")
    jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    if not jobs:
        return []
    origin = jobs[0].submit_time
    out = []
    for job in jobs:
        copy = job.copy_request()
        copy.submit_time = origin + (job.submit_time - origin) / factor
        out.append(copy)
    return out


def truncate_jobs(jobs: Iterable[Job], max_jobs: int) -> List[Job]:
    """Keep the first ``max_jobs`` jobs by submit order."""
    if max_jobs < 0:
        raise ConfigurationError("max_jobs must be non-negative")
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    return reset_jobs(ordered[:max_jobs])


def filter_jobs(jobs: Iterable[Job], predicate: Callable[[Job], bool]) -> List[Job]:
    """Keep jobs satisfying ``predicate`` (fresh copies)."""
    return reset_jobs(job for job in jobs if predicate(job))


def shift_submit_times(jobs: Iterable[Job], offset: float) -> List[Job]:
    """Shift all submit times by ``offset`` (clamped at zero)."""
    out = []
    for job in jobs:
        copy = job.copy_request()
        copy.submit_time = max(0.0, job.submit_time + offset)
        out.append(copy)
    return sorted(out, key=lambda j: (j.submit_time, j.job_id))


def cap_memory(jobs: Iterable[Job], max_mem_per_node: int) -> List[Job]:
    """Clamp per-node memory requests (and usage) to a machine maximum."""
    if max_mem_per_node <= 0:
        raise ConfigurationError("max_mem_per_node must be positive")
    out = []
    for job in jobs:
        copy = job.copy_request()
        copy.mem_per_node = min(job.mem_per_node, max_mem_per_node)
        copy.mem_used_per_node = min(job.mem_used_per_node, copy.mem_per_node)
        out.append(copy)
    return out


def cap_nodes(jobs: Iterable[Job], max_nodes: int) -> List[Job]:
    """Clamp node requests to the machine size."""
    if max_nodes <= 0:
        raise ConfigurationError("max_nodes must be positive")
    out = []
    for job in jobs:
        copy = job.copy_request()
        copy.nodes = min(job.nodes, max_nodes)
        out.append(copy)
    return out

"""Synthetic workload generation.

Production-trace realism is approximated by generating each job
attribute from a distribution family the trace literature has
established:

* **arrivals** — renewal process with exponential (steady) or Weibull
  shape<1 (bursty) inter-arrivals;
* **node counts** — discrete distribution heavily biased to powers of
  two, with a thin tail of large jobs;
* **runtimes** — truncated lognormal (high CV);
* **walltime estimates** — runtime × an inflation factor ≥ 1, with a
  point mass of "exact" estimators, reproducing the well-documented
  <60% average estimate accuracy;
* **memory** — a mixture of job classes (e.g. compute-bound low-memory
  vs data-intensive heavy-tailed), each with its own requested-size
  distribution and used/requested ratio.

The generator is deterministic given a :class:`repro.sim.RandomStreams`
root seed; each attribute draws from its own named substream, so adding
an attribute never perturbs the others.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import GiB, HOUR
from .job import Job
from .models import Choice, Distribution, Exponential, LogNormal, Uniform

__all__ = ["MemoryClass", "WorkloadParams", "SyntheticWorkload", "power_of_two_nodes"]


def power_of_two_nodes(max_nodes: int, tail_weight: float = 0.08) -> Choice:
    """Node-count distribution biased to small powers of two.

    Weights decay geometrically with size; ``tail_weight`` of the mass
    is spread over the top quartile of sizes to retain the occasional
    machine-scale job that drives head-of-line blocking.
    """
    if max_nodes < 1:
        raise ConfigurationError("max_nodes must be >= 1")
    sizes: List[float] = []
    size = 1
    while size <= max_nodes:
        sizes.append(float(size))
        size *= 2
    base = [0.6 ** i for i in range(len(sizes))]
    total = sum(base)
    weights = [w / total * (1.0 - tail_weight) for w in base]
    tail_start = max(0, len(sizes) - max(1, len(sizes) // 4))
    tail_n = len(sizes) - tail_start
    for i in range(tail_start, len(sizes)):
        weights[i] += tail_weight / tail_n
    return Choice(values=sizes, weights=weights)


@dataclass
class MemoryClass:
    """One job class in the memory mixture."""

    tag: str
    weight: float
    mem_per_node: Distribution  # requested MiB per node
    usage_ratio: Distribution = field(default_factory=lambda: Uniform(0.5, 1.0))

    def validate(self) -> None:
        if self.weight < 0:
            raise ConfigurationError(f"class {self.tag}: negative weight")


@dataclass
class WorkloadParams:
    """All knobs of the synthetic generator."""

    num_jobs: int = 1000
    interarrival: Distribution = field(default_factory=lambda: Exponential(60.0))
    nodes: Distribution = field(default_factory=lambda: power_of_two_nodes(64))
    runtime: Distribution = field(
        default_factory=lambda: LogNormal(mu=8.0, sigma=1.2, low=60.0, high=24 * HOUR)
    )
    memory_classes: Sequence[MemoryClass] = field(
        default_factory=lambda: [
            MemoryClass(
                "compute",
                0.7,
                LogNormal(mu=math.log(8 * GiB), sigma=0.6, low=512, high=64 * GiB),
            ),
            MemoryClass(
                "data",
                0.3,
                LogNormal(mu=math.log(96 * GiB), sigma=0.7, low=8 * GiB, high=512 * GiB),
            ),
        ]
    )
    # Walltime = runtime * inflation, inflation >= 1; a fraction of
    # users request exactly what they need (inflation == 1).
    estimate_inflation: Distribution = field(default_factory=lambda: Uniform(1.1, 4.0))
    exact_estimate_prob: float = 0.15
    max_walltime: float = 48 * HOUR
    max_nodes: Optional[int] = None  # cap, e.g. cluster size
    max_mem_per_node: Optional[int] = None  # cap, e.g. fat-node capacity
    num_users: int = 32
    start_time: float = 0.0
    # Diurnal arrival modulation: instantaneous rate is scaled by
    # 1 + amplitude*sin(2π t/period).  amplitude=0 disables; 0.8 gives
    # the pronounced day/night cycle of production traces.  (Gap
    # scaling by the instantaneous rate is a first-order approximation
    # of an inhomogeneous renewal process — adequate here because only
    # the burst *structure* matters to scheduling, not the exact rate
    # law.)
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86400.0

    def validate(self) -> None:
        if self.num_jobs <= 0:
            raise ConfigurationError("num_jobs must be positive")
        if not self.memory_classes:
            raise ConfigurationError("at least one memory class required")
        for cls_ in self.memory_classes:
            cls_.validate()
        if sum(c.weight for c in self.memory_classes) <= 0:
            raise ConfigurationError("memory class weights must sum > 0")
        if not (0.0 <= self.exact_estimate_prob <= 1.0):
            raise ConfigurationError("exact_estimate_prob must be within [0, 1]")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ConfigurationError("diurnal_amplitude must be within [0, 1)")
        if self.diurnal_period <= 0:
            raise ConfigurationError("diurnal_period must be positive")

    # ------------------------------------------------------------------
    def mean_job_node_seconds(self) -> float:
        """E[nodes] * E[runtime] — first-order load per job."""
        return self.nodes.mean() * self.runtime.mean()

    def calibrated_for_load(
        self, num_cluster_nodes: int, target_load: float
    ) -> "WorkloadParams":
        """Return a copy whose arrival rate offers ``target_load``.

        Offered load = E[nodes × runtime] / (cluster nodes × E[interarrival]).
        Node count and runtime are sampled independently, so the
        product of means is exact for the offered-load expectation.
        """
        if target_load <= 0:
            raise ConfigurationError("target_load must be positive")
        mean_ia = self.mean_job_node_seconds() / (num_cluster_nodes * target_load)
        from dataclasses import replace

        return replace(self, interarrival=Exponential(mean_ia))


class SyntheticWorkload:
    """Deterministic job-list generator from :class:`WorkloadParams`."""

    def __init__(self, params: WorkloadParams) -> None:
        params.validate()
        self.params = params

    def generate(self, streams: RandomStreams) -> List[Job]:
        p = self.params
        rng_arrival = streams.get("arrival")
        rng_nodes = streams.get("nodes")
        rng_runtime = streams.get("runtime")
        rng_mem = streams.get("memory")
        rng_est = streams.get("estimate")
        rng_user = streams.get("user")

        class_weights = [c.weight for c in p.memory_classes]
        total_weight = sum(class_weights)
        class_probs = [w / total_weight for w in class_weights]

        jobs: List[Job] = []
        clock = p.start_time
        for index in range(p.num_jobs):
            gap = p.interarrival.sample(rng_arrival)
            if p.diurnal_amplitude > 0.0:
                rate = 1.0 + p.diurnal_amplitude * math.sin(
                    2.0 * math.pi * clock / p.diurnal_period
                )
                gap /= max(rate, 0.05)
            clock += gap

            nodes = int(round(p.nodes.sample(rng_nodes)))
            nodes = max(1, nodes)
            if p.max_nodes is not None:
                nodes = min(nodes, p.max_nodes)

            runtime = max(1.0, p.runtime.sample(rng_runtime))

            class_idx = int(rng_mem.choice(len(p.memory_classes), p=class_probs))
            mem_class = p.memory_classes[class_idx]
            mem = int(round(mem_class.mem_per_node.sample(rng_mem)))
            mem = max(1, mem)
            if p.max_mem_per_node is not None:
                mem = min(mem, p.max_mem_per_node)
            usage_ratio = min(1.0, max(0.0, mem_class.usage_ratio.sample(rng_mem)))
            mem_used = max(1, int(round(mem * usage_ratio)))

            if rng_est.uniform() < p.exact_estimate_prob:
                inflation = 1.0
            else:
                inflation = max(1.0, p.estimate_inflation.sample(rng_est))
            walltime = min(p.max_walltime, runtime * inflation)
            # A runtime at the walltime cap would be instantly killed;
            # keep the true runtime within the requested bound.
            runtime = min(runtime, walltime)

            user = f"user{int(rng_user.integers(0, p.num_users))}"
            jobs.append(
                Job(
                    job_id=index + 1,
                    submit_time=clock,
                    nodes=nodes,
                    walltime=walltime,
                    runtime=runtime,
                    mem_per_node=mem,
                    mem_used_per_node=mem_used,
                    user=user,
                    tag=mem_class.tag,
                )
            )
        return jobs

    # ------------------------------------------------------------------
    def offered_load(self, num_cluster_nodes: int) -> float:
        """First-order offered load of these parameters on a machine."""
        p = self.params
        return p.mean_job_node_seconds() / (
            num_cluster_nodes * p.interarrival.mean()
        )

"""Seedable statistical distributions for workload synthesis.

Thin wrappers over :mod:`numpy.random` generators with a common
``sample(rng)`` interface, dict round-trips for JSON configs, and the
truncation/discretization conveniences workload models need (runtimes
are bounded, node counts are integers biased to powers of two, memory
footprints are heavy-tailed but capped at the machine maximum).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Distribution",
    "LogNormal",
    "Exponential",
    "Weibull",
    "BoundedPareto",
    "Uniform",
    "Constant",
    "Choice",
    "distribution_from_dict",
]


class Distribution(abc.ABC):
    """A scalar distribution sampled with an explicit generator."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        ...

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean (used to calibrate workload load factors)."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.array([self.sample(rng) for _ in range(n)])

    def to_dict(self) -> dict[str, Any]:
        data = {"kind": type(self).__name__.lower()}
        data.update(self.__dict__)
        return data


@dataclass
class Constant(Distribution):
    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass
class Uniform(Distribution):
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(f"Uniform: high {self.high} < low {self.low}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass
class Exponential(Distribution):
    """Exponential with the given mean (inter-arrival workhorse)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ConfigurationError("Exponential mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        return self.mean_value


@dataclass
class Weibull(Distribution):
    """Weibull(shape, scale); shape<1 gives the bursty arrivals seen in
    production traces."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ConfigurationError("Weibull shape/scale must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass
class LogNormal(Distribution):
    """Lognormal parameterized by the *underlying* normal's mu/sigma,
    optionally truncated to [low, high] by resampling (runtimes)."""

    mu: float
    sigma: float
    low: float = 0.0
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError("LogNormal sigma must be non-negative")
        if self.high <= self.low:
            raise ConfigurationError("LogNormal truncation bounds inverted")

    def sample(self, rng: np.random.Generator) -> float:
        for _ in range(1000):
            value = float(rng.lognormal(self.mu, self.sigma))
            if self.low <= value <= self.high:
                return value
        # Pathological truncation: clamp rather than loop forever.
        return min(max(self.low, math.exp(self.mu)), self.high)

    def mean(self) -> float:
        # Mean of the *untruncated* lognormal; adequate for load
        # calibration because experiments use mild truncation.
        return math.exp(self.mu + self.sigma**2 / 2.0)


@dataclass
class BoundedPareto(Distribution):
    """Bounded Pareto — the canonical heavy-tailed memory model."""

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("BoundedPareto alpha must be positive")
        if not (0 < self.low < self.high):
            raise ConfigurationError("BoundedPareto requires 0 < low < high")

    def sample(self, rng: np.random.Generator) -> float:
        u = float(rng.uniform())
        la, ha = self.low**self.alpha, self.high**self.alpha
        # Inverse CDF of the bounded Pareto.
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        a, l, h = self.alpha, self.low, self.high
        if a == 1.0:
            return math.log(h / l) * l * h / (h - l)
        num = l**a * a * (h ** (1 - a) - l ** (1 - a))
        den = (1 - a) * (1 - (l / h) ** a)
        return num / den


@dataclass
class Choice(Distribution):
    """Discrete distribution over explicit values (node counts)."""

    values: Sequence[float]
    weights: Sequence[float] | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError("Choice needs at least one value")
        if self.weights is not None:
            if len(self.weights) != len(self.values):
                raise ConfigurationError("Choice weights/values length mismatch")
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ConfigurationError("Choice weights must be non-negative, sum>0")

    def _probs(self) -> np.ndarray:
        if self.weights is None:
            return np.full(len(self.values), 1.0 / len(self.values))
        weights = np.asarray(self.weights, dtype=float)
        return weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(np.asarray(self.values, dtype=float), p=self._probs()))

    def mean(self) -> float:
        return float(np.dot(np.asarray(self.values, dtype=float), self._probs()))


_KINDS = {
    "constant": Constant,
    "uniform": Uniform,
    "exponential": Exponential,
    "weibull": Weibull,
    "lognormal": LogNormal,
    "boundedpareto": BoundedPareto,
    "choice": Choice,
}


def distribution_from_dict(data: Mapping[str, Any]) -> Distribution:
    """Rebuild a distribution from its ``to_dict`` form."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _KINDS.get(str(kind).lower())
    if cls is None:
        raise ConfigurationError(f"unknown distribution kind {kind!r}")
    return cls(**data)

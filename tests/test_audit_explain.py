"""Differential checks for the per-job explanation layer.

Three independent witnesses must agree on *why* a job started when it
did:

1. the service ``advise`` endpoint, asked at the job's submit instant
   (pre-admission, against the live running set);
2. :func:`repro.audit.explain_schedule`'s post-hoc replay
   (``at_submit`` reproduces the advise taxonomy from the result
   record alone);
3. a brute-force interval recomputation of physical feasibility at
   the explanation's claimed blocking and unblocking instants.

The advise/explain comparison is exact only when no *other* job
starts or ends at the queried job's submit instant (advise sees the
pre-submit world; the replay grid applies all same-instant events),
so coinciding jobs are skipped — with strictly increasing distinct
submit times this exclusion is rare and principled.
"""

from __future__ import annotations

import pytest

from repro.audit import deep_audit, explain_schedule
from repro.audit.explain import explain_job
from repro.cluster import Cluster, ClusterSpec
from repro.config import ExperimentConfig
from repro.engine import SchedulerSimulation
from repro.sched.base import (
    BOUND_MACHINE,
    BOUND_NODES,
    BOUND_POOL,
    build_scheduler,
)
from repro.service.core import SchedulerService, ServiceConfig
from repro.service.protocol import job_to_request_spec
from repro.units import GiB
from repro.workload.reference import generate_reference_jobs

_EPS = 1e-6


def _spec() -> ClusterSpec:
    return ClusterSpec.thin_node(
        num_nodes=8,
        local_mem="128GiB",
        fat_local_mem="512GiB",
        pool_fraction=0.5,
        reach="global",
        name="EXPLAIN-8",
    )


def _jobs(seed: int, num_jobs: int = 30):
    jobs = generate_reference_jobs(
        "W-MIX", seed, num_jobs=num_jobs, cluster_nodes=8
    )
    # Strictly increasing, well-separated submits: the advise/explain
    # equivalence is exact only away from submit-instant coincidences.
    jobs.sort(key=lambda job: (job.submit_time, job.job_id))
    last = -1.0
    for job in jobs:
        if job.submit_time <= last + 0.5:
            job.submit_time = last + 0.5
        last = job.submit_time
    return jobs


def _replay_through_service(spec, jobs, scheduler):
    experiment = ExperimentConfig(
        name="explain-differential", cluster=spec, scheduler=scheduler
    )
    service = SchedulerService.open(
        experiment, ServiceConfig(mode="replay")
    ).start()
    advice = {}
    try:
        for job in jobs:
            service.advance(job.submit_time)
            request = job_to_request_spec(job)
            advice[job.job_id] = service.advise(request)
            service.submit([request])
        service.advance(None)
        result = service.engine.online_result()
    finally:
        service.stop()
    return advice, result


def _coinciding(result, job):
    """True when any other job starts or ends at this job's submit."""
    t = job.submit_time
    for other in result.finished:
        if other.job_id == job.job_id:
            continue
        for edge in (other.start_time, other.end_time):
            if edge is not None and abs(edge - t) <= 1e-3:
                return True
    return False


@pytest.mark.parametrize("seed", [2, 9])
@pytest.mark.parametrize("backfill", ["easy", "conservative"])
def test_explain_agrees_with_advise(seed, backfill):
    spec = _spec()
    jobs = _jobs(seed)
    scheduler = {"queue": "fcfs", "backfill": backfill,
                 "penalty": {"kind": "linear", "beta": 0.3}}
    advice, result = _replay_through_service(spec, jobs, scheduler)
    assert deep_audit(result).ok
    explanations = explain_schedule(result)
    compared = 0
    for job in result.jobs:
        explanation = explanations[job.job_id]
        if explanation.at_submit is None:  # cancelled: advise-incomparable
            continue
        if _coinciding(result, job):
            continue
        assert advice[job.job_id]["bound"] == explanation.at_submit, (
            f"job {job.job_id}: advise said {advice[job.job_id]['bound']!r} "
            f"at t={job.submit_time}, explain replay says "
            f"{explanation.at_submit!r}"
        )
        compared += 1
    # The skip rule must not hollow the test out.
    assert compared >= len(jobs) * 2 // 3


def test_rejected_job_is_machine_capacity_everywhere():
    spec = _spec()
    jobs = _jobs(4, num_jobs=12)
    # Wider than the machine: rejected at submit by fits_machine.
    reject = generate_reference_jobs("W-MIX", 4, num_jobs=1, cluster_nodes=8)[0]
    reject.job_id = 9000
    reject.nodes = 9
    reject.submit_time = jobs[-1].submit_time + 10.0
    jobs.append(reject)
    scheduler = {"queue": "fcfs", "backfill": "easy"}
    advice, result = _replay_through_service(spec, jobs, scheduler)
    assert advice[9000]["verdict"] == "reject"
    assert advice[9000]["bound"] == BOUND_MACHINE
    explanation = explain_job(result, 9000)
    assert explanation.state == "rejected"
    assert explanation.at_submit == BOUND_MACHINE
    assert explanation.binding == BOUND_MACHINE


# ----------------------------------------------------------------------
# brute-force physical cross-check
# ----------------------------------------------------------------------
def _physical_state(result, t, exclude_job_id):
    """(free node count, free global pool MiB) at instant ``t`` with the
    replay-grid semantics: releases at t applied, starts at t applied,
    the probed job's own execution excluded."""
    spec = result.cluster_spec
    free = set(range(spec.num_nodes))
    pool_free = spec.pool.global_pool
    for job in result.finished:
        if job.job_id == exclude_job_id:
            continue
        if job.start_time <= t + _EPS and job.end_time > t + _EPS:
            free -= set(job.assigned_nodes)
            pool_free -= sum(job.pool_grants.values())
    return len(free), pool_free


@pytest.mark.parametrize("seed", [2, 9, 17])
def test_blocking_claims_survive_brute_force(seed):
    result = SchedulerSimulation(
        Cluster(_spec()),
        build_scheduler(penalty={"kind": "linear", "beta": 0.3}),
        _jobs(seed, num_jobs=45),
    ).run()
    assert deep_audit(result).ok
    explanations = explain_schedule(result)
    checked = 0
    for job in result.finished:
        explanation = explanations[job.job_id]
        if explanation.binding not in (BOUND_NODES, BOUND_POOL):
            continue
        assert explanation.blocked_until is not None
        remote_total = job.remote_per_node * job.nodes
        free_count, pool_free = _physical_state(
            result, explanation.blocked_until, job.job_id
        )
        if explanation.binding == BOUND_NODES:
            assert free_count < job.nodes, (
                f"job {job.job_id} claimed node-blocked at "
                f"t={explanation.blocked_until} but {free_count} nodes free"
            )
        else:
            assert free_count >= job.nodes
            assert pool_free < remote_total, (
                f"job {job.job_id} claimed pool-blocked at "
                f"t={explanation.blocked_until} but {pool_free} MiB free "
                f"for a {remote_total} MiB demand"
            )
        # And at the claimed unblocking breakpoint it physically fits.
        bp = explanation.bounding_breakpoint
        assert bp is not None
        free_count, pool_free = _physical_state(result, bp, job.job_id)
        assert free_count >= job.nodes
        assert pool_free >= remote_total
        checked += 1
    assert checked > 0, "scenario produced no physically-blocked waiters"


def test_explanations_serialize_and_describe():
    result = SchedulerSimulation(
        Cluster(_spec()), build_scheduler(), _jobs(5, num_jobs=15)
    ).run()
    import json

    for explanation in explain_schedule(result).values():
        json.dumps(explanation.to_dict())
        text = explanation.describe()
        assert f"job {explanation.job_id}" in text
